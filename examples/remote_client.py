#!/usr/bin/env python3
"""Remote sessions: the TCP service boundary (DESIGN.md section 11).

Runs a `WarehouseServer` in this process (standing in for
``python -m repro.server`` on another machine) and talks to it purely
over the docs/PROTOCOL.md wire protocol:

1. ``repro.connect("tcp://host:port")`` — the same PEP-249 surface as
   the in-process session, backed by a socket transport;
2. parameterized SQL and ``executemany`` shipped as EXECUTE frames,
   bound server-side, never interpolated into statement text;
3. two concurrent client sessions sharing one continuous scan;
4. watching a running query's partials over the wire, then cancelling
   it — the server frees its in-flight slot within one scan cycle.

Run:  python examples/remote_client.py
"""

import repro
from repro.engine import Warehouse
from repro.server import WarehouseServer


def main() -> None:
    print("Starting a warehouse server on a loopback port...")
    warehouse = Warehouse.from_ssb(
        scale_factor=0.002, seed=7, execution="batched"
    )
    with WarehouseServer(warehouse, owns_warehouse=True) as server:
        print(f"serving on {server.url} "
              f"({server.warehouse.star.fact.name} and friends)")

        with repro.connect(server.url) as connection:
            # -- parameterized SQL over the wire ----------------------
            cursor = connection.execute(
                "SELECT d_year, SUM(lo_revenue) AS revenue "
                "FROM lineorder, date "
                "WHERE lo_orderdate = d_datekey AND d_year >= ? "
                "GROUP BY d_year ORDER BY d_year",
                (1992,),
            )
            print("\n-- revenue by year (bound parameter: 1992) --")
            print("columns:", [column[0] for column in cursor.description])
            for year, revenue in cursor:
                print(f"  {year}: {revenue:,}")

            # -- executemany: one EXECUTE frame, many bindings --------
            counts = connection.executemany(
                "SELECT s_region, COUNT(*) FROM lineorder, supplier "
                "WHERE lo_suppkey = s_suppkey AND s_region = :region "
                "GROUP BY s_region",
                [{"region": region} for region in ("AMERICA", "ASIA")],
            ).fetchall()
            print("\n-- per-region fact counts via executemany --")
            for region, count in counts:
                print(f"  {region}: {count} rows")

            # -- a second session shares the same scan ----------------
            with repro.connect(server.url) as second:
                row = second.execute(
                    "SELECT COUNT(*) FROM lineorder, date "
                    "WHERE lo_orderdate = d_datekey"
                ).fetchone()
                print(f"\nsecond concurrent session counts {row[0]} rows")

            # -- streaming partials and cancellation ------------------
            running = connection.execute(
                "SELECT COUNT(*) FROM lineorder, date "
                "WHERE lo_orderdate = d_datekey"
            )
            partial = running.rows_so_far()  # partial-mode FETCH
            print(f"partial snapshot over the wire: {partial}")
            cancelled = running.cancel()  # CANCEL frame
            print(
                f"cancelled {cancelled} in-flight quer"
                f"{'y' if cancelled == 1 else 'ies'}; "
                f"slot frees within one scan cycle"
            )
    print("server stopped; no threads or sockets left behind")


if __name__ == "__main__":
    main()
