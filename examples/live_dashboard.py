#!/usr/bin/env python3
"""Ad-hoc analytics with progress feedback and mid-flight admission.

Section 3.2.3 of the paper: the continuous scan position is a
reliable progress indicator and completion-time estimator — exactly
what ad-hoc analysts lack in conventional warehouses.  This example
drives the pipeline step by step, admits new queries while others are
mid-scan, and renders a text "dashboard" of per-query progress.

Run:  python examples/live_dashboard.py
"""

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator


def render(handles) -> str:
    cells = []
    for name, handle in handles:
        bar = "#" * int(handle.progress * 10)
        status = "done" if handle.done else f"{handle.progress:4.0%}"
        cells.append(f"{name}[{bar:<10}]{status}")
    return "  ".join(cells)


def main() -> None:
    catalog, star = load_ssb(scale_factor=0.001, seed=5)
    generator = ssb_workload_generator(seed=17, catalog=catalog)
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(batch_size=512)
    )

    handles = []
    plan = [  # (admit at step, template)
        (0, "Q2.1"),
        (0, "Q3.2"),
        (3, "Q4.2"),   # arrives mid-scan: latches onto the live plan
        (6, "Q3.4"),
    ]
    step = 0
    pending = list(plan)
    print("step  dashboard")
    while pending or operator.active_query_count > 0:
        while pending and pending[0][0] <= step:
            _, template = pending.pop(0)
            query = generator.generate_from(template, selectivity=0.15)
            handles.append((template, operator.submit(query)))
        operator.executor.step()
        print(f"{step:>4}  {render(handles)}")
        step += 1
        if step > 100:
            raise RuntimeError("dashboard did not converge")

    print("\nAll queries completed. Result sizes:")
    for name, handle in handles:
        print(
            f"  {name}: {len(handle.results())} groups, "
            f"response {handle.response_time * 1000:.0f}ms"
        )
    print(
        f"\nTotal tuples scanned: {operator.stats.tuples_scanned} "
        f"(fact table: {catalog.table('lineorder').row_count} rows; "
        f"late arrivals only extend the shared scan, they never restart it)"
    )


if __name__ == "__main__":
    main()
