#!/usr/bin/env python3
"""Client sessions: the PEP-249-shaped front door (DESIGN.md section 10).

Demonstrates the full client surface over the always-on service:

1. ``repro.connect()`` opening a context-managed session (the
   background continuous scan starts with it and stops with it);
2. parameterized SQL — qmark and named placeholders bound safely into
   the parse tree, never into the statement text;
3. cursor fetch semantics, iteration, and ``description`` metadata;
4. ``executemany`` fanning one statement's bindings out over the
   admission queue so they share one scan;
5. watching a running query's partial results, then cancelling it.

Run:  python examples/client_session.py
"""

import repro


def main() -> None:
    print("Connecting to a milli-scale SSB warehouse...")
    with repro.connect(
        scale_factor=0.002, seed=7, execution="batched"
    ) as connection:
        # -- parameterized SQL (qmark style) --------------------------
        cursor = connection.execute(
            "SELECT d_year, SUM(lo_revenue) AS revenue "
            "FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey AND d_year >= ? "
            "GROUP BY d_year ORDER BY d_year",
            (1992,),
        )
        print("\n-- revenue by year (bound parameter: 1992) --")
        print("columns:", [column[0] for column in cursor.description])
        for year, revenue in cursor:
            print(f"  {year}: {revenue:,}")

        # -- executemany: one statement, many bindings, one scan ------
        regions = ("AMERICA", "ASIA", "EUROPE")
        counts = connection.executemany(
            "SELECT s_region, COUNT(*) FROM lineorder, supplier "
            "WHERE lo_suppkey = s_suppkey AND s_region = :region "
            "GROUP BY s_region",
            [{"region": region} for region in regions],
        ).fetchall()
        print("\n-- per-region fact counts via executemany --")
        for region, count in counts:
            print(f"  {region}: {count} rows")

        # -- a malicious-looking string is just data ------------------
        cursor = connection.execute(
            "SELECT COUNT(*) FROM lineorder, supplier "
            "WHERE lo_suppkey = s_suppkey AND s_region = ?",
            ("'; DROP TABLE lineorder; --",),
        )
        print(
            "\ninjection attempt bound as plain data ->",
            cursor.fetchone(), "(no supplier has that 'region')",
        )

        # -- streaming partials and cancellation ----------------------
        running = connection.execute(
            "SELECT COUNT(*) FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey"
        )
        partial = running.rows_so_far()  # never blocks
        print(f"\npartial snapshot while mid-scan: {partial}")
        cancelled = running.cancel()
        print(
            f"cancelled {cancelled} in-flight quer"
            f"{'y' if cancelled == 1 else 'ies'}; "
            f"slot frees within one scan cycle"
        )

        summary = connection.warehouse.latency_summary()
        print(
            f"\nsession telemetry: {summary['count']:.0f} completions, "
            f"p95 latency {summary['p95'] * 1e3:.1f} ms"
        )
    print("connection closed; service stopped, no threads left behind")


if __name__ == "__main__":
    main()
