#!/usr/bin/env python3
"""The paper's headline scenario: many concurrent ad-hoc star queries.

Runs the same 24-query workload through the CJOIN path and through the
query-at-a-time baseline over identical storage, then compares:

* result equivalence (they must agree row-for-row),
* fact-table I/O volume (CJOIN reads it ~once; the baseline n times),
* access pattern (shared scan stays sequential; concurrent private
  scans degrade to random I/O — the paper's section 1 motivation).

Run:  python examples/concurrent_analytics.py
"""

import time

from repro.baseline import EngineProfile, QueryAtATimeEngine
from repro.cjoin import CJoinOperator
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats

QUERY_COUNT = 24
SELECTIVITY = 0.10


def main() -> None:
    print("Loading SSB (sf=0.002) and generating the workload...")
    catalog, star = load_ssb(scale_factor=0.002, seed=9)
    generator = ssb_workload_generator(seed=31, catalog=catalog)
    queries = generator.generate(QUERY_COUNT, selectivity=SELECTIVITY)
    fact_pages = catalog.table("lineorder").page_count

    print(f"\n== CJOIN: {QUERY_COUNT} queries, one always-on pipeline ==")
    cjoin_stats = IOStats()
    operator = CJoinOperator(
        catalog, star, buffer_pool=BufferPool(16, cjoin_stats)
    )
    started = time.perf_counter()
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    cjoin_elapsed = time.perf_counter() - started
    cjoin_results = [handle.results() for handle in handles]
    print(f"  wall time: {cjoin_elapsed:.2f}s")
    print(
        f"  fact pages on disk: {fact_pages}; disk reads: "
        f"{cjoin_stats.disk_reads} ({cjoin_stats.sequential_fraction:.0%} "
        f"sequential)"
    )
    print(f"  probes per scanned tuple: {operator.stats.probes_per_tuple:.2f}")

    print(f"\n== Baseline: {QUERY_COUNT} private hash-join plans ==")
    baseline_stats = IOStats()
    engine = QueryAtATimeEngine(
        catalog,
        star,
        BufferPool(16, baseline_stats),
        EngineProfile.system_x(),
    )
    started = time.perf_counter()
    baseline_results = engine.execute_concurrent(queries, max_in_flight=8)
    baseline_elapsed = time.perf_counter() - started
    print(f"  wall time: {baseline_elapsed:.2f}s")
    print(
        f"  disk reads: {baseline_stats.disk_reads} "
        f"({baseline_stats.sequential_fraction:.0%} sequential)"
    )

    assert cjoin_results == baseline_results, "engines disagree!"
    print("\nBoth engines returned identical results for all queries.")
    print(
        f"I/O sharing factor: {baseline_stats.disk_reads / max(cjoin_stats.disk_reads, 1):.1f}x "
        f"fewer disk reads under CJOIN"
    )
    print(
        "(Wall-clock parity is expected here: pure Python pays per-tuple "
        "overhead that a C engine would not; the sharing shows in the "
        "I/O counters and in the calibrated models under benchmarks/.)"
    )


if __name__ == "__main__":
    main()
