#!/usr/bin/env python3
"""Streaming ingestion racing the continuous scan (DESIGN.md section 15).

A producer streams fact appends and a dimension upsert through an
IngestWriter while the always-on service keeps answering queries.
Batches stage in the bounded ingest buffer and land at scan-cycle
boundaries under snapshot isolation: no query ever sees half a batch,
and every acked row is visible within two scan cycles.

Run:  python examples/streaming_ingest.py
"""

from repro.engine import Warehouse


def count_sql() -> str:
    return (
        "SELECT COUNT(*) FROM lineorder, date "
        "WHERE lo_orderdate = d_datekey"
    )


def main() -> None:
    warehouse = Warehouse.from_ssb(
        scale_factor=0.0005, seed=3, enable_updates=True
    )
    warehouse.start_service()

    fact = warehouse.catalog.table("lineorder")
    template_row = fact.all_rows()[0]
    print(f"Initial fact rows: {fact.row_count}")

    # queries keep flowing while the producer writes
    before = warehouse.submit_sql(count_sql())

    # stream 120 late-arriving sales in small batches; the writer
    # stages every 32 rows, flush() blocks until the scan applied all
    with warehouse.writer(batch_rows=32) as writer:
        for i in range(120):
            row = list(template_row)
            row[12] = 2_000_000 + i  # lo_revenue (recognizable)
            writer.append(tuple(row))
    receipt = writer.last_receipt
    print(
        f"Streamed {receipt['rows']} rows in {receipt['batches']} "
        f"batches; acked at snapshot {receipt['snapshot_id']}"
    )

    # acked means applied: a fresh query sees every streamed row
    after = warehouse.submit_sql(count_sql())
    count_before = before.results(timeout=30.0)[0][0]
    count_after = after.results(timeout=30.0)[0][0]
    print(f"Query submitted before the stream sees {count_before} rows")
    print(f"Query submitted after  the stream sees {count_after} rows")
    assert count_after >= count_before

    # dimension upserts ride the same batches, all-or-nothing
    supplier = warehouse.catalog.table("supplier")
    updated = list(supplier.all_rows()[0])
    updated[2] = "STREAMED CITY"  # s_city
    ticket = warehouse.ingest(dim_upserts={"supplier": [tuple(updated)]})
    receipt = ticket.result(timeout=30.0)
    print(f"Upsert applied in generation {receipt['generation']}")
    assert supplier.all_rows()[0][2] == "STREAMED CITY"

    ingest = warehouse.stats()["ingest"]
    print(
        f"Ingest counters: {ingest['rows_applied']} rows applied, "
        f"{ingest['batches_applied']} batches, "
        f"generation {ingest['generation']}, "
        f"{ingest['buffer_rows']} rows still buffered"
    )

    warehouse.close()
    print("Closed cleanly: pending ingest drained, nothing leaked.")


if __name__ == "__main__":
    main()
