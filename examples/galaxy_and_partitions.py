#!/usr/bin/env python3
"""Section 5 extensions in action: galaxy joins and partition pruning.

Part 1 — galaxy schema: a fact-to-fact query (orders |><| shipments)
evaluated as two CJOIN star sub-plans piped into a hash join.

Part 2 — partitioned fact table: queries with a range predicate on
the partitioning column pin only their partitions; the continuous
scan covers the needed union and queries terminate early.

Run:  python examples/galaxy_and_partitions.py
"""

from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin import CJoinOperator, GalaxyJoinQuery, evaluate_galaxy_join
from repro.cjoin.partitioned import PartitionedCJoinOperator, as_catalog_table
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.generator import SSBGenerator
from repro.ssb.schema import ssb_star_schema
from repro.storage.partition import PartitionedTable, RangePartitioning
from repro.storage.table import Table

INT = DataType.INT
STRING = DataType.STRING


def galaxy_demo() -> None:
    print("== Galaxy schema: orders |><| shipments ==")
    region = TableSchema(
        "region", [Column("r_id", INT), Column("r_name", STRING)],
        primary_key="r_id",
    )
    orders = TableSchema(
        "orders",
        [Column("o_id", INT), Column("o_region", INT), Column("o_amount", INT)],
        foreign_keys=[ForeignKey("o_region", "region", "r_id")],
    )
    carrier = TableSchema(
        "carrier", [Column("c_id", INT), Column("c_name", STRING)],
        primary_key="c_id",
    )
    shipments = TableSchema(
        "shipments",
        [Column("sh_order", INT), Column("sh_carrier", INT), Column("sh_cost", INT)],
        foreign_keys=[ForeignKey("sh_carrier", "carrier", "c_id")],
    )
    orders_star = StarSchema(fact=orders, dimensions={"region": region})
    shipments_star = StarSchema(fact=shipments, dimensions={"carrier": carrier})

    orders_catalog = Catalog()
    orders_catalog.register_table(
        Table.from_rows(region, [(1, "east"), (2, "west")])
    )
    orders_catalog.register_table(
        Table.from_rows(
            orders, [(100, 1, 50), (101, 2, 70), (102, 1, 20), (103, 2, 90)]
        )
    )
    orders_catalog.register_star(orders_star)

    shipments_catalog = Catalog()
    shipments_catalog.register_table(
        Table.from_rows(carrier, [(1, "fast"), (2, "slow")])
    )
    shipments_catalog.register_table(
        Table.from_rows(
            shipments,
            [(100, 1, 5), (100, 2, 7), (101, 1, 6), (103, 2, 9)],
        )
    )
    shipments_catalog.register_star(shipments_star)

    galaxy_query = GalaxyJoinQuery(
        left=StarQuery.build(
            "orders",
            dimension_predicates={"region": Comparison("r_name", "=", "east")},
            select=[ColumnRef("orders", "o_id"), ColumnRef("orders", "o_amount")],
        ),
        right=StarQuery.build(
            "shipments",
            select=[
                ColumnRef("shipments", "sh_order"),
                ColumnRef("shipments", "sh_cost"),
            ],
        ),
        left_join_column=0,
        right_join_column=0,
        group_by_columns=(0,),
        aggregates=(("sum", 3),),
    )
    rows = evaluate_galaxy_join(
        galaxy_query,
        CJoinOperator(orders_catalog, orders_star),
        CJoinOperator(shipments_catalog, shipments_star),
    )
    print("  total shipping cost per east-region order:", rows)


def partition_demo() -> None:
    print("\n== Partitioned fact table: early termination ==")
    star = ssb_star_schema()
    generator = SSBGenerator(scale_factor=0.001, seed=8)
    data = generator.generate_all()
    date_keys = sorted(row[0] for row in data["date"])
    boundary = date_keys[len(date_keys) // 2]
    partitioning = RangePartitioning("lo_orderdate", (boundary,))
    partitioned = PartitionedTable.from_rows(
        star.fact, partitioning, data["lineorder"]
    )
    catalog = Catalog()
    for name in ("date", "customer", "supplier", "part"):
        catalog.register_table(
            Table.from_rows(star.dimension(name), data[name])
        )
    catalog.register_table(as_catalog_table(partitioned))
    catalog.register_star(star)

    operator = PartitionedCJoinOperator(catalog, star, partitioned)
    recent = StarQuery.build(
        "lineorder",
        fact_predicate=Comparison("lo_orderdate", ">=", boundary),
        aggregates=[AggregateSpec("count"), AggregateSpec("sum", "lineorder", "lo_revenue")],
    )
    everything = StarQuery.build(
        "lineorder",
        aggregates=[AggregateSpec("count")],
    )
    print(f"  partitions: {partitioned.partition_row_counts()} rows "
          f"(split at d_datekey {boundary})")
    print(f"  'recent' query needs partitions: "
          f"{sorted(operator.partitions_for(recent))}")
    recent_handle = operator.submit(recent)
    everything_handle = operator.submit(everything)
    operator.run_until_drained()
    print(f"  recent: {recent_handle.results()}")
    print(f"  everything: {everything_handle.results()}")
    print(f"  tuples scanned: {operator.stats.tuples_scanned} "
          f"(full table twice would be {2 * partitioned.row_count})")


if __name__ == "__main__":
    galaxy_demo()
    partition_demo()
