#!/usr/bin/env python3
"""Quickstart: load a milli-scale SSB warehouse and run star queries.

Demonstrates the two front doors of the library:

1. the Warehouse facade with SQL text, and
2. programmatic StarQuery objects submitted straight to the CJOIN
   operator, sharing one continuous scan.

Run:  python examples/quickstart.py
"""

from repro import Warehouse
from repro.ssb.queries import ssb_query


def main() -> None:
    print("Loading SSB at scale factor 0.001 (~6,000 fact rows)...")
    warehouse = Warehouse.from_ssb(scale_factor=0.001, seed=42)

    print("\n-- SQL: revenue by year --")
    rows = warehouse.execute_sql(
        "SELECT d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder, date "
        "WHERE lo_orderdate = d_datekey "
        "GROUP BY d_year ORDER BY d_year"
    )
    for year, revenue in rows:
        print(f"  {year}: {revenue:,}")

    print("\n-- Three SSB benchmark queries on one shared scan --")
    handles = [
        warehouse.submit(ssb_query(name)) for name in ("Q2.1", "Q3.1", "Q4.1")
    ]
    warehouse.run()
    for name, handle in zip(("Q2.1", "Q3.1", "Q4.1"), handles):
        rows = handle.results()
        print(f"  {name}: {len(rows)} groups", end="")
        if rows:
            print(f"; first row: {rows[0]}")
        else:
            print(
                " (empty at milli-scale: the verbatim benchmark predicates"
                " select no rows in the tiny dimensions)"
            )

    stats = warehouse.cjoin.stats
    fact_rows = warehouse.catalog.table("lineorder").row_count
    print(
        f"\nShared-scan accounting: {stats.tuples_scanned} tuples scanned "
        f"for {stats.queries_completed + 1} queries "
        f"({fact_rows} fact rows per private scan would have been "
        f"{(stats.queries_completed + 1) * fact_rows})"
    )
    print(f"I/O pattern: {warehouse.io_stats.sequential_fraction:.0%} sequential")


if __name__ == "__main__":
    main()
