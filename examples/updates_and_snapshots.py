#!/usr/bin/env python3
"""Mixed queries and updates under snapshot isolation (section 3.5).

Interleaves fact-table updates with long-running star queries: each
query is pinned to the snapshot current at submission, all snapshots
share the single CJOIN operator (visibility is the Preprocessor's
"virtual predicate"), and late queries see the new data.

Run:  python examples/updates_and_snapshots.py
"""

from repro.engine import Warehouse


def revenue_sql() -> str:
    return (
        "SELECT d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder, date "
        "WHERE lo_orderdate = d_datekey GROUP BY d_year"
    )


def main() -> None:
    warehouse = Warehouse.from_ssb(
        scale_factor=0.0005, seed=3, enable_updates=True
    )
    fact = warehouse.catalog.table("lineorder")
    date_key = warehouse.catalog.table("date").all_rows()[0][0]
    template_row = fact.all_rows()[0]

    print(f"Initial fact rows: {fact.row_count}")
    before = warehouse.submit_sql("SELECT COUNT(*) FROM lineorder")

    # a burst of late-arriving sales, committed as one transaction
    new_rows = []
    for i in range(50):
        row = list(template_row)
        row[5] = date_key           # lo_orderdate
        row[12] = 1_000_000 + i     # lo_revenue (recognizable)
        new_rows.append(tuple(row))
    snapshot_id = warehouse.apply_update(inserts=new_rows)
    print(f"Committed 50 inserts as snapshot {snapshot_id}")

    after = warehouse.submit_sql("SELECT COUNT(*) FROM lineorder")
    warehouse.run()

    count_before = before.results()[0][0]
    count_after = after.results()[0][0]
    print(f"Query submitted before the commit sees {count_before} rows")
    print(f"Query submitted after  the commit sees {count_after} rows")
    assert count_after == count_before + 50

    print("\nDeleting the first 10 fact rows (snapshot", end=" ")
    snapshot_id = warehouse.apply_update(deletes=list(range(10)))
    print(f"{snapshot_id})")
    final = warehouse.execute_sql("SELECT COUNT(*) FROM lineorder")
    print(f"Latest snapshot row count: {final[0][0]}")
    assert final[0][0] == count_after - 10

    print("\nRevenue by year on the latest snapshot:")
    for year, revenue in warehouse.execute_sql(revenue_sql()):
        print(f"  {year}: {revenue:,}")
    print(
        "\nAll three snapshots were served by ONE CJOIN operator; "
        "visibility was evaluated per query by the Preprocessor."
    )


if __name__ == "__main__":
    main()
