"""repro — a reproduction of "A Scalable, Predictable Join Operator for

Highly Concurrent Data Warehouses" (Candea, Polyzotis, Vingralek;
VLDB 2009): the CJOIN shared star-join operator, a query-at-a-time
baseline engine, the Star Schema Benchmark substrate, and the
calibrated performance models that regenerate the paper's evaluation.

Quick start::

    import repro

    with repro.connect(scale_factor=0.001) as connection:
        cursor = connection.execute(
            "SELECT d_year, SUM(lo_revenue) AS revenue "
            "FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey AND d_year >= ? "
            "GROUP BY d_year",
            (1994,),
        )
        for year, revenue in cursor:
            print(year, revenue)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.catalog import (
    Catalog,
    Column,
    DataType,
    ForeignKey,
    GalaxySchema,
    StarSchema,
    TableSchema,
)
from repro.cjoin import CJoinOperator, ExecutorConfig, QueryHandle
from repro.client import Connection, Cursor, connect, connect_async
from repro.engine import (
    AutoTuner,
    Submission,
    SwapReport,
    TuningDecision,
    TuningPolicy,
    Warehouse,
    WarehouseService,
    blue_green_swap,
)
from repro.server import AsyncWarehouseServer, WarehouseServer
from repro.errors import IngestBackpressureError, IngestError, ReproError
from repro.ingest import IngestWriter
from repro.tuning import TuningConfig
from repro.query import (
    AggregateSpec,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
    StarQuery,
    TruePredicate,
)
from repro.storage import Table

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "And",
    "AsyncWarehouseServer",
    "AutoTuner",
    "Between",
    "CJoinOperator",
    "Catalog",
    "Column",
    "ColumnRef",
    "Comparison",
    "Connection",
    "Cursor",
    "DataType",
    "ExecutorConfig",
    "ForeignKey",
    "GalaxySchema",
    "InList",
    "IngestBackpressureError",
    "IngestError",
    "IngestWriter",
    "Not",
    "Or",
    "QueryHandle",
    "ReproError",
    "StarQuery",
    "StarSchema",
    "Submission",
    "SwapReport",
    "Table",
    "TableSchema",
    "TruePredicate",
    "TuningConfig",
    "TuningDecision",
    "TuningPolicy",
    "Warehouse",
    "WarehouseServer",
    "WarehouseService",
    "__version__",
    "blue_green_swap",
    "connect",
    "connect_async",
]
