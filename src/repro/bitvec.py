"""Query-relevance bit-vectors.

CJOIN tags every in-flight fact tuple with a bit-vector ``b_tau`` whose
i-th bit records whether the tuple is still relevant to query ``Q_i``
(paper section 3.1).  Dimension tuples carry an analogous ``b_delta``,
and each dimension hash table keeps one complement bitmap ``b_Dj`` for
tuples absent from the table.

We represent bit-vectors as plain Python ``int`` values: arbitrary
width, O(words) bitwise AND, and no per-bit object overhead.  This
module wraps the raw-int representation with named, documented
operations so call sites read like the paper's pseudo-code.

Query ids are 1-based (as in the paper); bit positions are 0-based, so
query ``Q_i`` owns bit ``i - 1``.
"""

from __future__ import annotations

from collections.abc import Iterator
from operator import and_ as _and

#: The all-zeroes bit-vector (the paper's ``0`` symbol).
EMPTY: int = 0


def bit_for_query(query_id: int) -> int:
    """Return a bit-vector with only query ``query_id``'s bit set.

    Raises:
        ValueError: if ``query_id`` is not a positive integer.
    """
    if query_id < 1:
        raise ValueError(f"query ids are 1-based, got {query_id}")
    return 1 << (query_id - 1)


def set_bit(vector: int, query_id: int) -> int:
    """Return ``vector`` with query ``query_id``'s bit turned on."""
    return vector | bit_for_query(query_id)


def clear_bit(vector: int, query_id: int) -> int:
    """Return ``vector`` with query ``query_id``'s bit turned off."""
    return vector & ~bit_for_query(query_id)


def test_bit(vector: int, query_id: int) -> bool:
    """Return True iff query ``query_id``'s bit is on in ``vector``."""
    return bool(vector & bit_for_query(query_id))


def all_ones(width: int) -> int:
    """Return a bit-vector with bits for queries 1..``width`` all set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def mask_to_width(vector: int, width: int) -> int:
    """Drop any bits above position ``width`` - 1.

    Used when ``maxId(Q)`` shrinks after query finalization: stale high
    bits must not leak into relevance decisions.
    """
    return vector & all_ones(width)


def iter_query_ids(vector: int) -> Iterator[int]:
    """Yield the 1-based query ids whose bits are set, in ascending order.

    This is the Distributor's routing primitive: for a surviving fact
    tuple it enumerates exactly the queries that must receive it.
    """
    position = 0
    while vector:
        if vector & 1:
            yield position + 1
        vector >>= 1
        position += 1


def popcount(vector: int) -> int:
    """Return the number of set bits (queries) in ``vector``."""
    return vector.bit_count()


# ----------------------------------------------------------------------
# Bulk operations (the batched fast path, DESIGN.md section 5)
#
# A FactBatch carries one bit-vector per row plus a per-batch *alive*
# mask (bit r set iff row r is still in flight).  These helpers give the
# batch pipeline its amortized primitives: one Python call covers a
# whole batch column instead of one call per tuple.
# ----------------------------------------------------------------------
def or_reduce(vectors) -> int:
    """OR-reduce an iterable of bit-vectors into one union vector.

    The union of a batch's row bit-vectors is the batch's "who still
    cares" summary.  The Filter hot path goes through the index-driven
    :func:`or_reduce_at` (via ``FactBatch.union_bits``); this whole-
    sequence form is the general-purpose primitive.
    """
    union = 0
    for vector in vectors:
        union |= vector
    return union


def or_reduce_at(vectors, indices) -> int:
    """OR-reduce ``vectors[r]`` over the row indices in ``indices``."""
    union = 0
    for index in indices:
        union |= vectors[index]
    return union


def bulk_and(left, right) -> list[int]:
    """Element-wise AND of two equal-length bit-vector sequences.

    Raises:
        ValueError: on a length mismatch (a silent zip would mask a
            batch bookkeeping bug).
    """
    if len(left) != len(right):
        raise ValueError(
            f"bulk_and length mismatch: {len(left)} vs {len(right)}"
        )
    return [a & b for a, b in zip(left, right)]


def bulk_and_lookup(vectors, keys, masks_of) -> list[int]:
    """AND each bit-vector with the mask its row's key maps to.

    The batch-kernel filtering primitive (DESIGN.md section 14):
    ``vectors[i] & masks_of[keys[i]]`` for every position, produced by
    two C-level ``map`` passes — the dict lookup and the AND — with no
    Python-level loop body.  ``masks_of`` must cover every key (the
    kernels build it from the deduplicated probe results, so it does
    by construction).

    Raises:
        ValueError: on a length mismatch (a silent zip would mask a
            batch bookkeeping bug).
    """
    if len(vectors) != len(keys):
        raise ValueError(
            f"bulk_and_lookup length mismatch: {len(vectors)} vs {len(keys)}"
        )
    return list(map(_and, vectors, map(masks_of.__getitem__, keys)))


def bulk_popcount(vectors) -> int:
    """Total number of set bits across a sequence of bit-vectors."""
    return sum(vector.bit_count() for vector in vectors)


def pack_positions(positions) -> int:
    """Build a mask with the given 0-based bit positions set.

    The inverse of :func:`iter_set_positions`; used to build the
    dropped-rows mask a Filter subtracts from a batch's alive mask.
    Positions are distinct bits, so summing the shifted singletons
    equals OR-ing them — and ``sum(map(...))`` runs at C level.
    """
    return sum(map((1).__lshift__, positions))


def iter_set_positions(mask: int) -> Iterator[int]:
    """Yield the 0-based set-bit positions of ``mask`` in ascending order.

    Unlike :func:`iter_query_ids` (1-based query ids), this enumerates
    *row* slots of a batch alive mask.
    """
    position = 0
    while mask:
        if mask & 1:
            yield position
        mask >>= 1
        position += 1


def to_string(vector: int, width: int) -> str:
    """Render ``vector`` as the paper draws it: bit for Q1 first.

    >>> to_string(0b101, width=4)
    '1010'
    """
    return "".join("1" if vector >> i & 1 else "0" for i in range(width))


def from_string(bits: str) -> int:
    """Parse the :func:`to_string` rendering back into a bit-vector.

    Raises:
        ValueError: if ``bits`` contains characters other than 0/1.
    """
    vector = 0
    for index, char in enumerate(bits):
        if char == "1":
            vector |= 1 << index
        elif char != "0":
            raise ValueError(f"invalid bit character {char!r} in {bits!r}")
    return vector
