"""Recursive-descent parser and binder for the star-query dialect.

Parsing builds a neutral :class:`~repro.sql.ast.SelectStatement`;
binding resolves names against a :class:`~repro.catalog.schema.StarSchema`,
checks that the WHERE clause decomposes into the paper's template
(fact-to-dimension equi-joins + single-table predicates), and emits a
:class:`~repro.query.star.StarQuery`.

Parameterized SQL (DESIGN.md section 10): literal positions accept
``?`` (qmark) or ``:name`` (named) placeholders, never both in one
statement.  :func:`bind_parameters` substitutes caller-supplied values
into the parse tree *before* name binding, so placeholder values are
data by construction — a string parameter containing quotes or SQL
fragments can never re-enter the token stream.
"""

from __future__ import annotations

import dataclasses

from repro.catalog.schema import StarSchema
from repro.errors import ParseError, QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
)
from repro.query.star import ColumnRef, StarQuery
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0
        #: count of qmark placeholders seen (assigns their indexes)
        self._positional_params = 0
        #: 'qmark' or 'named' once the first placeholder is seen
        self._param_style: str | None = None

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        """The token under the cursor (never past EOF)."""
        return self.tokens[self.index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        """Consume the current token iff it matches; else return None."""
        token = self.current
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self.advance()

    def expect(self, kind: str, value: str | None = None) -> Token:
        """Consume a token that must match, or raise ParseError."""
        token = self.accept(kind, value)
        if token is None:
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {self.current.value!r}",
                self.current.position,
            )
        return token

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.SelectStatement:
        """Parse one complete SELECT statement to EOF."""
        self.expect("keyword", "SELECT")
        select_items = self._select_list()
        self.expect("keyword", "FROM")
        tables = self._table_list()
        where = None
        if self.accept("keyword", "WHERE"):
            where = self._or_expr()
        group_by: tuple = ()
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by = self._column_list()
        order_by: tuple = ()
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by = self._order_list()
        self.expect("eof")
        return ast.SelectStatement(
            select_items=tuple(select_items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
        )

    def _select_list(self) -> list:
        items = [self._select_item()]
        while self.accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        token = self.current
        if token.kind == "keyword" and token.value in _AGGREGATE_KEYWORDS:
            return self._aggregate_call()
        name = self._column_name()
        alias = self._optional_alias()
        return ast.SelectColumn(name, alias)

    def _aggregate_call(self) -> ast.AggregateCall:
        kind = self.advance().value.lower()
        self.expect("punct", "(")
        if kind == "count" and self.accept("op", "*"):
            self.expect("punct", ")")
            return ast.AggregateCall(kind, None, alias=self._optional_alias())
        column = self._column_name()
        column2 = None
        op = "*"
        operator = self.current
        if operator.kind == "op" and operator.value in ("*", "-", "+"):
            self.advance()
            op = operator.value
            column2 = self._column_name()
        self.expect("punct", ")")
        return ast.AggregateCall(
            kind, column, column2, op, alias=self._optional_alias()
        )

    def _optional_alias(self) -> str | None:
        if self.accept("keyword", "AS"):
            return self.expect("ident").value
        return None

    def _table_list(self) -> list[str]:
        tables = [self.expect("ident").value]
        while self.accept("punct", ","):
            tables.append(self.expect("ident").value)
        return tables

    def _column_list(self) -> list[ast.ColumnName]:
        columns = [self._column_name()]
        while self.accept("punct", ","):
            columns.append(self._column_name())
        return columns

    def _order_list(self) -> list[ast.ColumnName]:
        columns = [self._column_name()]
        self._optional_direction()
        while self.accept("punct", ","):
            columns.append(self._column_name())
            self._optional_direction()
        return columns

    def _optional_direction(self) -> None:
        if not self.accept("keyword", "ASC"):
            self.accept("keyword", "DESC")

    def _column_name(self) -> ast.ColumnName:
        first = self.expect("ident").value
        if self.accept("punct", "."):
            column = self.expect("ident").value
            return ast.ColumnName(column=column, table=first)
        return ast.ColumnName(column=first)

    # ------------------------------------------------------------------
    # WHERE expressions
    # ------------------------------------------------------------------
    def _or_expr(self) -> ast.WhereNode:
        children = [self._and_expr()]
        while self.accept("keyword", "OR"):
            children.append(self._and_expr())
        if len(children) == 1:
            return children[0]
        return ast.OrNode(tuple(children))

    def _and_expr(self) -> ast.WhereNode:
        children = [self._not_expr()]
        while self.accept("keyword", "AND"):
            children.append(self._not_expr())
        if len(children) == 1:
            return children[0]
        return ast.AndNode(tuple(children))

    def _not_expr(self) -> ast.WhereNode:
        if self.accept("keyword", "NOT"):
            return ast.NotNode(self._not_expr())
        return self._primary()

    def _primary(self) -> ast.WhereNode:
        if self.accept("punct", "("):
            inner = self._or_expr()
            self.expect("punct", ")")
            return inner
        return self._predicate()

    def _predicate(self) -> ast.WhereNode:
        column = self._column_name()
        if self.accept("keyword", "BETWEEN"):
            low = self._literal()
            self.expect("keyword", "AND")
            high = self._literal()
            return ast.BetweenNode(column, low, high)
        if self.accept("keyword", "IN"):
            self.expect("punct", "(")
            values = [self._literal()]
            while self.accept("punct", ","):
                values.append(self._literal())
            self.expect("punct", ")")
            return ast.InListNode(column, tuple(values))
        operator = self.current
        if operator.kind != "op" or operator.value not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise ParseError(
                f"expected a comparison operator, found {operator.value!r}",
                operator.position,
            )
        self.advance()
        op = "!=" if operator.value == "<>" else operator.value
        token = self.current
        if token.kind == "ident":
            right = self._column_name()
            if op != "=":
                raise ParseError(
                    "column-to-column predicates must be equi-joins",
                    operator.position,
                )
            return ast.JoinNode(column, right)
        return ast.ComparisonNode(column, op, self._literal())

    def _literal(self):
        token = self.current
        if token.kind == "param":
            return self._parameter()
        if token.kind == "op" and token.value == "-":
            self.advance()
            number = self.expect("number")
            return -number.literal
        if token.kind in ("number", "string"):
            self.advance()
            return token.literal
        raise ParseError(
            f"expected a literal, found {token.value!r}", token.position
        )

    def _parameter(self) -> ast.Parameter:
        token = self.advance()
        style = "qmark" if token.value == "?" else "named"
        if self._param_style is None:
            self._param_style = style
        elif self._param_style != style:
            raise ParseError(
                "cannot mix qmark (?) and named (:name) parameters in "
                "one statement",
                token.position,
            )
        if style == "qmark":
            index = self._positional_params
            self._positional_params += 1
            return ast.Parameter(index=index)
        return ast.Parameter(name=token.literal)


# ----------------------------------------------------------------------
# Binding: SelectStatement -> StarQuery
# ----------------------------------------------------------------------
class _Binder:
    """Resolves names and decomposes WHERE into the star template."""

    def __init__(self, statement: ast.SelectStatement, star: StarSchema) -> None:
        self.statement = statement
        self.star = star
        self._from_tables = set(statement.tables)

    def bind(self) -> StarQuery:
        """Resolve names and emit a validated StarQuery."""
        self._check_tables()
        dimension_predicates, fact_predicate = self._bind_where()
        group_by = [self._bind_column(name) for name in self.statement.group_by]
        select: list[ColumnRef] = []
        aggregates: list[AggregateSpec] = []
        for item in self.statement.select_items:
            if isinstance(item, ast.SelectColumn):
                select.append(self._bind_column(item.name))
            else:
                aggregates.append(self._bind_aggregate(item))
        query = StarQuery.build(
            fact_table=self.star.fact.name,
            dimension_predicates=dimension_predicates,
            fact_predicate=fact_predicate,
            group_by=group_by,
            select=select,
            aggregates=aggregates,
        )
        query.validate(self.star)
        return query

    def _check_tables(self) -> None:
        known = {self.star.fact.name, *self.star.dimension_names()}
        for table in self.statement.tables:
            if table not in known:
                raise ParseError(f"unknown table {table!r} in FROM")
        if self.star.fact.name not in self._from_tables:
            raise ParseError(
                f"star queries must include the fact table "
                f"{self.star.fact.name!r} in FROM"
            )

    def _owner(self, name: ast.ColumnName) -> str:
        """Resolve the owning table of a column mention.

        Raises:
            ParseError: unknown/ambiguous column, or table not in FROM.
        """
        from repro.errors import SchemaError

        if name.table is not None:
            if name.table not in self._from_tables:
                raise ParseError(
                    f"table {name.table!r} is not in the FROM list"
                )
            try:
                self.star.table(name.table).column_index(name.column)
            except SchemaError as exc:
                raise ParseError(str(exc)) from exc
            return name.table
        try:
            owner = self.star.owner_of_column(name.column)
        except SchemaError as exc:
            raise ParseError(str(exc)) from exc
        if owner.name not in self._from_tables:
            raise ParseError(
                f"column {name.column!r} belongs to {owner.name!r}, which "
                f"is not in the FROM list"
            )
        return owner.name

    def _bind_column(self, name: ast.ColumnName) -> ColumnRef:
        return ColumnRef(self._owner(name), name.column)

    def _bind_aggregate(self, call: ast.AggregateCall) -> AggregateSpec:
        if call.column is None:
            return AggregateSpec("count", alias=call.alias)
        ref = self._bind_column(call.column)
        column2 = None
        if call.column2 is not None:
            ref2 = self._bind_column(call.column2)
            if ref2.table != ref.table:
                raise ParseError(
                    "aggregate input expressions must reference one table"
                )
            column2 = ref2.column
        return AggregateSpec(
            call.kind,
            ref.table,
            ref.column,
            column2=column2,
            combine=call.op,
            alias=call.alias,
        )

    # ------------------------------------------------------------------
    # WHERE decomposition
    # ------------------------------------------------------------------
    def _bind_where(self) -> tuple[dict[str, Predicate], Predicate | None]:
        dimension_predicates: dict[str, Predicate] = {}
        fact_conjuncts: list[Predicate] = []
        joined: set[str] = set()
        for conjunct in self._top_level_conjuncts(self.statement.where):
            if isinstance(conjunct, ast.JoinNode):
                joined.add(self._bind_join(conjunct))
                continue
            table, predicate = self._bind_single_table(conjunct)
            if table == self.star.fact.name:
                fact_conjuncts.append(predicate)
            elif table in dimension_predicates:
                dimension_predicates[table] = And(
                    dimension_predicates[table], predicate
                )
            else:
                dimension_predicates[table] = predicate
        # every filtered/joined dimension must be reachable via a join;
        # dimensions in FROM without a join predicate are an error
        for table in self._from_tables - {self.star.fact.name}:
            if table not in joined:
                raise ParseError(
                    f"dimension {table!r} appears in FROM without a join "
                    f"predicate to the fact table"
                )
        fact_predicate: Predicate | None = None
        if fact_conjuncts:
            fact_predicate = (
                fact_conjuncts[0]
                if len(fact_conjuncts) == 1
                else And(*fact_conjuncts)
            )
        return dimension_predicates, fact_predicate

    def _top_level_conjuncts(self, node: ast.WhereNode | None):
        if node is None:
            return
        if isinstance(node, ast.AndNode):
            for child in node.children:
                yield from self._top_level_conjuncts(child)
        else:
            yield node

    def _bind_join(self, node: ast.JoinNode) -> str:
        """Check a join conjunct is fact FK = dimension PK; return the dim."""
        left_table = self._owner(node.left)
        right_table = self._owner(node.right)
        fact_name = self.star.fact.name
        if left_table == fact_name and right_table != fact_name:
            fact_column, dim_table, dim_column = (
                node.left.column, right_table, node.right.column,
            )
        elif right_table == fact_name and left_table != fact_name:
            fact_column, dim_table, dim_column = (
                node.right.column, left_table, node.left.column,
            )
        else:
            raise ParseError(
                "join predicates must link the fact table to a dimension"
            )
        fk = self.star.fact.foreign_key_to(dim_table)
        if fk.column != fact_column or fk.referenced_column != dim_column:
            raise ParseError(
                f"join {node.left} = {node.right} does not follow the "
                f"declared foreign key {fact_name}.{fk.column} -> "
                f"{dim_table}.{fk.referenced_column}"
            )
        return dim_table

    def _bind_single_table(
        self, node: ast.WhereNode
    ) -> tuple[str, Predicate]:
        """Convert a WHERE subtree into (owning table, predicate).

        Raises:
            ParseError: if the subtree references multiple tables or
                contains a nested join predicate.
        """
        tables: set[str] = set()
        predicate = self._convert(node, tables)
        if len(tables) != 1:
            raise ParseError(
                "each non-join predicate must reference exactly one table"
            )
        return tables.pop(), predicate

    def _convert(self, node: ast.WhereNode, tables: set[str]) -> Predicate:
        if isinstance(node, ast.ComparisonNode):
            tables.add(self._owner(node.column))
            return Comparison(node.column.column, node.op, node.value)
        if isinstance(node, ast.BetweenNode):
            tables.add(self._owner(node.column))
            return Between(node.column.column, node.low, node.high)
        if isinstance(node, ast.InListNode):
            tables.add(self._owner(node.column))
            return InList(node.column.column, node.values)
        if isinstance(node, ast.AndNode):
            return And(*[self._convert(child, tables) for child in node.children])
        if isinstance(node, ast.OrNode):
            return Or(*[self._convert(child, tables) for child in node.children])
        if isinstance(node, ast.NotNode):
            return Not(self._convert(node.child, tables))
        if isinstance(node, ast.JoinNode):
            raise ParseError(
                "join predicates may only appear as top-level conjuncts"
            )
        raise ParseError(f"unsupported WHERE construct {node!r}")


# ----------------------------------------------------------------------
# Parameter binding: Parameter placeholders -> literal values
# ----------------------------------------------------------------------
def _literal_slots(node: ast.WhereNode | None):
    """Yield every literal-position value in a WHERE subtree."""
    if node is None:
        return
    if isinstance(node, ast.ComparisonNode):
        yield node.value
    elif isinstance(node, ast.BetweenNode):
        yield node.low
        yield node.high
    elif isinstance(node, ast.InListNode):
        yield from node.values
    elif isinstance(node, (ast.AndNode, ast.OrNode)):
        for child in node.children:
            yield from _literal_slots(child)
    elif isinstance(node, ast.NotNode):
        yield from _literal_slots(node.child)


def statement_parameters(
    statement: ast.SelectStatement,
) -> list[ast.Parameter]:
    """The placeholders of ``statement``, in source order."""
    return [
        value
        for value in _literal_slots(statement.where)
        if isinstance(value, ast.Parameter)
    ]


def _substitute(node: ast.WhereNode | None, resolve):
    """Rebuild a WHERE subtree with every literal run through ``resolve``."""
    if node is None:
        return None
    if isinstance(node, ast.ComparisonNode):
        return ast.ComparisonNode(node.column, node.op, resolve(node.value))
    if isinstance(node, ast.BetweenNode):
        return ast.BetweenNode(
            node.column, resolve(node.low), resolve(node.high)
        )
    if isinstance(node, ast.InListNode):
        return ast.InListNode(
            node.column, tuple(resolve(value) for value in node.values)
        )
    if isinstance(node, ast.AndNode):
        return ast.AndNode(
            tuple(_substitute(child, resolve) for child in node.children)
        )
    if isinstance(node, ast.OrNode):
        return ast.OrNode(
            tuple(_substitute(child, resolve) for child in node.children)
        )
    if isinstance(node, ast.NotNode):
        return ast.NotNode(_substitute(node.child, resolve))
    return node  # JoinNode: no literal positions


def _check_bindable(value, where: str):
    """Accept only the dialect's literal types as parameter values."""
    if value is None:
        raise QueryError(
            f"cannot bind None for {where}: the star dialect has no NULL; "
            f"filter with an explicit predicate instead"
        )
    if not isinstance(value, (int, float, str)):
        raise QueryError(
            f"cannot bind {type(value).__name__} for {where}: parameter "
            f"values must be int, float, or str"
        )
    return value


def bind_parameters(
    statement: ast.SelectStatement, params=None
) -> ast.SelectStatement:
    """Substitute ``params`` into ``statement``'s placeholders.

    ``params`` is a sequence for qmark (``?``) statements or a mapping
    for named (``:name``) statements.  Returns a new statement with no
    :class:`~repro.sql.ast.Parameter` nodes left.

    Raises:
        QueryError: on a placeholder-count mismatch, a missing/extra
            named parameter, a non-bindable value (``None``, or any
            type outside int/float/str), or parameters supplied to a
            parameterless statement.
    """
    is_mapping = hasattr(params, "keys")
    if (
        params is not None
        and not is_mapping
        and not isinstance(params, (str, bytes))
    ):
        # materialize once so plain iterators/generators work and every
        # mismatch below reports QueryError, never a stray TypeError
        try:
            params = list(params)
        except TypeError as error:
            raise QueryError(
                f"parameters must be a sequence or mapping, got "
                f"{type(params).__name__}"
            ) from error
    placeholders = statement_parameters(statement)
    if not placeholders:
        if params:
            raise QueryError(
                f"statement has no parameter placeholders but "
                f"{len(params)} parameter(s) were supplied"
            )
        return statement
    if params is None:
        raise QueryError(
            f"statement has {len(placeholders)} parameter placeholder(s) "
            f"but no parameters were supplied"
        )
    named = placeholders[0].name is not None
    if named:
        if not is_mapping:
            raise QueryError(
                "named (:name) placeholders require a mapping of "
                "parameters, e.g. {'city': 'lyon'}"
            )
        wanted = {placeholder.name for placeholder in placeholders}
        missing = sorted(wanted - set(params.keys()))
        extra = sorted(set(params.keys()) - wanted)
        if missing or extra:
            raise QueryError(
                f"named parameters do not match the statement's "
                f"placeholders (missing: {missing or 'none'}, "
                f"unused: {extra or 'none'})"
            )

        def resolve_placeholder(placeholder: ast.Parameter):
            return _check_bindable(
                params[placeholder.name], f":{placeholder.name}"
            )
    else:
        if is_mapping or isinstance(params, (str, bytes)):
            raise QueryError(
                "qmark (?) placeholders require a sequence of "
                "parameters, e.g. ('lyon', 1995)"
            )
        values = list(params)
        if len(values) != len(placeholders):
            raise QueryError(
                f"statement has {len(placeholders)} '?' placeholder(s) "
                f"but {len(values)} parameter(s) were supplied"
            )

        def resolve_placeholder(placeholder: ast.Parameter):
            return _check_bindable(
                values[placeholder.index],
                f"parameter {placeholder.index + 1}",
            )

    def resolve(value):
        if isinstance(value, ast.Parameter):
            return resolve_placeholder(value)
        return value

    return dataclasses.replace(
        statement, where=_substitute(statement.where, resolve)
    )


def parse_select(sql: str) -> ast.SelectStatement:
    """Parse ``sql`` into an unbound select statement.

    The statement may still contain parameter placeholders; run it
    through :func:`bind_parameters` before binding against a schema.

    Raises:
        ParseError: on lexical or grammatical errors.
    """
    return _Parser(tokenize(sql)).parse_statement()


def bind_star_query(
    statement: ast.SelectStatement, star: StarSchema
) -> StarQuery:
    """Bind a (fully parameter-substituted) statement against ``star``.

    Raises:
        ParseError: on name-resolution or star-template errors, or if
            an unbound parameter placeholder is still present.
    """
    remaining = statement_parameters(statement)
    if remaining:
        raise ParseError(
            f"statement still has {len(remaining)} unbound parameter "
            f"placeholder(s); pass params= to bind them"
        )
    return _Binder(statement, star).bind()


def parse_star_query(
    sql: str, star: StarSchema, params=None
) -> StarQuery:
    """Parse ``sql``, bind ``params`` into its placeholders, then bind
    names against ``star``.

    Raises:
        ParseError: on lexical, grammatical, or binding errors.
        QueryError: on a parameter/placeholder mismatch.
    """
    statement = bind_parameters(parse_select(sql), params)
    return bind_star_query(statement, star)
