"""A SQL front-end for the star-query template of paper section 2.1.

Supports exactly the query shape CJOIN hosts::

    SELECT A..., AGG(expr) [AS alias], ...
    FROM fact, dim1, dim2, ...
    WHERE fact.fk = dim.pk AND ... AND <per-table predicates>
    [GROUP BY B...]
    [ORDER BY ...]          -- accepted; results are canonically sorted

Per-table predicates may use comparisons, BETWEEN, IN lists, and
arbitrary AND/OR/NOT nesting, as long as each sub-expression touches a
single table (the paper's single-tuple-variable requirement).

Literal positions also accept ``?`` (qmark) and ``:name`` (named)
parameter placeholders; see :func:`~repro.sql.parser.bind_parameters`
and DESIGN.md section 10.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import (
    bind_parameters,
    bind_star_query,
    parse_select,
    parse_star_query,
    statement_parameters,
)

__all__ = [
    "bind_parameters",
    "bind_star_query",
    "parse_select",
    "parse_star_query",
    "statement_parameters",
    "tokenize",
]
