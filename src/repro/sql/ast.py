"""Parse-tree nodes for the star-query SQL dialect.

The parser first builds this neutral tree, then a binding pass
(:mod:`repro.sql.parser`) resolves names against a star schema and
emits a :class:`~repro.query.star.StarQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnName:
    """A possibly-qualified column mention: ``table.column`` or ``column``."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table is None:
            return self.column
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class AggregateCall:
    """``KIND(expr)`` in the select list; ``column2``/``op`` for binary

    input expressions like ``SUM(lo_extendedprice * lo_discount)``.
    COUNT(*) has ``column is None``.
    """

    kind: str  # count / sum / min / max / avg (lowercase)
    column: ColumnName | None
    column2: ColumnName | None = None
    op: str = "*"
    alias: str | None = None


@dataclass(frozen=True)
class SelectColumn:
    """A plain column in the select list."""

    name: ColumnName
    alias: str | None = None


@dataclass(frozen=True)
class Parameter:
    """An unbound placeholder in a literal position.

    Exactly one of :attr:`index` (qmark style, ``?``, zero-based in
    source order) or :attr:`name` (named style, ``:name``) is set.
    Binding (:func:`repro.sql.parser.bind_parameters`) replaces every
    Parameter with the caller-supplied value before the statement
    reaches the binder, so predicates never see placeholders.
    """

    index: int | None = None
    name: str | None = None

    def __str__(self) -> str:
        if self.name is not None:
            return f":{self.name}"
        return "?"


# ----------------------------------------------------------------------
# WHERE-clause expressions
# ----------------------------------------------------------------------
class WhereNode:
    """Base class for WHERE-clause tree nodes."""


@dataclass(frozen=True)
class ComparisonNode(WhereNode):
    """``column <op> literal``."""

    column: ColumnName
    op: str
    value: object


@dataclass(frozen=True)
class BetweenNode(WhereNode):
    """``column BETWEEN low AND high``."""

    column: ColumnName
    low: object
    high: object


@dataclass(frozen=True)
class InListNode(WhereNode):
    """``column IN (v1, v2, ...)``."""

    column: ColumnName
    values: tuple


@dataclass(frozen=True)
class JoinNode(WhereNode):
    """``columnA = columnB`` between two tables."""

    left: ColumnName
    right: ColumnName


@dataclass(frozen=True)
class AndNode(WhereNode):
    """Conjunction."""

    children: tuple[WhereNode, ...]


@dataclass(frozen=True)
class OrNode(WhereNode):
    """Disjunction."""

    children: tuple[WhereNode, ...]


@dataclass(frozen=True)
class NotNode(WhereNode):
    """Negation."""

    child: WhereNode


@dataclass(frozen=True)
class SelectStatement:
    """A parsed (unbound) star-dialect SELECT."""

    select_items: tuple = ()
    tables: tuple[str, ...] = ()
    where: WhereNode | None = None
    group_by: tuple[ColumnName, ...] = ()
    order_by: tuple[ColumnName, ...] = field(default=())
