"""Tokenizer for the star-query SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    [
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AS",
        "AND", "OR", "NOT", "BETWEEN", "IN",
        "COUNT", "SUM", "MIN", "MAX", "AVG",
        "ASC", "DESC",
    ]
)

#: Multi-character operators, longest first so <= wins over <.
OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "*", "-", "+")

PUNCTUATION = ("(", ")", ",", ".")

#: explicit ASCII digits: str.isdigit() accepts Unicode digit-like
#: characters (e.g. superscripts) that int()/float() reject
_ASCII_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: 'keyword', 'ident', 'number', 'string', 'op', 'punct',
            'param', or 'eof'.
        value: normalized token text (keywords uppercased); numbers
            carry their parsed value in :attr:`literal`; 'param'
            tokens are ``'?'`` (positional) or ``':name'`` (named,
            with the bare name in :attr:`literal`).
        position: character offset in the source.
    """

    kind: str
    value: str
    position: int
    literal: object = None


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; the list always ends with an 'eof' token.

    Raises:
        ParseError: on unrecognizable input.
    """
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            tokens.append(_read_string(sql, index))
            index = tokens[-1].position + len(_escaped(tokens[-1].literal)) + 2
            continue
        if char in _ASCII_DIGITS or (
            char == "."
            and index + 1 < length
            and sql[index + 1] in _ASCII_DIGITS
        ):
            token = _read_number(sql, index)
            tokens.append(token)
            index += len(token.value)
            continue
        if char.isalpha() or char == "_":
            token = _read_word(sql, index)
            tokens.append(token)
            index += len(token.value)
            continue
        if char == "?":
            tokens.append(Token("param", "?", index))
            index += 1
            continue
        if char == ":":
            if index + 1 >= length or not (
                sql[index + 1].isalpha() or sql[index + 1] == "_"
            ):
                raise ParseError(
                    "':' must introduce a named parameter like :name", index
                )
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            name = sql[index + 1:end]
            tokens.append(Token("param", f":{name}", index, literal=name))
            index = end
            continue
        matched_op = next(
            (op for op in OPERATORS if sql.startswith(op, index)), None
        )
        if matched_op is not None:
            tokens.append(Token("op", matched_op, index))
            index += len(matched_op)
            continue
        if char in PUNCTUATION:
            tokens.append(Token("punct", char, index))
            index += 1
            continue
        raise ParseError(f"unexpected character {char!r}", index)
    tokens.append(Token("eof", "", length))
    return tokens


def _read_string(sql: str, start: int) -> Token:
    """Read a single-quoted string; '' is an escaped quote."""
    index = start + 1
    parts: list[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if sql.startswith("''", index):
                parts.append("'")
                index += 2
                continue
            return Token("string", "".join(parts), start, literal="".join(parts))
        parts.append(char)
        index += 1
    raise ParseError("unterminated string literal", start)


def _escaped(value: str) -> str:
    return value.replace("'", "''")


def _read_number(sql: str, start: int) -> Token:
    index = start
    seen_dot = False
    while index < len(sql) and (sql[index] in _ASCII_DIGITS or sql[index] == "."):
        if sql[index] == ".":
            if seen_dot:
                break
            # a trailing dot followed by a letter is qualification, not
            # a decimal point (e.g. "1.foo" never occurs; be strict)
            seen_dot = True
        index += 1
    text = sql[start:index]
    if text.endswith("."):
        text = text[:-1]
        index -= 1
    literal: object = float(text) if "." in text else int(text)
    return Token("number", text, start, literal=literal)


def _read_word(sql: str, start: int) -> Token:
    index = start
    while index < len(sql) and (sql[index].isalnum() or sql[index] == "_"):
        index += 1
    word = sql[start:index]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token("keyword", upper, start)
    return Token("ident", word, start)
