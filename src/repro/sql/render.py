"""Render a :class:`~repro.query.star.StarQuery` back to SQL text.

The inverse of :func:`repro.sql.parser.parse_star_query`, used for
logging/EXPLAIN-style output and for round-trip fuzzing in the test
suite (render -> parse -> evaluate must be an identity on results).
"""

from __future__ import annotations

from repro.catalog.schema import StarSchema
from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.query.star import StarQuery


def render_star_query(query: StarQuery, star: StarSchema) -> str:
    """Return SQL text that parses back into an equivalent query."""
    query.validate(star)
    select_items = [f"{ref.table}.{ref.column}" for ref in query.select]
    select_items.extend(
        _render_aggregate(spec) for spec in query.aggregates
    )
    if not select_items:
        raise QueryError("cannot render a query with an empty select list")
    tables = [query.fact_table, *query.referenced_dimensions()]
    conjuncts = []
    for name in query.referenced_dimensions():
        fk = star.fact.foreign_key_to(name)
        conjuncts.append(
            f"{query.fact_table}.{fk.column} = {name}.{fk.referenced_column}"
        )
        predicate = query.predicate_on(name)
        if not isinstance(predicate, TruePredicate):
            conjuncts.append(_render_predicate(predicate, name))
    if query.fact_predicate is not None:
        conjuncts.append(
            _render_predicate(query.fact_predicate, query.fact_table)
        )
    sql = f"SELECT {', '.join(select_items)} FROM {', '.join(tables)}"
    if conjuncts:
        sql += f" WHERE {' AND '.join(conjuncts)}"
    if query.group_by:
        grouped = ", ".join(
            f"{ref.table}.{ref.column}" for ref in query.group_by
        )
        sql += f" GROUP BY {grouped}"
    return sql


def _render_aggregate(spec: AggregateSpec) -> str:
    if spec.is_count_star:
        inner = "*"
    elif spec.column2 is not None:
        inner = f"{spec.table}.{spec.column} {spec.combine} {spec.table}.{spec.column2}"
    else:
        inner = f"{spec.table}.{spec.column}"
    text = f"{spec.kind.upper()}({inner})"
    if spec.alias is not None:
        text += f" AS {spec.alias}"
    return text


def _render_predicate(predicate: Predicate, table: str) -> str:
    """Render one single-table predicate, parenthesized when compound."""
    if isinstance(predicate, Comparison):
        return (
            f"{table}.{predicate.column} {predicate.op} "
            f"{_render_literal(predicate.value)}"
        )
    if isinstance(predicate, Between):
        return (
            f"{table}.{predicate.column} BETWEEN "
            f"{_render_literal(predicate.low)} AND "
            f"{_render_literal(predicate.high)}"
        )
    if isinstance(predicate, InList):
        values = ", ".join(
            _render_literal(value) for value in sorted(predicate.values, key=repr)
        )
        return f"{table}.{predicate.column} IN ({values})"
    if isinstance(predicate, And):
        inner = " AND ".join(
            _render_predicate(child, table) for child in predicate.children
        )
        return f"({inner})"
    if isinstance(predicate, Or):
        inner = " OR ".join(
            _render_predicate(child, table) for child in predicate.children
        )
        return f"({inner})"
    if isinstance(predicate, Not):
        return f"NOT {_render_predicate(predicate.child, table)}"
    if isinstance(predicate, TruePredicate):
        raise QueryError("TRUE predicates are rendered by omission")
    raise QueryError(f"cannot render predicate {predicate!r}")


def _render_literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        raise QueryError("boolean literals are not part of the dialect")
    if isinstance(value, (int, float)):
        return repr(value)
    raise QueryError(f"cannot render literal {value!r}")
