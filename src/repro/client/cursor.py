"""The client cursor: execute, describe, fetch, stream, cancel.

A PEP-249-shaped cursor over the warehouse's unified submission
pipeline (DESIGN.md section 10).  ``execute()`` parses and binds the
statement *before* anything touches the pipeline, submits through
``Warehouse.submit`` (mid-scan under a running service driver), and
exposes the results as the familiar ``fetchone`` / ``fetchmany`` /
``fetchall`` / iteration surface plus two warehouse-native extensions:
``rows_so_far()`` (the query's live partial snapshot while its scan
cycle is still running) and ``cancel()`` (mid-scan deregistration that
frees the in-flight slot).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.catalog.schema import DataType, StarSchema
from repro.client.exceptions import (
    InterfaceError,
    ProgrammingError,
    translated,
)
from repro.query.aggregates import AggregateSpec
from repro.query.star import StarQuery
from repro.sql import ast
from repro.sql.parser import bind_parameters, bind_star_query, parse_select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cjoin.registry import QueryHandle
    from repro.client.connection import Connection


class _DBAPITypeObject:
    """PEP 249 type object: equal to every member DataType."""

    def __init__(self, name: str, *members: DataType) -> None:
        self._name = name
        self._members = frozenset(members)

    def __eq__(self, other) -> bool:
        return other is self or other in self._members

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return f"<DBAPIType {self._name}>"


#: Compare ``description`` type codes against these (PEP 249 style).
STRING = _DBAPITypeObject("STRING", DataType.STRING)
NUMBER = _DBAPITypeObject(
    "NUMBER", DataType.INT, DataType.FLOAT, DataType.DATE
)


def _aggregate_name(spec: AggregateSpec) -> str:
    """Canonical display name for an unaliased aggregate column."""
    if spec.is_count_star:
        return "count(*)"
    if spec.column2 is not None:
        return f"{spec.kind}({spec.column} {spec.combine} {spec.column2})"
    return f"{spec.kind}({spec.column})"


def _aggregate_type(spec: AggregateSpec, star: StarSchema) -> DataType:
    """Result type of an aggregate column."""
    if spec.is_count_star or spec.kind == "count":
        return DataType.INT
    if spec.kind == "avg":
        return DataType.FLOAT
    return star.table(spec.table).column(spec.column).dtype


def describe(
    statement: ast.SelectStatement, query: StarQuery, star: StarSchema
) -> tuple:
    """Build the PEP 249 ``description`` for a bound statement.

    One 7-tuple ``(name, type_code, None, None, None, None, False)``
    per output column, in result-row order: the plain select columns
    first (matching the binder's select order), then the aggregates —
    exactly the layout of every result row.
    """
    entries = []
    aliases = [
        item.alias
        for item in statement.select_items
        if isinstance(item, ast.SelectColumn)
    ]
    for ref, alias in zip(query.select, aliases):
        dtype = star.table(ref.table).column(ref.column).dtype
        entries.append((alias or ref.column, dtype, None, None, None, None, False))
    for spec in query.aggregates:
        entries.append(
            (
                spec.alias or _aggregate_name(spec),
                _aggregate_type(spec, star),
                None,
                None,
                None,
                None,
                False,
            )
        )
    return tuple(entries)


class Cursor:
    """One statement execution context over a :class:`Connection`.

    Attributes:
        connection: the owning connection (PEP 249 extension).
        arraysize: default :meth:`fetchmany` size (PEP 249; default 1).
    """

    def __init__(self, connection: "Connection") -> None:
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._handles: list["QueryHandle"] = []
        self._description: tuple | None = None
        self._rows: list[tuple] | None = None
        self._index = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the cursor (idempotent); further use raises.

        Also deregisters from the connection, so a long-lived session
        that opens a cursor per statement does not accumulate them.
        """
        if self._closed:
            return
        self._closed = True
        self._handles = []
        self._rows = None
        self._description = None
        self.connection._forget(self)

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params=None) -> "Cursor":
        """Parse, bind, and submit one statement; returns self.

        Parsing and parameter binding complete before the pipeline is
        touched, so a malformed statement or mismatched parameters
        leave no query behind.  Under a running service driver the
        query is admitted mid-scan and completes in the background;
        fetches block until its scan cycle wraps.
        """
        self._check_open()
        with translated():
            statement = parse_select(sql)
            bound = bind_parameters(statement, params)
            star = self.connection.warehouse.star
            query = bind_star_query(bound, star)
            handle = self.connection.warehouse.submit(query)
        self._handles = [handle]
        self._description = describe(statement, query, star)
        self._rows = None
        self._index = 0
        return self

    def executemany(self, sql: str, seq_of_params) -> "Cursor":
        """Execute one statement once per parameter set.

        The statement is parsed once; each binding is submitted
        immediately, so the whole family fans out over the service's
        admission queue and shares the continuous scan.  Fetches return
        the concatenated results in submission order.
        """
        self._check_open()
        with translated():
            statement = parse_select(sql)
            star = self.connection.warehouse.star
            # bind every parameter set before submitting anything, so a
            # bad binding leaves no query behind (same contract as
            # execute()); a submission failure mid-fan-out cancels the
            # queries already in flight for the same reason
            queries = [
                bind_star_query(bind_parameters(statement, params), star)
                for params in seq_of_params
            ]
            description: tuple | None = (
                describe(statement, queries[0], star) if queries else None
            )
            handles: list["QueryHandle"] = []
            try:
                for query in queries:
                    handles.append(self.connection.warehouse.submit(query))
            except BaseException:
                for handle in handles:
                    # cancel() can transiently return False while the
                    # driver moves a handle from the FIFO into the
                    # pipeline; retry briefly so the slot is not leaked
                    deadline = time.monotonic() + 1.0
                    while not (handle.cancel() or handle.done):
                        if time.monotonic() >= deadline:
                            break
                        time.sleep(0.001)
                raise
        self._handles = handles
        self._description = description
        # zero bindings is a statement that was executed zero times:
        # fetches return an empty result set, not 'never executed'
        self._rows = None if handles else []
        self._index = 0
        return self

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def description(self) -> tuple | None:
        """Per-column 7-tuples for the last statement (PEP 249)."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows in the result set; -1 until the first fetch."""
        if self._rows is None:
            return -1
        return len(self._rows)

    def _ensure_rows(self) -> list[tuple]:
        if self._rows is None:
            self._check_executed()
            rows: list[tuple] = []
            with translated():
                for handle in self._handles:
                    self.connection._complete(handle)
                    rows.extend(
                        handle.results(timeout=self.connection.fetch_timeout)
                    )
            self._rows = rows
        return self._rows

    def fetchone(self) -> tuple | None:
        """The next result row, or None when exhausted (blocks first)."""
        self._check_open()
        rows = self._ensure_rows()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        """The next ``size`` rows (default :attr:`arraysize`)."""
        self._check_open()
        if size is None:
            size = self.arraysize
        if size < 0:
            raise InterfaceError(f"fetchmany size must be >= 0, got {size}")
        rows = self._ensure_rows()
        chunk = rows[self._index:self._index + size]
        self._index += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        """Every remaining result row."""
        self._check_open()
        rows = self._ensure_rows()
        chunk = rows[self._index:]
        self._index = len(rows)
        return chunk

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # ------------------------------------------------------------------
    # Warehouse-native extensions
    # ------------------------------------------------------------------
    def _check_executed(self) -> None:
        if not self._handles and self._rows is None:
            raise ProgrammingError(
                "no statement executed yet; call execute() first"
            )

    def rows_so_far(self) -> list[tuple]:
        """Live partial results while the scan cycle is running.

        Concatenates each in-flight query's latest Distributor-fed
        snapshot; equals the final result set after completion.  Never
        blocks.
        """
        self._check_open()
        self._check_executed()
        rows: list[tuple] = []
        for handle in self._handles:
            rows.extend(handle.rows_so_far())
        return rows

    def cancel(self) -> int:
        """Cancel the statement's in-flight queries.

        Mid-scan queries are deregistered through the manager's stall
        protocol (their slots free within one scan cycle); queued ones
        are dropped where they wait.  Returns how many queries were
        cancelled; completed queries keep their results.  Fetching from
        a cancelled statement raises
        :class:`~repro.client.exceptions.OperationalError`.
        """
        self._check_open()
        self._check_executed()
        with translated():
            return sum(1 for handle in self._handles if handle.cancel())
