"""PEP-249-flavoured exceptions for the client layer.

The client surface speaks the vocabulary database drivers have used
for decades — :class:`ProgrammingError` for a bad statement,
:class:`OperationalError` for a rejected or cancelled query — while
every class also derives from :class:`~repro.errors.ReproError`, so
existing ``except ReproError`` boundaries keep catching everything.

:func:`translated` is the single choke point that maps the library's
internal hierarchy onto this one; the original exception always rides
along as ``__cause__``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import (
    AdmissionError,
    CancelledError,
    ConfigError,
    IngestError,
    PipelineError,
    QueryError,
    ReproError,
    SchemaError,
)

__all__ = [
    "Error",
    "InterfaceError",
    "DatabaseError",
    "ProgrammingError",
    "OperationalError",
    "NotSupportedError",
    "translated",
]


class Error(ReproError):
    """Base class of every client-layer exception (PEP 249 ``Error``)."""


class InterfaceError(Error):
    """Misuse of the client API itself: a closed connection or cursor,
    fetching before a query was executed, ..."""


class DatabaseError(Error):
    """An error reported by the warehouse while handling a statement."""


class ProgrammingError(DatabaseError):
    """The statement or its parameters are wrong: SQL that does not
    parse, names that do not bind, placeholder/parameter mismatches,
    non-star query shapes."""


class OperationalError(DatabaseError):
    """The statement was fine but the operation did not complete:
    admission rejected (back-pressure), a timeout expired, the query
    was cancelled, or the pipeline is in the wrong state."""


class NotSupportedError(DatabaseError):
    """The requested feature is outside this warehouse's dialect."""


@contextmanager
def translated():
    """Re-raise internal repro errors as their client-layer class.

    Client exceptions pass through untouched.  ``CancelledError`` must
    map before its ``QueryError`` base: a cancellation is operational,
    not a programming mistake.
    """
    try:
        yield
    except Error:
        raise
    except CancelledError as error:
        raise OperationalError(str(error)) from error
    except (QueryError, SchemaError) as error:
        # QueryError covers ParseError; both are statement mistakes
        raise ProgrammingError(str(error)) from error
    except (AdmissionError, ConfigError, IngestError, PipelineError) as error:
        # IngestError covers IngestBackpressureError: a full ingest
        # buffer is operational back-pressure, retryable after a cycle
        raise OperationalError(str(error)) from error
    except ReproError as error:
        raise DatabaseError(str(error)) from error
