"""The client session layer (DESIGN.md section 10).

A PEP-249-flavoured surface over the always-on warehouse service:
``connect()`` opens a :class:`Connection` that owns the service
driver's lifecycle; ``Connection.cursor()`` hands out
:class:`Cursor` objects with parameterized ``execute()``, the
``fetchone``/``fetchmany``/``fetchall``/iteration family,
``description`` metadata, and the warehouse-native extensions
``rows_so_far()`` (incremental partials) and ``cancel()`` (mid-scan
deregistration).  ``connect("tcp://host:port")`` returns the same
surface backed by the docs/PROTOCOL.md socket transport
(:class:`RemoteConnection` / :class:`RemoteCursor`).

Module globals follow PEP 249: ``apilevel``, ``threadsafety`` (2 —
threads may share the module and connections), and ``paramstyle``
(``'qmark'`` is the default; ``:name`` named parameters are also
accepted).
"""

from repro.client.aio import (
    AsyncConnectionPool,
    AsyncCursor,
    AsyncRemoteConnection,
    connect_async,
)
from repro.client.connection import (
    DEFAULT_FETCH_TIMEOUT,
    Connection,
    connect,
)
from repro.client.cursor import NUMBER, STRING, Cursor
from repro.client.exceptions import (
    DatabaseError,
    Error,
    InterfaceError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
)
from repro.client.remote import RemoteConnection, RemoteCursor

#: PEP 249 module globals.
apilevel = "2.0"
threadsafety = 2
paramstyle = "qmark"

__all__ = [
    "AsyncConnectionPool",
    "AsyncCursor",
    "AsyncRemoteConnection",
    "Connection",
    "Cursor",
    "DEFAULT_FETCH_TIMEOUT",
    "DatabaseError",
    "Error",
    "InterfaceError",
    "NUMBER",
    "NotSupportedError",
    "OperationalError",
    "ProgrammingError",
    "RemoteConnection",
    "RemoteCursor",
    "STRING",
    "apilevel",
    "connect",
    "connect_async",
    "paramstyle",
    "threadsafety",
]
