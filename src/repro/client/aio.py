"""The asyncio client: ``await repro.connect_async("tcp://host:port")``.

Protocol v2's client half (docs/PROTOCOL.md section 8): an
:class:`AsyncRemoteConnection` keeps MANY requests in flight on one
socket — every outgoing frame carries a fresh request id, a single
reader task demultiplexes replies back to per-request futures, and a
write lock keeps frame boundaries intact.  A thousand concurrent
cursors therefore need neither a thousand sockets nor a thousand
threads: :func:`connect_async` opens a small
:class:`AsyncConnectionPool` and deals cursors across it round-robin,
which is how the open-loop benchmark drives 1k+ concurrent remote
sessions from one process (EXPERIMENTS.md section 9).

The cursor surface mirrors the PEP-249 shape of
:class:`~repro.client.cursor.Cursor` with ``await`` in front of the
blocking calls (``execute``, the fetch family, ``cancel``,
``rows_so_far``) and ``async for`` in place of iteration; description
tuples, paging semantics, and the error mapping are byte-identical to
the sync client because both ends share :mod:`repro.server.protocol`.
"""

from __future__ import annotations

import asyncio

from repro.client.exceptions import (
    DatabaseError,
    Error,
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.client.remote import _ERROR_CLASSES, _jsonable_params, parse_url
from repro.server import protocol
from repro.server.protocol import ProtocolError

#: Default seconds for the TCP connect and the HELLO reply.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Default sockets per pool; cursors multiplex, so a handful of
#: sockets carries hundreds of concurrent sessions.
DEFAULT_POOL_SIZE = 4


class AsyncRemoteConnection:
    """One multiplexed v2 session over a warehouse server.

    Construct via :meth:`open` (or, pooled, via
    :func:`connect_async`).  All methods must be called from the event
    loop that opened the connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        fetch_timeout: float,
        page_rows: int,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.fetch_timeout = fetch_timeout
        self.page_rows = page_rows
        #: server-enforced timeouts come back as ERROR frames; the
        #: client-side cap only catches a wedged server
        self._reply_timeout = fetch_timeout + 30.0
        self._next_request_id = 0
        self._futures: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._read_task: asyncio.Task | None = None
        self._closed = False
        self._broken: Exception | None = None
        self.server_info = ""
        self.protocol_version = 0

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        fetch_timeout: float = 60.0,
        page_rows: int = protocol.DEFAULT_PAGE_ROWS,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> "AsyncRemoteConnection":
        """Connect, shake hands, and start the reply demultiplexer.

        Raises:
            OperationalError: when the server is unreachable or
                negotiates a version below 2 — multiplexing is the
                point of this client; v1 servers take the sync client.
        """
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as error:
            raise OperationalError(
                f"could not connect to tcp://{host}:{port}: {error}"
            ) from error
        conn = cls(reader, writer, fetch_timeout, page_rows)
        try:
            # HELLO precedes negotiation, so it carries no request id
            # and its reply is read inline, before the read loop owns
            # the stream
            writer.write(
                protocol.encode_frame(
                    {
                        "type": protocol.HELLO,
                        "version": protocol.PROTOCOL_VERSION,
                    }
                )
            )
            await writer.drain()
            reply = await asyncio.wait_for(
                protocol.read_frame_async(reader), connect_timeout
            )
        except (OSError, ProtocolError, asyncio.TimeoutError) as error:
            await conn._abandon()
            raise OperationalError(
                f"handshake with tcp://{host}:{port} failed: {error}"
            ) from error
        try:
            if reply is None:
                raise OperationalError("server closed the connection")
            if reply.get("type") == protocol.ERROR:
                raise _mapped_error(reply)
            version = reply.get("version")
            if not isinstance(version, int) or version < 2:
                raise OperationalError(
                    f"server negotiated protocol version {version!r}; "
                    f"the async client requires version 2 (use "
                    f"repro.connect() for v1 servers)"
                )
        except Error:
            await conn._abandon()
            raise
        conn.protocol_version = version
        conn.server_info = reply.get("server", "")
        conn._read_task = asyncio.get_running_loop().create_task(
            conn._read_loop()
        )
        return conn

    # -- transport -----------------------------------------------------
    async def _read_loop(self) -> None:
        """Demultiplex replies to their request futures, forever."""
        try:
            while True:
                frame = await protocol.read_frame_async(self._reader)
                if frame is None:
                    raise OperationalError("server closed the connection")
                request_id = frame.get("request_id")
                future = self._futures.pop(request_id, None)
                if future is None:
                    raise OperationalError(
                        f"server reply carried unexpected request id "
                        f"{request_id!r}"
                    )
                if not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            self._fail_pending(OperationalError("connection closed"))
            raise
        except (OSError, ProtocolError, Error) as error:
            self._fail_pending(
                error
                if isinstance(error, Error)
                else OperationalError(
                    f"connection to the server failed: {error}"
                )
            )

    def _fail_pending(self, error: Exception) -> None:
        self._broken = error
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_exception(error)

    async def _request(self, payload: dict) -> dict:
        """Send one tagged request; await its demultiplexed reply.

        Any transport failure — here or in the read loop — surfaces
        as a typed :class:`OperationalError`, and the connection
        fails fast afterwards instead of writing into a dead socket.
        """
        if self._closed:
            raise InterfaceError("connection is closed")
        if self._broken is not None:
            raise OperationalError(
                f"connection to the server is broken: {self._broken}"
            )
        request_id = self._next_request_id
        self._next_request_id += 1
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        data = protocol.encode_frame(
            {**payload, "request_id": request_id}
        )
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._futures.pop(request_id, None)
            self._fail_pending(
                OperationalError(
                    f"connection to the server failed: {error}"
                )
            )
            raise OperationalError(
                f"connection to the server failed: {error}"
            ) from error
        try:
            reply = await asyncio.wait_for(future, self._reply_timeout)
        except (asyncio.TimeoutError, TimeoutError) as error:
            self._futures.pop(request_id, None)
            raise OperationalError(
                "timed out waiting for the server's reply"
            ) from error
        if reply.get("type") == protocol.ERROR:
            raise _mapped_error(reply)
        return reply

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    async def close(self) -> None:
        """Close the session (idempotent).

        Best-effort CLOSE — the server cancels anything still in
        flight for this session — then stop the read loop and close
        the socket.
        """
        if self._closed:
            return
        try:
            if self._broken is None:
                await asyncio.wait_for(
                    self._request({"type": protocol.CLOSE}), 5.0
                )
        except (Error, asyncio.TimeoutError, TimeoutError):
            pass  # the socket teardown is what matters
        self._closed = True
        await self._abandon()

    async def _abandon(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            await asyncio.gather(self._read_task, return_exceptions=True)
            self._read_task = None
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- statements ----------------------------------------------------
    def cursor(self) -> "AsyncCursor":
        """A new cursor multiplexed over this connection."""
        self._check_open()
        return AsyncCursor(self)

    async def execute(self, sql: str, params=None) -> "AsyncCursor":
        """Convenience: new cursor, execute, return it."""
        return await self.cursor().execute(sql, params)

    async def executemany(self, sql: str, seq_of_params) -> "AsyncCursor":
        """Convenience: new cursor, executemany, return it."""
        return await self.cursor().executemany(sql, seq_of_params)

    # -- telemetry (docs/PROTOCOL.md section 9) ------------------------
    async def stats(self) -> dict:
        """The server warehouse's telemetry + decision-audit snapshot.

        Same schema as local ``Connection.stats()``; the async client
        always negotiates protocol v2, so no version gate is needed.
        """
        self._check_open()
        reply = await self._request({"type": protocol.STATS})
        return reply.get("stats", {})

    # -- streaming ingest (docs/PROTOCOL.md section 10) ----------------
    async def ingest(
        self,
        fact_rows=None,
        dim_upserts=None,
        timeout: float | None = None,
    ) -> dict:
        """Ship a write set; the INGEST_OK ack means it is applied.

        Same receipt schema (``rows``, ``snapshot_id``,
        ``generation``) as the sync clients; the async client always
        negotiates protocol v2, so no version gate is needed.  The
        ack multiplexes like any other reply, so queries on this
        connection keep flowing while the batch waits for its scan
        boundary.
        """
        self._check_open()
        payload: dict = {"type": protocol.INGEST}
        if fact_rows is not None:
            payload["fact_rows"] = [list(row) for row in fact_rows]
        if dim_upserts is not None:
            payload["dim_upserts"] = {
                name: [list(row) for row in rows]
                for name, rows in dim_upserts.items()
            }
        if timeout is not None:
            payload["timeout"] = timeout
        reply = await self._request(payload)
        return {
            "rows": reply.get("rows"),
            "snapshot_id": reply.get("snapshot_id"),
            "generation": reply.get("generation"),
        }


def _mapped_error(reply: dict) -> Error:
    detail = reply.get("error") or {}
    exc_class = _ERROR_CLASSES.get(detail.get("class"), DatabaseError)
    return exc_class(detail.get("message", "server reported an error"))


class AsyncCursor:
    """PEP-249-shaped cursor with ``await`` on the blocking calls.

    One statement's queries live server-side until :meth:`close` (or
    the pool) releases them; many cursors of one connection run their
    FETCHes concurrently thanks to request-id multiplexing.
    """

    def __init__(self, connection: AsyncRemoteConnection) -> None:
        self.connection = connection
        #: default fetchmany size (PEP 249)
        self.arraysize = 1
        self._query_ids: list[int] = []
        self._description = None
        self._rows: list[tuple] | None = None
        self._index = 0
        self._closed = False

    # -- execution -----------------------------------------------------
    async def execute(self, sql: str, params=None) -> "AsyncCursor":
        """Ship one statement; the server parses, binds, and submits."""
        self._check_open()
        reply = await self.connection._request(
            {
                "type": protocol.EXECUTE,
                "sql": sql,
                "params": _jsonable_params(params),
            }
        )
        await self._install(reply)
        return self

    async def executemany(self, sql: str, seq_of_params) -> "AsyncCursor":
        """One statement, many parameter sets, one frame (atomic)."""
        self._check_open()
        reply = await self.connection._request(
            {
                "type": protocol.EXECUTE,
                "sql": sql,
                "param_sets": [
                    _jsonable_params(params) for params in seq_of_params
                ],
            }
        )
        await self._install(reply)
        return self

    async def _install(self, reply: dict) -> None:
        await self._release_queries()
        query_ids = reply.get("query_ids")
        if not isinstance(query_ids, list):
            raise OperationalError(
                "malformed execute_ok frame: missing query_ids"
            )
        self._query_ids = query_ids
        self._description = protocol.decode_description(
            reply.get("description")
        )
        # zero bindings executed the statement zero times: an empty
        # result set, not 'never executed' (same as the sync cursor)
        self._rows = None if query_ids else []
        self._index = 0

    async def _release_queries(self) -> None:
        """Free the server-side statement state (best effort)."""
        ids, self._query_ids = self._query_ids, []
        for query_id in ids:
            try:
                await self.connection._request(
                    {"type": protocol.CLOSE, "query_id": query_id}
                )
            except Error:
                break  # transport gone; server teardown reclaims state

    async def close(self) -> None:
        """Close the cursor (idempotent); releases server-side state."""
        if not self._closed and not self.connection.closed:
            await self._release_queries()
        self._closed = True

    # -- results -------------------------------------------------------
    @property
    def description(self):
        """PEP 249 description 7-tuples (None before execute)."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows in the materialized result; -1 before materialization."""
        return -1 if self._rows is None else len(self._rows)

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _check_executed(self) -> None:
        if not self._query_ids and self._rows is None:
            raise ProgrammingError(
                "no statement executed yet; call execute() first"
            )

    async def _ensure_rows(self) -> list[tuple]:
        if self._rows is None:
            self._check_executed()
            rows: list[tuple] = []
            for query_id in self._query_ids:
                more = True
                while more:
                    reply = await self.connection._request(
                        {
                            "type": protocol.FETCH,
                            "query_id": query_id,
                            "max_rows": self.connection.page_rows,
                            "timeout": self.connection.fetch_timeout,
                        }
                    )
                    rows.extend(protocol.decode_rows(reply.get("rows")))
                    more = bool(reply.get("more"))
            self._rows = rows
        return self._rows

    async def fetchone(self) -> tuple | None:
        """The next row, or None when exhausted."""
        self._check_open()
        rows = await self._ensure_rows()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    async def fetchmany(self, size: int | None = None) -> list[tuple]:
        """The next ``size`` rows (default ``arraysize``)."""
        self._check_open()
        count = self.arraysize if size is None else size
        rows = await self._ensure_rows()
        page = rows[self._index:self._index + count]
        self._index += len(page)
        return page

    async def fetchall(self) -> list[tuple]:
        """Every remaining row."""
        self._check_open()
        rows = await self._ensure_rows()
        page = rows[self._index:]
        self._index = len(rows)
        return page

    def __aiter__(self) -> "AsyncCursor":
        return self

    async def __anext__(self) -> tuple:
        row = await self.fetchone()
        if row is None:
            raise StopAsyncIteration
        return row

    # -- warehouse-native extensions -----------------------------------
    async def rows_so_far(self) -> list[tuple]:
        """Live partial results via a non-blocking partial-mode FETCH."""
        self._check_open()
        self._check_executed()
        rows: list[tuple] = []
        for query_id in self._query_ids:
            reply = await self.connection._request(
                {
                    "type": protocol.FETCH,
                    "query_id": query_id,
                    "mode": "partial",
                }
            )
            rows.extend(protocol.decode_rows(reply.get("rows")))
        return rows

    async def cancel(self) -> int:
        """Cancel the statement's queries server-side; returns count."""
        self._check_open()
        self._check_executed()
        cancelled = 0
        for query_id in self._query_ids:
            reply = await self.connection._request(
                {"type": protocol.CANCEL, "query_id": query_id}
            )
            cancelled += bool(reply.get("cancelled"))
        return cancelled


class AsyncConnectionPool:
    """A handful of multiplexed sockets serving many cursors.

    Cursors are dealt round-robin, so concurrent sessions spread
    evenly; each socket carries many in-flight requests (protocol v2),
    so pool size trades head-of-line latency against fd count, not
    concurrency.
    """

    def __init__(self, connections: list[AsyncRemoteConnection]) -> None:
        if not connections:
            raise InterfaceError("connection pool cannot be empty")
        self._connections = connections
        self._next = 0
        self._closed = False

    @property
    def size(self) -> int:
        """Sockets in the pool."""
        return len(self._connections)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    @property
    def server_info(self) -> str:
        return self._connections[0].server_info

    @property
    def protocol_version(self) -> int:
        return self._connections[0].protocol_version

    def cursor(self) -> AsyncCursor:
        """A new cursor on the next pool connection (round-robin)."""
        if self._closed:
            raise InterfaceError("connection pool is closed")
        connection = self._connections[self._next % len(self._connections)]
        self._next += 1
        return connection.cursor()

    async def execute(self, sql: str, params=None) -> AsyncCursor:
        """Convenience: new pooled cursor, execute, return it."""
        return await self.cursor().execute(sql, params)

    async def executemany(self, sql: str, seq_of_params) -> AsyncCursor:
        """Convenience: new pooled cursor, executemany, return it."""
        return await self.cursor().executemany(sql, seq_of_params)

    async def stats(self) -> dict:
        """Telemetry snapshot via the pool's first connection.

        Every pooled socket reaches the same warehouse, so one
        connection's answer is the pool's answer.
        """
        if self._closed:
            raise InterfaceError("connection pool is closed")
        return await self._connections[0].stats()

    async def ingest(
        self,
        fact_rows=None,
        dim_upserts=None,
        timeout: float | None = None,
    ) -> dict:
        """Ship a write set via the next pool connection (round-robin).

        Writes from many producers spread across the pool's sockets
        exactly like cursors; each batch's per-connection admission
        bound applies to the socket that carried it.
        """
        if self._closed:
            raise InterfaceError("connection pool is closed")
        connection = self._connections[self._next % len(self._connections)]
        self._next += 1
        return await connection.ingest(
            fact_rows=fact_rows, dim_upserts=dim_upserts, timeout=timeout
        )

    async def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        await asyncio.gather(
            *(connection.close() for connection in self._connections),
            return_exceptions=True,
        )

    async def __aenter__(self) -> "AsyncConnectionPool":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()


async def connect_async(
    url: str,
    pool_size: int = DEFAULT_POOL_SIZE,
    fetch_timeout: float = 60.0,
    page_rows: int = protocol.DEFAULT_PAGE_ROWS,
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
) -> AsyncConnectionPool:
    """Open a pooled async client: ``await repro.connect_async(url)``.

    Args:
        url: ``tcp://host:port`` of a protocol-v2 warehouse server
            (threaded or async).
        pool_size: sockets to open; cursors multiplex across them.
        fetch_timeout: seconds a fetch may block server-side.
        page_rows: rows per FETCH page.
        connect_timeout: seconds per TCP connect + HELLO handshake.

    Raises:
        InterfaceError: on a malformed URL or ``pool_size < 1``.
        OperationalError: when the server is unreachable or speaks
            only protocol v1.
    """
    if pool_size < 1:
        raise InterfaceError(f"pool_size must be >= 1, got {pool_size}")
    host, port = parse_url(url)
    connections: list[AsyncRemoteConnection] = []
    try:
        for _ in range(pool_size):
            connections.append(
                await AsyncRemoteConnection.open(
                    host,
                    port,
                    fetch_timeout=fetch_timeout,
                    page_rows=page_rows,
                    connect_timeout=connect_timeout,
                )
            )
    except BaseException:
        for connection in connections:
            await connection.close()
        raise
    return AsyncConnectionPool(connections)
