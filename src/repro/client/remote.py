"""The socket-backed client: ``repro.connect("tcp://host:port")``.

Same surface, different transport (DESIGN.md section 11):
:class:`RemoteConnection` / :class:`RemoteCursor` expose exactly the
PEP-249 API of :class:`~repro.client.connection.Connection` and
:class:`~repro.client.cursor.Cursor`, but every statement travels the
docs/PROTOCOL.md wire protocol to a
:class:`~repro.server.tcp.WarehouseServer` instead of touching a
warehouse in-process.  Parsing, binding, admission, and execution all
happen server-side; the client ships SQL text plus parameter values
and receives description 7-tuples, streamed row pages, and mapped
PEP-249 exceptions back.

The fetch family materializes a statement's rows by draining FETCH
pages (bounded frames, docs/PROTOCOL.md section 6) — semantics
identical to the in-process cursor, which also materializes on first
fetch.  ``rows_so_far()`` round-trips a partial-mode FETCH to the
server handle's Distributor-fed snapshot, and ``cancel()`` round-trips
to ``QueryHandle.cancel()`` so an abandoned remote query frees its
in-flight slot within one scan cycle.

A connection serializes its requests on one lock, so threads may
share it (PEP 249 threadsafety 2) — concurrent statements interleave
at frame granularity while their queries run concurrently server-side.
"""

from __future__ import annotations

import socket
import threading

from repro.client.cursor import Cursor
from repro.client.exceptions import (
    DatabaseError,
    Error,
    InterfaceError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
)
from repro.server import protocol
from repro.server.protocol import ProtocolError

#: ERROR-frame class names → client exceptions (the client half of the
#: docs/PROTOCOL.md section 5 mapping table; unknown names degrade to
#: DatabaseError so the table can grow server-side first).
_ERROR_CLASSES = {
    "Error": Error,
    "InterfaceError": InterfaceError,
    "DatabaseError": DatabaseError,
    "ProgrammingError": ProgrammingError,
    "OperationalError": OperationalError,
    "NotSupportedError": NotSupportedError,
}

#: Default seconds to wait for the TCP connect and the HELLO reply.
DEFAULT_CONNECT_TIMEOUT = 10.0


def parse_url(url: str) -> tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``.

    Raises:
        InterfaceError: on any other shape.
    """
    if not url.startswith("tcp://"):
        raise InterfaceError(
            f"unsupported connection URL {url!r}: expected tcp://host:port"
        )
    rest = url[len("tcp://"):]
    host, separator, port_text = rest.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise InterfaceError(
            f"malformed connection URL {url!r}: expected tcp://host:port"
        )
    return host, int(port_text)


class RemoteConnection:
    """One client session over a TCP warehouse server (PEP 249 shaped).

    Args:
        host: server host.
        port: server port.
        fetch_timeout: seconds a fetch may block server-side waiting
            for a query's scan cycle to wrap.
        page_rows: rows per FETCH page (frame-size bound, not a
            semantic knob).
        connect_timeout: seconds for the TCP connect + HELLO handshake.
    """

    def __init__(
        self,
        host: str,
        port: int,
        fetch_timeout: float = 60.0,
        page_rows: int = protocol.DEFAULT_PAGE_ROWS,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.fetch_timeout = fetch_timeout
        self.page_rows = page_rows
        self._closed = False
        self._lock = threading.Lock()
        self._cursors: "set[RemoteCursor]" = set()
        #: negotiated wire version; 1 (request-id-free frames) until
        #: HELLO_OK upgrades it (docs/PROTOCOL.md section 2)
        self.protocol_version = 1
        self._next_request_id = 0
        #: set on any transport failure: the stream can no longer be
        #: trusted, so later requests fail fast with a typed error
        #: instead of hanging on a dead socket
        self._broken = False
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise OperationalError(
                f"could not connect to tcp://{host}:{port}: {error}"
            ) from error
        self._reader = self._sock.makefile("rb")
        try:
            reply = self._request(
                {"type": protocol.HELLO, "version": protocol.PROTOCOL_VERSION}
            )
            version = reply.get("version")
            if version not in protocol.SUPPORTED_VERSIONS:
                raise OperationalError(
                    f"server negotiated unsupported protocol version "
                    f"{version!r}"
                )
            self.protocol_version = version
            self.server_info = reply.get("server", "")
            # the handshake timeout guarded connect; fetches block for
            # their own (server-enforced) timeout plus a grace margin
            self._sock.settimeout(fetch_timeout + 30.0)
        except BaseException:
            self._abandon_socket()
            raise

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, payload: dict) -> dict:
        """One round trip: send a frame, read the reply, map errors.

        On a v2 session every request carries a fresh request id and
        the reply must echo it (docs/PROTOCOL.md section 8); this
        client keeps one request in flight per connection, so a
        mismatched echo means the stream is corrupt.  Any transport
        failure — timeout, reset, framing violation, mismatched echo,
        or the server vanishing mid-stream — marks the connection
        broken and surfaces as :class:`OperationalError`; subsequent
        requests then fail fast instead of writing into a dead socket.
        """
        with self._lock:
            if self._broken:
                raise OperationalError(
                    "connection to the server is broken (a previous "
                    "request failed mid-stream)"
                )
            request_id = None
            if self.protocol_version >= 2:
                request_id = self._next_request_id
                self._next_request_id += 1
                payload = {**payload, "request_id": request_id}
            try:
                self._sock.sendall(protocol.encode_frame(payload))
                reply = protocol.read_frame(self._reader)
            except socket.timeout as error:
                self._broken = True
                raise OperationalError(
                    "timed out waiting for the server's reply"
                ) from error
            except (OSError, ProtocolError) as error:
                self._broken = True
                raise OperationalError(
                    f"connection to the server failed: {error}"
                ) from error
            if reply is None:
                self._broken = True
                raise OperationalError("server closed the connection")
            if (
                request_id is not None
                and reply.get("request_id") != request_id
            ):
                self._broken = True
                raise OperationalError(
                    f"server reply carried request id "
                    f"{reply.get('request_id')!r}, expected {request_id}"
                )
        if reply.get("type") == protocol.ERROR:
            detail = reply.get("error") or {}
            exc_class = _ERROR_CLASSES.get(
                detail.get("class"), DatabaseError
            )
            raise exc_class(detail.get("message", "server reported an error"))
        return reply

    def _abandon_socket(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def close(self) -> None:
        """Close the session (idempotent).

        Closes every cursor (releasing its server-side statements),
        sends the connection-level CLOSE — the server cancels anything
        still in flight for this session — and closes the socket.
        """
        if self._closed:
            return
        for cursor in list(self._cursors):
            cursor.close()
        self._closed = True
        try:
            self._request({"type": protocol.CLOSE})
        except Error:
            pass  # already closing; the socket teardown is what matters
        self._abandon_socket()

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _forget(self, cursor: "RemoteCursor") -> None:
        self._cursors.discard(cursor)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def cursor(self) -> "RemoteCursor":
        """A new cursor over this connection."""
        self._check_open()
        cursor = RemoteCursor(self)
        self._cursors.add(cursor)
        return cursor

    def execute(self, sql: str, params=None) -> "RemoteCursor":
        """Convenience: new cursor, execute, return it (sqlite3 style)."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params) -> "RemoteCursor":
        """Convenience: new cursor, executemany, return it."""
        return self.cursor().executemany(sql, seq_of_params)

    # ------------------------------------------------------------------
    # Telemetry (docs/PROTOCOL.md section 9)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The server warehouse's telemetry + decision-audit snapshot.

        Same schema as local ``Connection.stats()``.  Requires a v2
        session; against a v1-only server this raises client-side
        instead of burning a round trip on a guaranteed ERROR.

        Raises:
            NotSupportedError: on a protocol-v1 session.
        """
        self._check_open()
        if self.protocol_version < 2:
            raise NotSupportedError(
                "stats() requires protocol version 2; this session "
                f"negotiated version {self.protocol_version}"
            )
        reply = self._request({"type": protocol.STATS})
        return reply.get("stats", {})

    def ingest_generation(self) -> int:
        """The warehouse's applied-ingest generation (stats shortcut).

        Monotonic across restarts of a durable server (DESIGN.md
        section 16): a client reconnecting after a restart compares
        this against the ``generation`` of its last ingest receipt to
        confirm its acked writes survived.

        Raises:
            NotSupportedError: on a protocol-v1 session.
        """
        return int(self.stats()["ingest"]["generation"])

    # ------------------------------------------------------------------
    # Streaming ingest (docs/PROTOCOL.md section 10)
    # ------------------------------------------------------------------
    def ingest(
        self,
        fact_rows=None,
        dim_upserts=None,
        timeout: float | None = None,
    ) -> dict:
        """Ship a write set; block until the server acks its apply.

        ``fact_rows`` is a list of fact-table rows; ``dim_upserts``
        maps dimension names to lists of full rows (upserted by
        primary key).  The INGEST_OK ack means the batch is applied
        and visible to queries admitted from now on — same receipt
        schema (``rows``, ``snapshot_id``, ``generation``) as local
        ``Connection.ingest()``.  Requires a v2 session; against a
        v1-only server this raises client-side instead of burning a
        round trip on a guaranteed ERROR.

        Raises:
            NotSupportedError: on a protocol-v1 session.
            OperationalError: on back-pressure (the per-connection or
                buffer bound is full) or a missed ``timeout``.
        """
        self._check_open()
        if self.protocol_version < 2:
            raise NotSupportedError(
                "ingest() requires protocol version 2; this session "
                f"negotiated version {self.protocol_version}"
            )
        payload: dict = {"type": protocol.INGEST}
        if fact_rows is not None:
            payload["fact_rows"] = [list(row) for row in fact_rows]
        if dim_upserts is not None:
            payload["dim_upserts"] = {
                name: [list(row) for row in rows]
                for name, rows in dim_upserts.items()
            }
        if timeout is not None:
            payload["timeout"] = timeout
        reply = self._request(payload)
        return {
            "rows": reply.get("rows"),
            "snapshot_id": reply.get("snapshot_id"),
            "generation": reply.get("generation"),
        }

    # ------------------------------------------------------------------
    # Transactions (PEP 249 surface)
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """No-op: warehouse reads are snapshot-isolated, auto-committed."""
        self._check_open()

    def rollback(self) -> None:
        """Unsupported: there is no open transaction to roll back.

        Raises:
            NotSupportedError: always.
        """
        self._check_open()
        raise NotSupportedError(
            "the warehouse auto-commits; there is no transaction to "
            "roll back"
        )


def _check_bindable(value) -> None:
    """Reject values the binder could never accept, client-side.

    Mirrors the server-side binder's rule (int/float/str only; None is
    shipped so the server reports its canonical no-NULL error), so a
    date or Decimal raises the same ``ProgrammingError`` on both
    transports instead of an unserializable-frame ``TypeError``.
    """
    if value is not None and not isinstance(value, (int, float, str)):
        raise ProgrammingError(
            f"cannot bind {type(value).__name__}: parameter values "
            f"must be int, float, or str"
        )


def _jsonable_params(params):
    """Coerce one parameter set to its wire shape (list or dict)."""
    if params is None:
        return None
    if isinstance(params, (str, bytes)):
        return params  # let the server's binder report the type error
    if hasattr(params, "keys"):
        mapping = dict(params)
        for value in mapping.values():
            _check_bindable(value)
        return mapping
    try:
        values = list(params)
    except TypeError:
        return params
    for value in values:
        _check_bindable(value)
    return values


class RemoteCursor(Cursor):
    """A :class:`~repro.client.cursor.Cursor` over the wire protocol.

    Inherits the whole fetch/iteration/description surface; only the
    execution, materialization, streaming, and cancellation paths are
    rerouted through EXECUTE / FETCH / CANCEL / CLOSE frames.  Each
    statement maps to server-side query ids that live until the cursor
    (or its connection) is closed.
    """

    def __init__(self, connection: RemoteConnection) -> None:
        super().__init__(connection)
        self._query_ids: list[int] = []

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _release_queries(self) -> None:
        """Free the server-side statement state (best effort)."""
        ids, self._query_ids = self._query_ids, []
        for query_id in ids:
            try:
                self.connection._request(
                    {"type": protocol.CLOSE, "query_id": query_id}
                )
            except Error:
                break  # transport gone; server teardown reclaims state

    def close(self) -> None:
        """Close the cursor (idempotent); releases server-side state."""
        if not self._closed and not self.connection.closed:
            self._release_queries()
        super().close()

    def execute(self, sql: str, params=None) -> "RemoteCursor":
        """Ship one statement; the server parses, binds, and submits.

        A malformed statement or binding raises (mapped from the ERROR
        frame) with no query left behind server-side.
        """
        self._check_open()
        reply = self.connection._request(
            {
                "type": protocol.EXECUTE,
                "sql": sql,
                "params": _jsonable_params(params),
            }
        )
        self._install(reply)
        return self

    def executemany(self, sql: str, seq_of_params) -> "RemoteCursor":
        """Ship one statement with many parameter sets (one frame).

        The server binds every set before submitting anything, so a
        bad binding is atomic — no orphan queries — exactly like the
        in-process ``executemany``.
        """
        self._check_open()
        reply = self.connection._request(
            {
                "type": protocol.EXECUTE,
                "sql": sql,
                "param_sets": [
                    _jsonable_params(params) for params in seq_of_params
                ],
            }
        )
        self._install(reply)
        return self

    def _install(self, reply: dict) -> None:
        self._release_queries()
        query_ids = reply.get("query_ids")
        if not isinstance(query_ids, list):
            raise OperationalError(
                "malformed execute_ok frame: missing query_ids"
            )
        self._query_ids = query_ids
        self._description = protocol.decode_description(
            reply.get("description")
        )
        # zero bindings executed the statement zero times: an empty
        # result set, not 'never executed' (same as the local cursor)
        self._rows = None if query_ids else []
        self._index = 0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _check_executed(self) -> None:
        if not self._query_ids and self._rows is None:
            raise ProgrammingError(
                "no statement executed yet; call execute() first"
            )

    def _ensure_rows(self) -> list[tuple]:
        if self._rows is None:
            self._check_executed()
            rows: list[tuple] = []
            for query_id in self._query_ids:
                more = True
                while more:
                    reply = self.connection._request(
                        {
                            "type": protocol.FETCH,
                            "query_id": query_id,
                            "max_rows": self.connection.page_rows,
                            "timeout": self.connection.fetch_timeout,
                        }
                    )
                    rows.extend(protocol.decode_rows(reply.get("rows")))
                    more = bool(reply.get("more"))
            self._rows = rows
        return self._rows

    # ------------------------------------------------------------------
    # Warehouse-native extensions
    # ------------------------------------------------------------------
    def rows_so_far(self) -> list[tuple]:
        """Live partial results, via a non-blocking partial-mode FETCH."""
        self._check_open()
        self._check_executed()
        rows: list[tuple] = []
        for query_id in self._query_ids:
            reply = self.connection._request(
                {
                    "type": protocol.FETCH,
                    "query_id": query_id,
                    "mode": "partial",
                }
            )
            rows.extend(protocol.decode_rows(reply.get("rows")))
        return rows

    def cancel(self) -> int:
        """Cancel the statement's queries server-side.

        Round-trips to ``QueryHandle.cancel()`` on the server: queued
        statements (per-connection or service FIFO) are dropped in
        place, registered ones are deregistered mid-scan.  Returns how
        many queries were cancelled.
        """
        self._check_open()
        self._check_executed()
        cancelled = 0
        for query_id in self._query_ids:
            reply = self.connection._request(
                {"type": protocol.CANCEL, "query_id": query_id}
            )
            cancelled += bool(reply.get("cancelled"))
        return cancelled
