"""Client connections: ``repro.connect(...)`` (DESIGN.md section 10).

A :class:`Connection` wraps one :class:`~repro.engine.warehouse.Warehouse`
and owns its serving lifecycle: on open it starts the always-on
service driver (so cursor queries are admitted mid-scan and complete
in the background), and on close it stops the driver, closes its
cursors, and — when the connection built the warehouse itself —
closes the warehouse too.

Usage::

    import repro

    with repro.connect(scale_factor=0.001) as connection:
        cursor = connection.execute(
            "SELECT d_year, SUM(lo_revenue) AS revenue "
            "FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey AND d_year >= ? "
            "GROUP BY d_year",
            (1994,),
        )
        for year, revenue in cursor:
            print(year, revenue)
"""

from __future__ import annotations

import weakref

from repro.client.cursor import Cursor
from repro.client.exceptions import (
    InterfaceError,
    NotSupportedError,
    translated,
)
from repro.engine.submission import ROUTE_BASELINE, ROUTE_PROCESS
from repro.engine.warehouse import Warehouse

#: Default bound on how long a fetch blocks waiting for completion.
DEFAULT_FETCH_TIMEOUT = 60.0


class Connection:
    """One client session over a warehouse (PEP 249 shaped).

    Args:
        warehouse: the warehouse to serve from.
        owns_warehouse: close the warehouse when the connection closes
            (True when :func:`connect` built it from kwargs).
        start_service: start the always-on background driver so
            submissions are admitted mid-scan; pass False for
            single-threaded embedding — fetches then drain the
            pipeline on the calling thread instead.
        fetch_timeout: seconds a fetch may block waiting for a query's
            scan cycle to wrap before raising ``OperationalError``.
    """

    def __init__(
        self,
        warehouse: Warehouse,
        owns_warehouse: bool = False,
        start_service: bool = True,
        fetch_timeout: float = DEFAULT_FETCH_TIMEOUT,
    ) -> None:
        self.warehouse = warehouse
        self.fetch_timeout = fetch_timeout
        self._owns_warehouse = owns_warehouse
        self._closed = False
        #: open cursors, held weakly: a per-statement cursor the caller
        #: dropped is reclaimed by the GC instead of accumulating for
        #: the session's lifetime
        self._cursors: weakref.WeakSet[Cursor] = weakref.WeakSet()
        self._started_service = False
        # the process backend admits at drain boundaries only, so a
        # background driver would just idle; everything else serves live
        if (
            start_service
            and warehouse.executor_config.backend == "serial"
            and not warehouse.service.running
        ):
            with translated():
                warehouse.start_service()
            self._started_service = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def close(self) -> None:
        """Close the connection (idempotent).

        Closes every cursor, stops the service driver this connection
        started, and closes the warehouse when this connection owns it.
        """
        if self._closed:
            return
        self._closed = True
        for cursor in list(self._cursors):  # close() deregisters
            cursor.close()
        with translated():
            if self._owns_warehouse:
                self.warehouse.close()
            elif self._started_service:
                self.warehouse.stop_service()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _forget(self, cursor: Cursor) -> None:
        """Drop a closed cursor from the open-cursor registry."""
        self._cursors.discard(cursor)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def cursor(self) -> Cursor:
        """A new cursor over this connection."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def execute(self, sql: str, params=None) -> Cursor:
        """Convenience: new cursor, execute, return it (sqlite3 style)."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params) -> Cursor:
        """Convenience: new cursor, executemany, return it."""
        return self.cursor().executemany(sql, seq_of_params)

    # ------------------------------------------------------------------
    # Telemetry (docs/PROTOCOL.md section 9 schema, local transport)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The warehouse telemetry + tuning-decision audit snapshot.

        Same schema over every transport: ``latency``, ``pipeline``,
        ``service``, ``tuning``, ``backend``, and ``autotune`` (the
        adaptive controller's decision audit, DESIGN.md section 13).
        """
        self._check_open()
        with translated():
            return self.warehouse.stats()

    def ingest_generation(self) -> int:
        """The warehouse's applied-ingest generation (stats shortcut).

        Monotonic across restarts of a durable warehouse (DESIGN.md
        section 16): a client reconnecting after a server restart can
        compare this against the ``generation`` in its last ingest
        receipt to confirm its acked writes survived the crash.
        """
        return int(self.stats()["ingest"]["generation"])

    # ------------------------------------------------------------------
    # Streaming ingest (docs/PROTOCOL.md section 10, local transport)
    # ------------------------------------------------------------------
    def ingest(
        self,
        fact_rows=None,
        dim_upserts=None,
        timeout: float | None = DEFAULT_FETCH_TIMEOUT,
    ) -> dict:
        """Stage a write set, wait for its scan-boundary apply.

        Same receipt schema over every transport: ``rows``,
        ``snapshot_id``, ``generation``.  With the background driver
        running the apply lands at the next scan boundary; without one
        this call applies the batch itself (DESIGN.md section 15).

        Raises:
            OperationalError: on back-pressure (the bounded ingest
                buffer is full) or when the apply misses ``timeout``.
            ProgrammingError: when a row does not match its table's
                schema or names an unknown dimension.
        """
        self._check_open()
        with translated():
            ticket = self.warehouse.ingest(
                fact_rows=fact_rows, dim_upserts=dim_upserts
            )
            if not self.warehouse.service.running:
                self.warehouse.apply_pending_ingest()
            result = ticket.result(timeout)
        return {
            "rows": result["rows"],
            "snapshot_id": result["snapshot_id"],
            "generation": result["generation"],
        }

    def writer(self, batch_rows: int | None = None):
        """An :class:`~repro.ingest.writer.IngestWriter` over this
        connection's warehouse (auto-batching convenience surface)."""
        self._check_open()
        with translated():
            if batch_rows is None:
                return self.warehouse.writer()
            return self.warehouse.writer(batch_rows=batch_rows)

    # ------------------------------------------------------------------
    # Transactions (PEP 249 surface)
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """No-op: reads are snapshot-isolated and auto-committed.

        Fact-table writes go through
        :meth:`~repro.engine.warehouse.Warehouse.apply_update`, which
        commits its write set atomically (paper section 3.5).
        """
        self._check_open()

    def rollback(self) -> None:
        """Unsupported: there is no open transaction to roll back.

        Raises:
            NotSupportedError: always.
        """
        self._check_open()
        raise NotSupportedError(
            "the warehouse auto-commits; there is no transaction to "
            "roll back"
        )

    # ------------------------------------------------------------------
    # Completion driving (cursor support)
    # ------------------------------------------------------------------
    def _complete(self, handle) -> None:
        """Make sure ``handle`` can finish before a blocking fetch.

        With the background driver running and nothing parked on the
        offline routes there is nothing to do — the fetch just blocks
        on the handle.  Otherwise (no driver, or process/baseline
        submissions waiting for their drain boundary) drive
        ``Warehouse.run()`` on the calling thread.
        """
        if handle.done:
            return
        warehouse = self.warehouse
        offline_pending = warehouse.pending_submissions(
            ROUTE_PROCESS
        ) or warehouse.pending_submissions(ROUTE_BASELINE)
        if offline_pending or not warehouse.service.running:
            warehouse.run()


def connect(
    target: "Warehouse | str | None" = None,
    *,
    warehouse: "Warehouse | None" = None,
    start_service: bool = True,
    fetch_timeout: float = DEFAULT_FETCH_TIMEOUT,
    catalog=None,
    star=None,
    **warehouse_kwargs,
) -> "Connection":
    """Open a client session; the library's front door.

    Four ways in:

    * ``connect("tcp://host:port")`` — attach to a remote
      :class:`~repro.server.tcp.WarehouseServer` over the
      docs/PROTOCOL.md wire protocol; returns a
      :class:`~repro.client.remote.RemoteConnection` with the same
      cursor surface as the in-process paths below.
    * ``connect(warehouse)`` — serve an existing warehouse; the
      connection starts/stops the service driver but leaves the
      warehouse open when it closes.
    * ``connect(catalog=..., star=..., **kwargs)`` — build a
      :class:`~repro.engine.warehouse.Warehouse` over your own data.
    * ``connect(scale_factor=..., **kwargs)`` — build an SSB-loaded
      warehouse (``Warehouse.from_ssb`` keywords).

    ``warehouse=`` is accepted as a keyword alias of ``target`` (the
    parameter's pre-URL name), so existing callers keep working.

    Raises:
        InterfaceError: when both a target and build kwargs are given,
            a catalog is given without its star schema, or the URL is
            malformed.
        OperationalError: when the remote server is unreachable or
            version negotiation fails.
    """
    if warehouse is not None:
        if target is not None:
            raise InterfaceError(
                "pass the warehouse positionally or as warehouse=..., "
                "not both"
            )
        target = warehouse
    if target is not None:
        if warehouse_kwargs or catalog is not None or star is not None:
            raise InterfaceError(
                "pass either a connection target (warehouse or URL) or "
                "kwargs to build a warehouse, not both"
            )
        if isinstance(target, str):
            from repro.client.remote import RemoteConnection, parse_url

            host, port = parse_url(target)
            return RemoteConnection(host, port, fetch_timeout=fetch_timeout)
        return Connection(
            target,
            owns_warehouse=False,
            start_service=start_service,
            fetch_timeout=fetch_timeout,
        )
    with translated():
        if catalog is not None:
            if star is None:
                raise InterfaceError(
                    "connect(catalog=...) also requires star=..."
                )
            built = Warehouse(catalog, star, **warehouse_kwargs)
        else:
            built = Warehouse.from_ssb(**warehouse_kwargs)
    return Connection(
        built,
        owns_warehouse=True,
        start_service=start_service,
        fetch_timeout=fetch_timeout,
    )
