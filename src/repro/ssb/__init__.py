"""Star Schema Benchmark (O'Neil et al. [17]): schema, data, queries.

The paper's entire evaluation runs on SSB (section 6.1.2).  This
package provides the star schema, a deterministic scale-factor-driven
data generator, the 13 benchmark queries, and the selectivity-
controlled workload templates derived from them exactly as section
6.1.2 describes.
"""

from repro.ssb.schema import ssb_star_schema
from repro.ssb.generator import SSBGenerator, load_ssb, table_row_counts
from repro.ssb.queries import (
    WORKLOAD_TEMPLATE_NAMES,
    ssb_query,
    ssb_workload_generator,
    workload_templates,
)

__all__ = [
    "SSBGenerator",
    "WORKLOAD_TEMPLATE_NAMES",
    "load_ssb",
    "ssb_query",
    "ssb_star_schema",
    "ssb_workload_generator",
    "table_row_counts",
    "workload_templates",
]
