"""Deterministic SSB data generator.

Row counts follow the official SSB scaling rules (used by the paper's
Figure 8 / Table 3 sweeps):

* LINEORDER: 6,000,000 x sf
* CUSTOMER:     30,000 x sf
* SUPPLIER:      2,000 x sf
* PART:        200,000 x (1 + log2(sf))   for sf >= 1
* DATE:          2,556 (7 calendar years, fixed)

For sub-unit scale factors ("milli-scale", used by tests and
examples), linear scaling is applied throughout and the calendar is
clipped, so even a few-thousand-row instance keeps the same shape.
Generation is fully deterministic given (sf, seed).
"""

from __future__ import annotations

import datetime
import math
import random

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.errors import BenchmarkError
from repro.ssb import vocab
from repro.ssb.schema import ssb_star_schema
from repro.storage.page import DEFAULT_ROWS_PER_PAGE
from repro.storage.table import Table

#: First calendar day covered by the DATE dimension.
CALENDAR_START = datetime.date(1992, 1, 1)
#: Number of days in the full SSB calendar (7 years).
CALENDAR_DAYS = 2556


def table_row_counts(scale_factor: float) -> dict[str, int]:
    """Row counts per SSB table at ``scale_factor``.

    This function is also the bridge to the analytic cost models: the
    figure harnesses sweep sf through it rather than materializing
    hundred-gigabyte instances.
    """
    if scale_factor <= 0:
        raise BenchmarkError(f"scale factor must be positive, got {scale_factor}")
    if scale_factor >= 1:
        part = round(200_000 * (1 + math.log2(scale_factor)))
        dates = CALENDAR_DAYS
    else:
        part = max(1, round(200_000 * scale_factor))
        dates = max(1, min(CALENDAR_DAYS, round(CALENDAR_DAYS * scale_factor * 50)))
    return {
        "lineorder": max(1, round(6_000_000 * scale_factor)),
        "customer": max(1, round(30_000 * scale_factor)),
        "supplier": max(1, round(2_000 * scale_factor)),
        "part": part,
        "date": dates,
    }


class SSBGenerator:
    """Generates SSB rows deterministically.

    Args:
        scale_factor: SSB sf; fractional values give milli-scale data.
        seed: RNG seed; same (sf, seed) always yields identical rows.
    """

    def __init__(self, scale_factor: float = 0.001, seed: int = 42) -> None:
        self.scale_factor = scale_factor
        self.seed = seed
        self.row_counts = table_row_counts(scale_factor)

    # ------------------------------------------------------------------
    # Dimension tables
    # ------------------------------------------------------------------
    def date_rows(self) -> list[tuple]:
        """Generate the DATE dimension (a real calendar, no randomness)."""
        rows = []
        for day_offset in range(self.row_counts["date"]):
            day = CALENDAR_START + datetime.timedelta(days=day_offset)
            datekey = day.year * 10000 + day.month * 100 + day.day
            week = day.isocalendar()[1]
            rows.append(
                (
                    datekey,
                    day.strftime("%B %d, %Y"),
                    vocab.DAYS_OF_WEEK[day.weekday()],
                    vocab.MONTHS[day.month - 1],
                    day.year,
                    day.year * 100 + day.month,
                    f"{vocab.MONTHS[day.month - 1][:3]}{day.year}",
                    day.weekday() + 1,
                    day.day,
                    day.timetuple().tm_yday,
                    day.month,
                    week,
                    vocab.selling_season(day.month),
                    1 if day.weekday() == 5 else 0,
                    1 if (day.month, day.day) in vocab.HOLIDAYS else 0,
                    1 if day.weekday() < 5 else 0,
                )
            )
        return rows

    def customer_rows(self) -> list[tuple]:
        """Generate the CUSTOMER dimension."""
        rng = random.Random(f"{self.seed}-customer")
        rows = []
        for key in range(1, self.row_counts["customer"] + 1):
            nation = rng.choice(vocab.NATIONS)
            city = vocab.city_of(nation, rng.randrange(10))
            rows.append(
                (
                    key,
                    f"Customer#{key:09d}",
                    f"address-{rng.randrange(10 ** 6):06d}",
                    city,
                    nation,
                    vocab.REGION_OF[nation],
                    vocab.phone_number(rng),
                    rng.choice(vocab.MARKET_SEGMENTS),
                )
            )
        return rows

    def supplier_rows(self) -> list[tuple]:
        """Generate the SUPPLIER dimension."""
        rng = random.Random(f"{self.seed}-supplier")
        rows = []
        for key in range(1, self.row_counts["supplier"] + 1):
            nation = rng.choice(vocab.NATIONS)
            city = vocab.city_of(nation, rng.randrange(10))
            rows.append(
                (
                    key,
                    f"Supplier#{key:09d}",
                    f"address-{rng.randrange(10 ** 6):06d}",
                    city,
                    nation,
                    vocab.REGION_OF[nation],
                    vocab.phone_number(rng),
                )
            )
        return rows

    def part_rows(self) -> list[tuple]:
        """Generate the PART dimension."""
        rng = random.Random(f"{self.seed}-part")
        rows = []
        for key in range(1, self.row_counts["part"] + 1):
            mfgr_num = rng.randrange(1, 6)
            category_num = rng.randrange(1, 6)
            brand_num = rng.randrange(1, 41)
            category = f"MFGR#{mfgr_num}{category_num}"
            rows.append(
                (
                    key,
                    rng.choice(vocab.PART_NAME_WORDS)
                    + " "
                    + rng.choice(vocab.COLORS),
                    f"MFGR#{mfgr_num}",
                    category,
                    f"{category}{brand_num:02d}",
                    rng.choice(vocab.COLORS),
                    rng.choice(vocab.PART_TYPES),
                    rng.randrange(1, 51),
                    rng.choice(vocab.CONTAINERS),
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Fact table
    # ------------------------------------------------------------------
    def lineorder_rows(self, date_keys: list[int] | None = None) -> list[tuple]:
        """Generate the LINEORDER fact table.

        Args:
            date_keys: the d_datekey domain to draw order dates from;
                derived from :meth:`date_rows` when omitted.
        """
        if date_keys is None:
            date_keys = [row[0] for row in self.date_rows()]
        rng = random.Random(f"{self.seed}-lineorder")
        customers = self.row_counts["customer"]
        suppliers = self.row_counts["supplier"]
        parts = self.row_counts["part"]
        rows = []
        orderkey = 0
        remaining = self.row_counts["lineorder"]
        while remaining > 0:
            orderkey += 1
            lines = min(remaining, rng.randrange(1, 8))
            custkey = rng.randrange(1, customers + 1)
            orderdate = rng.choice(date_keys)
            orderpriority = rng.choice(vocab.ORDER_PRIORITIES)
            ordtotalprice = 0
            order_rows = []
            for linenumber in range(1, lines + 1):
                quantity = rng.randrange(1, 51)
                extendedprice = quantity * rng.randrange(900, 110_000)
                discount = rng.randrange(0, 11)
                revenue = extendedprice * (100 - discount) // 100
                supplycost = extendedprice * 6 // 10 // max(quantity, 1)
                ordtotalprice += extendedprice
                order_rows.append(
                    [
                        orderkey,
                        linenumber,
                        custkey,
                        rng.randrange(1, parts + 1),
                        rng.randrange(1, suppliers + 1),
                        orderdate,
                        orderpriority,
                        0,
                        quantity,
                        extendedprice,
                        0,  # patched to ordtotalprice below
                        discount,
                        revenue,
                        supplycost,
                        rng.randrange(0, 9),
                        rng.choice(date_keys),
                        rng.choice(vocab.SHIP_MODES),
                    ]
                )
            for order_row in order_rows:
                order_row[10] = ordtotalprice
                rows.append(tuple(order_row))
            remaining -= lines
        return rows

    def generate_all(self) -> dict[str, list[tuple]]:
        """Generate every table; keys match SSB table names."""
        dates = self.date_rows()
        return {
            "date": dates,
            "customer": self.customer_rows(),
            "supplier": self.supplier_rows(),
            "part": self.part_rows(),
            "lineorder": self.lineorder_rows([row[0] for row in dates]),
        }


def load_ssb(
    scale_factor: float = 0.001,
    seed: int = 42,
    rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
) -> tuple[Catalog, StarSchema]:
    """Generate an SSB instance and load it into a fresh catalog.

    Returns the populated catalog and the registered star schema.
    """
    star = ssb_star_schema()
    generator = SSBGenerator(scale_factor, seed)
    data = generator.generate_all()
    catalog = Catalog()
    for name in ["date", "customer", "supplier", "part"]:
        catalog.register_table(
            Table.from_rows(star.dimension(name), data[name], rows_per_page)
        )
    catalog.register_table(
        Table.from_rows(star.fact, data["lineorder"], rows_per_page)
    )
    catalog.register_star(star)
    return catalog, star
