"""The 13 SSB queries and the paper's workload templates.

Two layers:

* :func:`ssb_query` builds any of the 13 benchmark queries verbatim
  (used for correctness tests and examples);
* :func:`workload_templates` builds the section-6.1.2 workload: each
  benchmark query becomes a template whose range predicates are
  abstract, instantiated with concrete windows of controlled
  selectivity ``s``.

Following the paper, queries Q1.1-Q1.3 are *excluded* from workload
generation (they filter on fact-table attributes and have no group-by;
the paper's prototype did not support them).  They are still fully
implemented here — this library's Preprocessor does evaluate fact
predicates — so they appear in tests and examples.

Template abstraction choice: the paper replaces each range predicate
with an abstract range but does not say how it parameterized equality
predicates (e.g. ``s_region = 'AMERICA'``).  To give the selectivity
knob full range (the experiments sweep s from 0.1% to 10%), every
dimension predicate of a template is abstracted onto a fine-grained
ordered domain of that dimension: d_datekey for DATE (2,556 values),
cities for CUSTOMER/SUPPLIER (250 values), p_brand1 for PART (1,000
values).  The selected fraction of each referenced dimension is then
~s, which is exactly the quantity the paper's sweeps control.
"""

from __future__ import annotations

import datetime

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import And, Between, Comparison, InList
from repro.query.star import ColumnRef, StarQuery
from repro.query.workload import QueryTemplate, RangeParameter, WorkloadGenerator
from repro.ssb import vocab
from repro.ssb.generator import CALENDAR_DAYS, CALENDAR_START

FACT = "lineorder"

#: Names of the templates used for workload generation (Q1.x excluded,
#: as in the paper).
WORKLOAD_TEMPLATE_NAMES = (
    "Q2.1", "Q2.2", "Q2.3",
    "Q3.1", "Q3.2", "Q3.3", "Q3.4",
    "Q4.1", "Q4.2", "Q4.3",
)

ALL_QUERY_NAMES = ("Q1.1", "Q1.2", "Q1.3") + WORKLOAD_TEMPLATE_NAMES


def _ref(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def _sum_revenue() -> AggregateSpec:
    return AggregateSpec("sum", FACT, "lo_revenue", alias="revenue")


def _sum_profit() -> AggregateSpec:
    return AggregateSpec(
        "sum", FACT, "lo_revenue", column2="lo_supplycost", combine="-",
        alias="profit",
    )


def _sum_discounted() -> AggregateSpec:
    return AggregateSpec(
        "sum", FACT, "lo_extendedprice", column2="lo_discount", combine="*",
        alias="revenue",
    )


def ssb_query(name: str) -> StarQuery:
    """Return benchmark query ``name`` (e.g. 'Q4.2') verbatim."""
    builders = {
        "Q1.1": _q1_1, "Q1.2": _q1_2, "Q1.3": _q1_3,
        "Q2.1": _q2_1, "Q2.2": _q2_2, "Q2.3": _q2_3,
        "Q3.1": _q3_1, "Q3.2": _q3_2, "Q3.3": _q3_3, "Q3.4": _q3_4,
        "Q4.1": _q4_1, "Q4.2": _q4_2, "Q4.3": _q4_3,
    }
    try:
        return builders[name]()
    except KeyError:
        raise QueryError(f"unknown SSB query {name!r}") from None


# ----------------------------------------------------------------------
# Flight 1: restrictions on fact columns, single global aggregate
# ----------------------------------------------------------------------
def _q1_1() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={"date": Comparison("d_year", "=", 1993)},
        fact_predicate=And(
            Between("lo_discount", 1, 3),
            Comparison("lo_quantity", "<", 25),
        ),
        aggregates=[_sum_discounted()],
        label="Q1.1",
    )


def _q1_2() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={"date": Comparison("d_yearmonthnum", "=", 199401)},
        fact_predicate=And(
            Between("lo_discount", 4, 6),
            Between("lo_quantity", 26, 35),
        ),
        aggregates=[_sum_discounted()],
        label="Q1.2",
    )


def _q1_3() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "date": And(
                Comparison("d_weeknuminyear", "=", 6),
                Comparison("d_year", "=", 1994),
            )
        },
        fact_predicate=And(
            Between("lo_discount", 5, 7),
            Between("lo_quantity", 26, 35),
        ),
        aggregates=[_sum_discounted()],
        label="Q1.3",
    )


# ----------------------------------------------------------------------
# Flight 2: part/supplier drill-down, group by year and brand
# ----------------------------------------------------------------------
def _q2_1() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "part": Comparison("p_category", "=", "MFGR#12"),
            "supplier": Comparison("s_region", "=", "AMERICA"),
        },
        group_by=[_ref("date", "d_year"), _ref("part", "p_brand1")],
        aggregates=[_sum_revenue()],
        label="Q2.1",
    )


def _q2_2() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "part": Between("p_brand1", "MFGR#2221", "MFGR#2228"),
            "supplier": Comparison("s_region", "=", "ASIA"),
        },
        group_by=[_ref("date", "d_year"), _ref("part", "p_brand1")],
        aggregates=[_sum_revenue()],
        label="Q2.2",
    )


def _q2_3() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "part": Comparison("p_brand1", "=", "MFGR#2239"),
            "supplier": Comparison("s_region", "=", "EUROPE"),
        },
        group_by=[_ref("date", "d_year"), _ref("part", "p_brand1")],
        aggregates=[_sum_revenue()],
        label="Q2.3",
    )


# ----------------------------------------------------------------------
# Flight 3: customer/supplier geography, revenue by year
# ----------------------------------------------------------------------
def _q3_1() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": Comparison("c_region", "=", "ASIA"),
            "supplier": Comparison("s_region", "=", "ASIA"),
            "date": Between("d_year", 1992, 1997),
        },
        group_by=[
            _ref("customer", "c_nation"),
            _ref("supplier", "s_nation"),
            _ref("date", "d_year"),
        ],
        aggregates=[_sum_revenue()],
        label="Q3.1",
    )


def _q3_2() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": Comparison("c_nation", "=", "UNITED STATES"),
            "supplier": Comparison("s_nation", "=", "UNITED STATES"),
            "date": Between("d_year", 1992, 1997),
        },
        group_by=[
            _ref("customer", "c_city"),
            _ref("supplier", "s_city"),
            _ref("date", "d_year"),
        ],
        aggregates=[_sum_revenue()],
        label="Q3.2",
    )


def _q3_3() -> StarQuery:
    cities = frozenset([vocab.city_of("UNITED KINGDOM", 1), vocab.city_of("UNITED KINGDOM", 5)])
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": InList("c_city", cities),
            "supplier": InList("s_city", cities),
            "date": Between("d_year", 1992, 1997),
        },
        group_by=[
            _ref("customer", "c_city"),
            _ref("supplier", "s_city"),
            _ref("date", "d_year"),
        ],
        aggregates=[_sum_revenue()],
        label="Q3.3",
    )


def _q3_4() -> StarQuery:
    cities = frozenset([vocab.city_of("UNITED KINGDOM", 1), vocab.city_of("UNITED KINGDOM", 5)])
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": InList("c_city", cities),
            "supplier": InList("s_city", cities),
            "date": Comparison("d_yearmonth", "=", "Dec1997"),
        },
        group_by=[
            _ref("customer", "c_city"),
            _ref("supplier", "s_city"),
            _ref("date", "d_year"),
        ],
        aggregates=[_sum_revenue()],
        label="Q3.4",
    )


# ----------------------------------------------------------------------
# Flight 4: profit drill-down across all four dimensions
# ----------------------------------------------------------------------
def _q4_1() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": Comparison("c_region", "=", "AMERICA"),
            "supplier": Comparison("s_region", "=", "AMERICA"),
            "part": InList("p_mfgr", frozenset(["MFGR#1", "MFGR#2"])),
        },
        group_by=[_ref("date", "d_year"), _ref("customer", "c_nation")],
        aggregates=[_sum_profit()],
        label="Q4.1",
    )


def _q4_2() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": Comparison("c_region", "=", "AMERICA"),
            "supplier": Comparison("s_region", "=", "AMERICA"),
            "part": InList("p_mfgr", frozenset(["MFGR#1", "MFGR#2"])),
            "date": Between("d_year", 1997, 1998),
        },
        group_by=[
            _ref("date", "d_year"),
            _ref("supplier", "s_nation"),
            _ref("part", "p_category"),
        ],
        aggregates=[_sum_profit()],
        label="Q4.2",
    )


def _q4_3() -> StarQuery:
    return StarQuery.build(
        FACT,
        dimension_predicates={
            "customer": Comparison("c_region", "=", "AMERICA"),
            "supplier": Comparison("s_nation", "=", "UNITED STATES"),
            "part": Comparison("p_category", "=", "MFGR#14"),
            "date": Between("d_year", 1997, 1998),
        },
        group_by=[
            _ref("date", "d_year"),
            _ref("supplier", "s_city"),
            _ref("part", "p_brand1"),
        ],
        aggregates=[_sum_profit()],
        label="Q4.3",
    )


# ----------------------------------------------------------------------
# Workload templates (section 6.1.2)
# ----------------------------------------------------------------------
def _datekey_domain() -> tuple:
    keys = []
    for offset in range(CALENDAR_DAYS):
        day = CALENDAR_START + datetime.timedelta(days=offset)
        keys.append(day.year * 10000 + day.month * 100 + day.day)
    return tuple(keys)


def _brand_domain() -> tuple:
    return tuple(
        sorted(
            f"MFGR#{mfgr}{category}{brand:02d}"
            for mfgr in range(1, 6)
            for category in range(1, 6)
            for brand in range(1, 41)
        )
    )


_DATE_PARAM = RangeParameter("date", "d_datekey", _datekey_domain())
_CUSTOMER_PARAM = RangeParameter("customer", "c_city", tuple(sorted(vocab.CITIES)))
_SUPPLIER_PARAM = RangeParameter("supplier", "s_city", tuple(sorted(vocab.CITIES)))
_PART_PARAM = RangeParameter("part", "p_brand1", _brand_domain())


def _data_derived_parameter(
    parameter: RangeParameter, catalog
) -> RangeParameter:
    """Rebind a range parameter's domain to the values actually loaded.

    Milli-scale instances cover only a prefix of the full calendar and
    a subset of cities/brands; deriving domains from the catalog keeps
    the selectivity knob exact on any instance size.
    """
    table = catalog.table(parameter.dimension)
    index = table.schema.column_index(parameter.column)
    values = sorted({row[index] for row in table.heap.iter_rows()})
    return RangeParameter(parameter.dimension, parameter.column, tuple(values))


def workload_templates(catalog=None) -> list[QueryTemplate]:
    """The ten workload templates derived from Q2.1-Q4.3.

    Each template keeps its source query's group-by and aggregates and
    carries one abstract range parameter per dimension the source
    query filtered.

    Args:
        catalog: when given, parameter domains are recomputed from the
            loaded data (recommended for milli-scale instances).
    """
    by_flight = {
        # flight 2 filters part + supplier
        "Q2.1": (_PART_PARAM, _SUPPLIER_PARAM),
        "Q2.2": (_PART_PARAM, _SUPPLIER_PARAM),
        "Q2.3": (_PART_PARAM, _SUPPLIER_PARAM),
        # flight 3 filters customer + supplier + date
        "Q3.1": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _DATE_PARAM),
        "Q3.2": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _DATE_PARAM),
        "Q3.3": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _DATE_PARAM),
        "Q3.4": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _DATE_PARAM),
        # flight 4 filters customer + supplier + part (+ date in 4.2/4.3)
        "Q4.1": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _PART_PARAM),
        "Q4.2": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _PART_PARAM, _DATE_PARAM),
        "Q4.3": (_CUSTOMER_PARAM, _SUPPLIER_PARAM, _PART_PARAM, _DATE_PARAM),
    }
    templates = []
    for name in WORKLOAD_TEMPLATE_NAMES:
        source = ssb_query(name)
        parameters = by_flight[name]
        if catalog is not None:
            parameters = tuple(
                _data_derived_parameter(parameter, catalog)
                for parameter in parameters
            )
        templates.append(
            QueryTemplate(
                name=name,
                fact_table=FACT,
                range_parameters=parameters,
                group_by=source.group_by,
                select=source.select,
                aggregates=source.aggregates,
            )
        )
    return templates


def ssb_workload_generator(seed: int = 0, catalog=None) -> WorkloadGenerator:
    """A workload generator over the ten section-6.1.2 templates.

    Pass the loaded ``catalog`` to bind parameter domains to the data
    actually present (see :func:`workload_templates`).
    """
    return WorkloadGenerator(workload_templates(catalog), seed=seed)
