"""The Star Schema Benchmark schema.

One fact table LINEORDER linked to four dimensions (DATE, CUSTOMER,
SUPPLIER, PART) — the denormalized star derived from TPC-H that the
paper's evaluation uses.
"""

from __future__ import annotations

from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)

INT = DataType.INT
FLOAT = DataType.FLOAT
STRING = DataType.STRING
DATE = DataType.DATE


def date_schema() -> TableSchema:
    """The DATE dimension (fixed 7-year calendar)."""
    return TableSchema(
        "date",
        [
            Column("d_datekey", INT),
            Column("d_date", STRING),
            Column("d_dayofweek", STRING),
            Column("d_month", STRING),
            Column("d_year", INT),
            Column("d_yearmonthnum", INT),
            Column("d_yearmonth", STRING),
            Column("d_daynuminweek", INT),
            Column("d_daynuminmonth", INT),
            Column("d_daynuminyear", INT),
            Column("d_monthnuminyear", INT),
            Column("d_weeknuminyear", INT),
            Column("d_sellingseason", STRING),
            Column("d_lastdayinweekfl", INT),
            Column("d_holidayfl", INT),
            Column("d_weekdayfl", INT),
        ],
        primary_key="d_datekey",
    )


def customer_schema() -> TableSchema:
    """The CUSTOMER dimension."""
    return TableSchema(
        "customer",
        [
            Column("c_custkey", INT),
            Column("c_name", STRING),
            Column("c_address", STRING),
            Column("c_city", STRING),
            Column("c_nation", STRING),
            Column("c_region", STRING),
            Column("c_phone", STRING),
            Column("c_mktsegment", STRING),
        ],
        primary_key="c_custkey",
    )


def supplier_schema() -> TableSchema:
    """The SUPPLIER dimension."""
    return TableSchema(
        "supplier",
        [
            Column("s_suppkey", INT),
            Column("s_name", STRING),
            Column("s_address", STRING),
            Column("s_city", STRING),
            Column("s_nation", STRING),
            Column("s_region", STRING),
            Column("s_phone", STRING),
        ],
        primary_key="s_suppkey",
    )


def part_schema() -> TableSchema:
    """The PART dimension."""
    return TableSchema(
        "part",
        [
            Column("p_partkey", INT),
            Column("p_name", STRING),
            Column("p_mfgr", STRING),
            Column("p_category", STRING),
            Column("p_brand1", STRING),
            Column("p_color", STRING),
            Column("p_type", STRING),
            Column("p_size", INT),
            Column("p_container", STRING),
        ],
        primary_key="p_partkey",
    )


def lineorder_schema() -> TableSchema:
    """The LINEORDER fact table."""
    return TableSchema(
        "lineorder",
        [
            Column("lo_orderkey", INT),
            Column("lo_linenumber", INT),
            Column("lo_custkey", INT),
            Column("lo_partkey", INT),
            Column("lo_suppkey", INT),
            Column("lo_orderdate", INT),
            Column("lo_orderpriority", STRING),
            Column("lo_shippriority", INT),
            Column("lo_quantity", INT),
            Column("lo_extendedprice", INT),
            Column("lo_ordtotalprice", INT),
            Column("lo_discount", INT),
            Column("lo_revenue", INT),
            Column("lo_supplycost", INT),
            Column("lo_tax", INT),
            Column("lo_commitdate", INT),
            Column("lo_shipmode", STRING),
        ],
        foreign_keys=[
            ForeignKey("lo_custkey", "customer", "c_custkey"),
            ForeignKey("lo_partkey", "part", "p_partkey"),
            ForeignKey("lo_suppkey", "supplier", "s_suppkey"),
            ForeignKey("lo_orderdate", "date", "d_datekey"),
        ],
    )


def ssb_star_schema() -> StarSchema:
    """The full SSB star: LINEORDER with its four dimensions."""
    return StarSchema(
        fact=lineorder_schema(),
        dimensions={
            "date": date_schema(),
            "customer": customer_schema(),
            "supplier": supplier_schema(),
            "part": part_schema(),
        },
    )
