"""Static vocabularies for the SSB data generator.

These mirror the value domains of the official dbgen tool closely
enough that the benchmark queries' predicates select realistic
fractions of each dimension.
"""

from __future__ import annotations

import random

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: 25 nations, 5 per region (TPC-H nation list).
NATIONS_BY_REGION = {
    "AFRICA": ("ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"),
    "AMERICA": ("ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"),
    "ASIA": ("CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"),
    "EUROPE": ("FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"),
    "MIDDLE EAST": ("EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"),
}

NATIONS = tuple(
    nation for region in REGIONS for nation in NATIONS_BY_REGION[region]
)

REGION_OF = {
    nation: region
    for region, nations in NATIONS_BY_REGION.items()
    for nation in nations
}


def city_of(nation: str, index: int) -> str:
    """SSB city naming: first 9 chars of the nation plus a digit."""
    return f"{nation[:9]:<9}{index}"


#: All 250 SSB cities, ordered by nation then digit.
CITIES = tuple(city_of(nation, i) for nation in NATIONS for i in range(10))

MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")

COLORS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
)

PART_TYPES = tuple(
    f"{kind} {finish} {metal}"
    for kind in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
    for finish in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
    for metal in ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
)

CONTAINERS = tuple(
    f"{size} {kind}"
    for size in ("JUMBO", "LG", "MED", "SM", "WRAP")
    for kind in ("BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG")
)

PART_NAME_WORDS = (
    "aluminum", "brushed", "burnished", "ceramic", "chrome", "composite",
    "forged", "galvanized", "laminated", "polished", "smooth", "tempered",
)

DAYS_OF_WEEK = (
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
)

MONTHS = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)

#: (month, day) pairs flagged as holidays in the DATE dimension.
HOLIDAYS = frozenset(
    [(1, 1), (2, 14), (7, 4), (11, 25), (12, 24), (12, 25), (12, 31)]
)


def selling_season(month: int) -> str:
    """SSB selling season of a calendar month."""
    if month in (12, 1):
        return "Christmas"
    if month in (2, 3, 4):
        return "Spring"
    if month in (5, 6, 7):
        return "Summer"
    if month in (8, 9, 10):
        return "Fall"
    return "Winter"


def phone_number(rng: random.Random) -> str:
    """A synthetic 10-digit phone string."""
    return (
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )
