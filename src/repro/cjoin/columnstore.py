"""CJOIN over a column-store fact table (paper section 5).

The continuous scan becomes a continuous *merge* of only those fact
columns the query mix needs: the foreign keys of the star's dimensions
plus whatever fact attributes queries touch.  The rest of the pipeline
is unchanged — merged rows are full-arity tuples with ``None`` in
unread positions, so Filters and output operators run as-is, while the
buffer pool observes proportionally less I/O (the benefit the paper
describes).

The scanned column set is fixed when the operator is built (a
deployment decision, like a projection in C-Store); admission rejects
queries that need unscanned fact columns.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.errors import AdmissionError
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnStoreTable


def fact_columns_needed(query: StarQuery, star: StarSchema) -> set[str]:
    """Fact columns a query reads: FKs of referenced dims, fact

    predicate inputs, and fact-side outputs (group-by/select/aggregate
    columns on the fact table).
    """
    needed: set[str] = set()
    for name in query.referenced_dimensions():
        needed.add(star.fact.foreign_key_to(name).column)
    if query.fact_predicate is not None:
        needed |= query.fact_predicate.referenced_columns()
    for ref in [*query.group_by, *query.select]:
        if ref.table == query.fact_table:
            needed.add(ref.column)
    for spec in query.aggregates:
        if spec.table == query.fact_table:
            needed.add(spec.column)
            if spec.column2 is not None:
                needed.add(spec.column2)
    return needed


class ColumnMergeContinuousScan:
    """A circular merge-scan over selected columns of a column store.

    Presents the :class:`~repro.storage.scan.ContinuousScan` interface
    (``next()``, ``next_position``, ``tuples_returned``); unselected
    columns are ``None`` in the produced rows.
    """

    def __init__(
        self,
        table: ColumnStoreTable,
        column_names: Iterable[str],
        buffer_pool: BufferPool,
    ) -> None:
        self.table = table
        self.buffer_pool = buffer_pool
        self.column_names = sorted(set(column_names))
        for name in self.column_names:
            if name not in table.column_heaps:
                raise AdmissionError(
                    f"column store has no column {name!r}"
                )
        self._readers = [
            (table.schema.column_index(name), table.column_heaps[name])
            for name in self.column_names
        ]
        self._position = 0
        self._tuples_returned = 0

    @property
    def next_position(self) -> int:
        """Position of the tuple the next :meth:`next` call returns."""
        if self._position >= self.table.row_count:
            return 0
        return self._position

    @property
    def tuples_returned(self) -> int:
        """Total tuples produced since construction."""
        return self._tuples_returned

    def next(self) -> tuple[int, tuple] | None:
        """Return the next (position, merged row), or None when empty."""
        row_count = self.table.row_count
        if row_count == 0:
            return None
        if self._position >= row_count:
            self._position = 0
        position = self._position
        values_per_page = self.table.values_per_page
        page_id, slot_id = divmod(position, values_per_page)
        row = [None] * self.table.schema.arity
        for column_index, heap in self._readers:
            page = self.buffer_pool.fetch(heap, page_id)
            row[column_index] = page.slot(slot_id)[0]
        self._position = position + 1
        self._tuples_returned += 1
        return position, tuple(row)


class ColumnStoreCJoinOperator(CJoinOperator):
    """CJOIN whose continuous scan merges a fixed fact-column set.

    The catalog's fact entry must be the :class:`ColumnStoreTable`
    itself (the operator only needs its schema and row count there).
    """

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema,
        column_fact: ColumnStoreTable,
        scanned_columns: Iterable[str] | None = None,
        **kwargs,
    ) -> None:
        self.column_fact = column_fact
        super().__init__(catalog, star, **kwargs)
        if scanned_columns is None:
            # default projection: all foreign keys (any star query joins
            # through them) — callers add measure columns as needed
            scanned_columns = [
                fk.column for fk in star.fact.foreign_keys
            ]
        self.scan = ColumnMergeContinuousScan(
            column_fact, scanned_columns, self.buffer_pool
        )
        self.preprocessor.scan = self.scan

    def submit(self, query: StarQuery) -> QueryHandle:
        """Admit ``query`` after checking its fact columns are scanned.

        Raises:
            AdmissionError: if the query reads a fact column outside
                the operator's projection.
        """
        needed = fact_columns_needed(query, self.star)
        missing = needed - set(self.scan.column_names)
        if missing:
            raise AdmissionError(
                f"query needs unscanned fact columns {sorted(missing)}; "
                f"operator projection is {self.scan.column_names}"
            )
        return super().submit(query)

    def pages_per_cycle(self) -> int:
        """Column pages one scan cycle reads (the I/O-volume win)."""
        return self.column_fact.pages_for_columns(self.scan.column_names)
