"""Columnar fact batches for the vectorized fast path (DESIGN.md section 5).

The tuple-at-a-time pipeline pays several Python calls per fact tuple
per Filter — the opposite of the paper's "one pass, shared work"
economics.  :class:`FactBatch` restores batch granularity: the
Preprocessor emits one batch per run of consecutive fact tuples, each
Filter makes *one* call per batch (amortizing dispatch, deduplicating
hash-table probes by key, and testing the batch-level probe skip once),
and the Distributor routes survivors grouped by identical bit-vectors.

A batch is parallel arrays plus two liveness views of the same state:

* ``live`` — the list of still-alive row indices, in scan order (what
  the hot loops iterate);
* ``alive`` — the same set as a bit-mask (bit r set iff row r is
  alive), maintained with :mod:`repro.bitvec` bulk operations so
  invariants are cheap to check and cheap to reason about.

Batches never cross a control tuple: the Preprocessor flushes the
current batch before emitting QueryStart/QueryEnd, so re-serializing by
envelope id in the threaded executor preserves the section 3.3.3
control-tuple ordering exactly as in the tuple path.
"""

from __future__ import annotations

from repro import bitvec
from repro.cjoin.tuples import FactTuple


class FactBatch:
    """A run of consecutive fact tuples in columnar form."""

    __slots__ = (
        "sequences",
        "positions",
        "rows",
        "bitvectors",
        "dim_rows",
        "live",
        "alive",
        "_key_columns",
    )

    def __init__(
        self,
        sequences: list[int],
        positions: list[int],
        rows: list[tuple],
        bitvectors: list[int],
    ) -> None:
        if not (
            len(sequences) == len(positions) == len(rows) == len(bitvectors)
        ):
            raise ValueError("FactBatch columns must have equal length")
        self.sequences = sequences
        self.positions = positions
        self.rows = rows
        self.bitvectors = bitvectors
        #: per-row dimension attachments (section 3.2.2 pointer rows);
        #: None until a Filter attaches the first pointer for that row
        self.dim_rows: list[dict[str, tuple] | None] = [None] * len(rows)
        #: still-alive row indices in scan order (the hot-loop view)
        self.live: list[int] = list(range(len(rows)))
        #: the same liveness as a bit-mask — the batch's shared BitVec.
        #: Hot loops iterate ``live``; the mask is the O(1)-to-combine
        #: summary (tests cross-check the two views stay in sync)
        self.alive: int = bitvec.all_ones(len(rows))
        #: fk column index -> extracted key column (built on demand)
        self._key_columns: dict[int, list] = {}

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def live_count(self) -> int:
        """Number of rows still in flight."""
        return len(self.live)

    def key_column(self, column_index: int) -> list:
        """The batch's values for fact column ``column_index``.

        Extracted once per batch and cached, so every Filter probing
        the same foreign-key column shares one extraction pass.
        """
        column = self._key_columns.get(column_index)
        if column is None:
            column = [row[column_index] for row in self.rows]
            self._key_columns[column_index] = column
        return column

    def drop_rows(self, dropped_mask: int, survivors: list[int]) -> None:
        """Install a Filter's verdict: clear dropped bits, shrink live.

        ``survivors`` must be the live list minus exactly the rows in
        ``dropped_mask`` (the Filter builds both in its probe loop).
        """
        self.alive &= ~dropped_mask
        self.live = survivors

    def union_bits(self) -> int:
        """OR of the live rows' bit-vectors (the batch relevance union)."""
        return bitvec.or_reduce_at(self.bitvectors, self.live)

    def materialize(self, row_index: int) -> FactTuple:
        """Build the equivalent :class:`FactTuple` for one row.

        Used at the batch/tuple seams: routing survivors into per-query
        operators and feeding the optimizer's tuple-shaped profiler.
        """
        fact_tuple = FactTuple(
            self.sequences[row_index],
            self.positions[row_index],
            self.rows[row_index],
            self.bitvectors[row_index],
        )
        fact_tuple.dim_rows = self.dim_rows[row_index]
        return fact_tuple

    def __repr__(self) -> str:
        return (
            f"FactBatch(rows={len(self.rows)}, live={len(self.live)}, "
            f"seq={self.sequences[0] if self.sequences else '-'}..)"
        )
