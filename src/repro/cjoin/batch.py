"""Columnar fact batches for the vectorized fast path (DESIGN.md section 5).

The tuple-at-a-time pipeline pays several Python calls per fact tuple
per Filter — the opposite of the paper's "one pass, shared work"
economics.  :class:`FactBatch` restores batch granularity: the
Preprocessor emits one batch per run of consecutive fact tuples, each
Filter makes *one* call per batch (amortizing dispatch, deduplicating
hash-table probes by key, and testing the batch-level probe skip once),
and the Distributor routes survivors grouped by identical bit-vectors.

A batch is parallel arrays plus two liveness views of the same state:

* ``live`` — the list of still-alive row indices, in scan order (what
  the hot loops iterate);
* ``alive`` — the same set as a bit-mask (bit r set iff row r is
  alive), maintained with :mod:`repro.bitvec` bulk operations so
  invariants are cheap to check and cheap to reason about.

``sequences`` and ``positions`` are ``array('q')`` buffers: machine
i64 columns (8 bytes/row instead of a PyObject* plus an int object),
sharing small-int objects on element access and supporting the
buffer protocol, so the shared-memory shard transport
(:mod:`repro.storage.shm`) and the numpy kernels
(:mod:`repro.cjoin.kernels`) can view them zero-copy.  ``rows`` and
``bitvectors`` stay plain lists — rows are heterogeneous tuples, and
bit-vectors are arbitrary-precision ints (queries beyond bit 63 must
not overflow silently).

Dimension attachments come in two granularities (section 3.2.2):

* per-row dicts (``ensure_dim_rows``) — the reference loops attach
  the joining dimension row to each surviving fact row individually;
* per-batch lookups (``attach_dim_lookup``) — the batch kernels
  attach one O(1) ``(foreign-key column index, key -> dimension
  row)`` pair per dimension per batch, and the output operators
  re-derive the join on demand through getters compiled against
  :meth:`dim_lookup_state`.  One constant-time attachment per batch
  replaces one dict insert per surviving row.

Both are lazy: a batch whose rows never join a stored dimension row
allocates neither.  :meth:`materialize` merges the two views back
into the per-tuple shape at the batch/tuple seams.

Batches never cross a control tuple: the Preprocessor flushes the
current batch before emitting QueryStart/QueryEnd, so re-serializing by
envelope id in the threaded executor preserves the section 3.3.3
control-tuple ordering exactly as in the tuple path.
"""

from __future__ import annotations

from functools import reduce
from operator import itemgetter, or_ as _or

from repro import bitvec
from repro.cjoin.tuples import FactTuple


class FactBatch:
    """A run of consecutive fact tuples in columnar form."""

    __slots__ = (
        "sequences",
        "positions",
        "rows",
        "bitvectors",
        "live",
        "alive",
        "_dim_rows",
        "_dim_lookups",
        "_key_columns",
    )

    def __init__(
        self,
        sequences,
        positions,
        rows: list[tuple],
        bitvectors: list[int],
    ) -> None:
        if not (
            len(sequences) == len(positions) == len(rows) == len(bitvectors)
        ):
            raise ValueError("FactBatch columns must have equal length")
        #: scan sequence / scan position columns; ``array('q')`` on the
        #: production path (the Preprocessor), any indexable works
        self.sequences = sequences
        self.positions = positions
        self.rows = rows
        self.bitvectors = bitvectors
        #: per-row dimension attachments (section 3.2.2 pointer rows);
        #: the whole list is None until the first attach (most batches
        #: in selective workloads never allocate it)
        self._dim_rows: list[dict[str, tuple] | None] | None = None
        #: per-batch dimension attachments from the batch kernels:
        #: dimension name -> (fk column index, key -> dimension row)
        self._dim_lookups: dict[str, tuple] = {}
        #: still-alive row indices in scan order (the hot-loop view)
        self.live: list[int] = list(range(len(rows)))
        #: the same liveness as a bit-mask — the batch's shared BitVec.
        #: Hot loops iterate ``live``; the mask is the O(1)-to-combine
        #: summary (tests cross-check the two views stay in sync)
        self.alive: int = bitvec.all_ones(len(rows))
        #: fk column index -> extracted key column (built on demand)
        self._key_columns: dict[int, list] = {}

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def live_count(self) -> int:
        """Number of rows still in flight."""
        return len(self.live)

    @property
    def dim_rows(self) -> list[dict[str, tuple] | None] | None:
        """The per-row attachment list, or None while nothing attached."""
        return self._dim_rows

    def ensure_dim_rows(self) -> list[dict[str, tuple] | None]:
        """The per-row attachment list, allocated on first use."""
        dim_rows = self._dim_rows
        if dim_rows is None:
            dim_rows = self._dim_rows = [None] * len(self.rows)
        return dim_rows

    def key_column(self, column_index: int) -> list:
        """The batch's values for fact column ``column_index``.

        Extracted once per batch and cached, so every Filter probing
        the same foreign-key column shares one extraction pass (and
        the Distributor's columnar consumers reuse it as the fact
        value column).
        """
        column = self._key_columns.get(column_index)
        if column is None:
            column = list(map(itemgetter(column_index), self.rows))
            self._key_columns[column_index] = column
        return column

    def attach_dim_lookup(
        self, name: str, fk_index: int, rows_of: dict
    ) -> None:
        """Attach one dimension's joins for the whole batch at once.

        O(1) — just ``(foreign-key column index, key -> stored row)``;
        consumers re-derive the key from the fact row on access.  Any
        consumer reading dimension ``name`` for a routed row is
        guaranteed a hit: a row whose key missed the hash table had
        every bit of a query referencing ``name`` cleared by that
        Filter, so no such query can be routed to it.
        """
        self._dim_lookups[name] = (fk_index, rows_of)

    def dim_lookup_state(self, names) -> tuple | None:
        """The attached ``(fk index, key -> row)`` lookups for ``names``.

        None when any named dimension has no batch-level attachment
        (the caller must fall back to :meth:`materialize`).  The
        returned tuple is the output operators' getter-cache key: its
        elements wrap identity-stable snapshot dicts, so comparing
        states costs a few pointer checks per routed batch.
        """
        state = tuple(map(self._dim_lookups.get, names))
        return None if None in state else state

    def drop_rows(self, dropped_mask: int, survivors: list[int]) -> None:
        """Install a Filter's verdict: clear dropped bits, shrink live.

        ``survivors`` must be the live list minus exactly the rows in
        ``dropped_mask`` (the Filter builds both in its probe loop).
        """
        self.alive &= ~dropped_mask
        self.live = survivors

    def replace_live(self, survivors: list[int]) -> None:
        """Install a Filter's verdict from the surviving side.

        Equivalent to :meth:`drop_rows` but rebuilds the alive mask
        from the survivors — the cheaper side when a Filter drops most
        of a batch.
        """
        self.alive = bitvec.pack_positions(survivors)
        self.live = survivors

    def union_bits(self) -> int:
        """OR of the live rows' bit-vectors (the batch relevance union).

        Reduced over the *full* column at C level: every drop path
        writes the zero bit-vector back before clearing liveness, so
        dead rows cannot contribute and no index gather is needed.
        """
        return reduce(_or, self.bitvectors, 0)

    def materialize(self, row_index: int) -> FactTuple:
        """Build the equivalent :class:`FactTuple` for one row.

        Used at the batch/tuple seams: routing survivors into
        operators that only understand tuples and feeding the
        optimizer's tuple-shaped profiler.  Merges both attachment
        granularities into the tuple's per-row ``dim_rows`` dict.
        """
        fact_tuple = FactTuple(
            self.sequences[row_index],
            self.positions[row_index],
            self.rows[row_index],
            self.bitvectors[row_index],
        )
        dim_rows = (
            self._dim_rows[row_index] if self._dim_rows is not None else None
        )
        if self._dim_lookups:
            merged = dict(dim_rows) if dim_rows else {}
            row = self.rows[row_index]
            for name, (fk_index, rows_of) in self._dim_lookups.items():
                dim_row = rows_of.get(row[fk_index])
                if dim_row is not None:
                    merged[name] = dim_row
            dim_rows = merged or None
        fact_tuple.dim_rows = dim_rows
        return fact_tuple

    def __repr__(self) -> str:
        return (
            f"FactBatch(rows={len(self.rows)}, live={len(self.live)}, "
            f"seq={self.sequences[0] if len(self.sequences) else '-'}..)"
        )
