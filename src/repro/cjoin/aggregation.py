"""Per-query output operators fed by the Distributor.

Each registered query owns one operator: a hash-based group-by
aggregator for the common case, or a plain listing collector when the
query has no aggregates (``k = 0``) — the shape used by galaxy
fact-to-fact sub-plans (section 5).

Operators read fact attributes directly from the tuple and dimension
attributes through the row pointers the Filters attached (section
3.2.2), so no probing happens here.

For the process-parallel backend (DESIGN.md section 8) every operator
is also *mergeable*: :meth:`OutputOperator.partial_state` exports the
un-finalized state accumulated over one fact shard, and
:meth:`OutputOperator.merge_partial` folds such a state into a fresh
coordinator-side operator.  Merging shard states in shard order
reconstructs exactly the state the serial scan would have built,
because shards are contiguous spans of the same scan order.
"""

from __future__ import annotations

from operator import itemgetter

from repro.catalog.schema import StarSchema
from repro.cjoin.tuples import FactTuple
from repro.errors import PipelineError
from repro.query.aggregates import AggregateSpec, make_accumulator
from repro.query.star import ColumnRef, StarQuery


def _make_extractor(ref: ColumnRef, query: StarQuery, star: StarSchema):
    """Compile a ColumnRef into a FactTuple -> value closure."""
    if ref.table == query.fact_table:
        index = star.fact.column_index(ref.column)
        return lambda fact_tuple: fact_tuple.row[index]
    dimension = star.dimension(ref.table)
    index = dimension.column_index(ref.column)
    name = ref.table
    return lambda fact_tuple: fact_tuple.dim_rows[name][index]


def _make_row_getter_factory(
    ref: ColumnRef, query: StarQuery, star: StarSchema, dim_names: list[str]
):
    """Compile a ColumnRef into a lookup-state -> (row -> value) factory.

    The columnar twin of :func:`_make_extractor` (DESIGN.md section
    14).  Getters read the fact *row tuple* directly — fact attributes
    via a C-level ``itemgetter``, dimension attributes through the
    batch-level ``(fk index, key -> row)`` join lookup — so they
    depend only on the dimension lookup snapshots, not on the batch:
    one compile serves every batch until a registration change swaps
    the snapshots (see ``OutputOperator._compiled_row_getters``).
    Dimension tables read this way are appended to ``dim_names``.
    """
    if ref.table == query.fact_table:
        getter = itemgetter(star.fact.column_index(ref.column))
        return lambda lookup_of: getter
    dimension = star.dimension(ref.table)
    index = dimension.column_index(ref.column)
    name = ref.table
    if name not in dim_names:
        dim_names.append(name)

    def dim_factory(lookup_of):
        fk_index, rows_of = lookup_of[name]
        return lambda row: rows_of[row[fk_index]][index]

    return dim_factory


def _make_aggregate_input(spec: AggregateSpec, query: StarQuery, star: StarSchema):
    """Compile an aggregate's input expression into a closure."""
    if spec.is_count_star:
        return lambda fact_tuple: 0  # any non-None marker
    first = _make_extractor(ColumnRef(spec.table, spec.column), query, star)
    if spec.column2 is None:
        return first
    second = _make_extractor(ColumnRef(spec.table, spec.column2), query, star)
    return lambda fact_tuple: spec.combine_values(
        first(fact_tuple), second(fact_tuple)
    )


def _count_star_getter(_row: tuple):
    return 0  # any non-None marker


def _make_aggregate_row_input_factory(
    spec: AggregateSpec, query: StarQuery, star: StarSchema,
    dim_names: list[str],
):
    """Columnar twin of :func:`_make_aggregate_input`."""
    if spec.is_count_star:
        return lambda lookup_of: _count_star_getter
    first = _make_row_getter_factory(
        ColumnRef(spec.table, spec.column), query, star, dim_names
    )
    if spec.column2 is None:
        return first
    second = _make_row_getter_factory(
        ColumnRef(spec.table, spec.column2), query, star, dim_names
    )
    combine = spec.combine_values

    def factory(lookup_of):
        get_first = first(lookup_of)
        get_second = second(lookup_of)
        return lambda row: combine(get_first(row), get_second(row))

    return factory


def _compile_row_getter_factories(query: StarQuery, star: StarSchema):
    """(dim names, (key, select, aggregate-input) factory lists)."""
    dim_names: list[str] = []
    factories = (
        [
            _make_row_getter_factory(ref, query, star, dim_names)
            for ref in query.group_by
        ],
        [
            _make_row_getter_factory(ref, query, star, dim_names)
            for ref in query.select
        ],
        [
            _make_aggregate_row_input_factory(spec, query, star, dim_names)
            for spec in query.aggregates
        ],
    )
    return tuple(dim_names), factories


class OutputOperator:
    """Base class: consumes routed fact tuples, produces result rows."""

    #: single-slot (dim lookup state, compiled getters) memo.  Row
    #: getters read the fact row tuple, so they depend only on the
    #: dimension lookup snapshots attached to batches — and those are
    #: identity-stable between registration changes (the dimension
    #: table caches them), so the state comparison is a handful of
    #: pointer checks and recompiles happen per query-set epoch, not
    #: per batch
    _getter_cache: tuple = (None, None)

    def _compiled_row_getters(self, batch):
        """The (key, select, input) row getters for ``batch``.

        Returns None when a dimension this operator reads has no
        batch-level lookup attached (callers fall back to the
        materializing path — only reachable off the kernel route).
        """
        state = batch.dim_lookup_state(self._dim_names)
        if state is None:
            return None
        cached_state, getters = self._getter_cache
        if cached_state != state:
            lookup_of = dict(zip(self._dim_names, state))
            key_factories, select_factories, input_factories = (
                self._row_getter_factories
            )
            getters = (
                [factory(lookup_of) for factory in key_factories],
                [factory(lookup_of) for factory in select_factories],
                [factory(lookup_of) for factory in input_factories],
            )
            self._getter_cache = (state, getters)
        return getters

    def consume(self, fact_tuple: FactTuple) -> None:
        """Fold one routed fact tuple into the operator state."""
        raise NotImplementedError

    def consume_batch(self, fact_tuples: list[FactTuple]) -> None:
        """Fold a batch of routed tuples (DESIGN.md section 5).

        The default just loops :meth:`consume`; subclasses override to
        hoist extractor lookups out of the per-tuple loop.
        """
        for fact_tuple in fact_tuples:
            self.consume(fact_tuple)

    def consume_rows(self, batch, row_indices: list[int]) -> None:
        """Fold batch rows columnar, without materializing tuples.

        The kernel-path routing entry point (DESIGN.md section 14):
        ``row_indices`` are the batch rows routed to this query, in
        scan order.  The default materializes and defers to
        :meth:`consume_batch` so tuple-shaped subclasses stay correct;
        the built-in operators override with getters compiled straight
        against the batch's columns.
        """
        self.consume_batch([batch.materialize(r) for r in row_indices])

    def partial_state(self):
        """Export the un-finalized state for cross-process merging.

        The returned value must be picklable and must not be mutated by
        this operator afterwards (workers export once, at query end).
        """
        raise NotImplementedError

    def merge_partial(self, state) -> None:
        """Fold a :meth:`partial_state` export into this operator.

        The coordinator calls this once per shard, in shard order; the
        state may be adopted wholesale (ownership transfers).
        """
        raise NotImplementedError

    def results(self) -> list[tuple]:
        """Canonical result rows (sorted by the select prefix)."""
        raise NotImplementedError


class AggregationOperator(OutputOperator):
    """Hash-based GROUP BY with streaming aggregate accumulators."""

    def __init__(self, query: StarQuery, star: StarSchema) -> None:
        if not query.is_aggregation:
            raise PipelineError("query has no aggregates; use ListingOperator")
        self.query = query
        self._key_extractors = [
            _make_extractor(ref, query, star) for ref in query.group_by
        ]
        self._select_extractors = [
            _make_extractor(ref, query, star) for ref in query.select
        ]
        self._aggregate_inputs = [
            _make_aggregate_input(spec, query, star) for spec in query.aggregates
        ]
        self._dim_names, self._row_getter_factories = (
            _compile_row_getter_factories(query, star)
        )
        self._groups: dict[tuple, list] = {}

    def consume(self, fact_tuple: FactTuple) -> None:
        key = tuple(extract(fact_tuple) for extract in self._key_extractors)
        state = self._groups.get(key)
        if state is None:
            select_values = tuple(
                extract(fact_tuple) for extract in self._select_extractors
            )
            state = [
                select_values,
                [make_accumulator(spec) for spec in self.query.aggregates],
            ]
            self._groups[key] = state
        accumulators = state[1]
        for extract_input, accumulator in zip(
            self._aggregate_inputs, accumulators
        ):
            accumulator.add(extract_input(fact_tuple))

    def consume_batch(self, fact_tuples: list[FactTuple]) -> None:
        key_extractors = self._key_extractors
        select_extractors = self._select_extractors
        aggregate_inputs = self._aggregate_inputs
        groups = self._groups
        groups_get = groups.get
        specs = self.query.aggregates
        for fact_tuple in fact_tuples:
            key = tuple(extract(fact_tuple) for extract in key_extractors)
            state = groups_get(key)
            if state is None:
                state = groups[key] = [
                    tuple(extract(fact_tuple) for extract in select_extractors),
                    [make_accumulator(spec) for spec in specs],
                ]
            for extract_input, accumulator in zip(
                aggregate_inputs, state[1]
            ):
                accumulator.add(extract_input(fact_tuple))

    def consume_rows(self, batch, row_indices: list[int]) -> None:
        getters = self._compiled_row_getters(batch)
        if getters is None:
            super().consume_rows(batch, row_indices)
            return
        key_getters, select_getters, input_getters = getters
        groups = self._groups
        groups_get = groups.get
        specs = self.query.aggregates
        for row in map(batch.rows.__getitem__, row_indices):
            key = tuple(get(row) for get in key_getters)
            state = groups_get(key)
            if state is None:
                state = groups[key] = [
                    tuple(get(row) for get in select_getters),
                    [make_accumulator(spec) for spec in specs],
                ]
            for get_input, accumulator in zip(input_getters, state[1]):
                accumulator.add(get_input(row))

    def partial_state(self) -> dict[tuple, tuple]:
        """Compact group table: key -> (select values, state tuples).

        Accumulators are flattened to their plain-value
        :meth:`~repro.query.aggregates.Accumulator.state` exports, so a
        shard ships minimal bytes back to the coordinator.
        """
        return {
            key: (
                select_values,
                tuple(acc.state() for acc in accumulators),
            )
            for key, (select_values, accumulators) in self._groups.items()
        }

    def merge_partial(self, state: dict[tuple, tuple]) -> None:
        groups = self._groups
        specs = self.query.aggregates
        for key, (select_values, states) in state.items():
            mine = groups.get(key)
            if mine is None:
                mine = groups[key] = [
                    select_values,
                    [make_accumulator(spec) for spec in specs],
                ]
            for accumulator, partial in zip(mine[1], states):
                accumulator.merge_state(partial)

    def results(self) -> list[tuple]:
        rows = [
            select_values + tuple(acc.result() for acc in accumulators)
            for select_values, accumulators in self._groups.values()
        ]
        rows.sort(key=lambda row: row[: len(self.query.select)])
        return rows

    @property
    def group_count(self) -> int:
        """Number of groups accumulated so far."""
        return len(self._groups)


class SortAggregationOperator(OutputOperator):
    """Sort-based GROUP BY: buffer (key, inputs), sort once at the end.

    The paper's alternative to hash aggregation (section 3.1).  Same
    results as :class:`AggregationOperator`; trades memory for bounded
    per-tuple work (an append), with the sort paid at finalization.
    Preferable when group counts are huge relative to memory locality,
    or when output must stream in key order anyway.
    """

    def __init__(self, query: StarQuery, star: StarSchema) -> None:
        if not query.is_aggregation:
            raise PipelineError("query has no aggregates; use ListingOperator")
        self.query = query
        self._key_extractors = [
            _make_extractor(ref, query, star) for ref in query.group_by
        ]
        self._select_extractors = [
            _make_extractor(ref, query, star) for ref in query.select
        ]
        self._aggregate_inputs = [
            _make_aggregate_input(spec, query, star) for spec in query.aggregates
        ]
        self._dim_names, self._row_getter_factories = (
            _compile_row_getter_factories(query, star)
        )
        #: buffered (group key, select values, aggregate inputs) rows
        self._buffer: list[tuple] = []

    def consume(self, fact_tuple: FactTuple) -> None:
        key = tuple(extract(fact_tuple) for extract in self._key_extractors)
        select_values = tuple(
            extract(fact_tuple) for extract in self._select_extractors
        )
        inputs = tuple(
            extract(fact_tuple) for extract in self._aggregate_inputs
        )
        self._buffer.append((key, select_values, inputs))

    def consume_batch(self, fact_tuples: list[FactTuple]) -> None:
        key_extractors = self._key_extractors
        select_extractors = self._select_extractors
        aggregate_inputs = self._aggregate_inputs
        self._buffer.extend(
            (
                tuple(extract(fact_tuple) for extract in key_extractors),
                tuple(extract(fact_tuple) for extract in select_extractors),
                tuple(extract(fact_tuple) for extract in aggregate_inputs),
            )
            for fact_tuple in fact_tuples
        )

    def consume_rows(self, batch, row_indices: list[int]) -> None:
        getters = self._compiled_row_getters(batch)
        if getters is None:
            super().consume_rows(batch, row_indices)
            return
        key_getters, select_getters, input_getters = getters
        self._buffer.extend(
            (
                tuple(get(row) for get in key_getters),
                tuple(get(row) for get in select_getters),
                tuple(get(row) for get in input_getters),
            )
            for row in map(batch.rows.__getitem__, row_indices)
        )

    def partial_state(self) -> list[tuple]:
        """The unsorted (key, select values, inputs) buffer."""
        return self._buffer

    def merge_partial(self, state: list[tuple]) -> None:
        # shard buffers concatenated in shard order reproduce the
        # serial scan-order buffer; results() sorts either way
        self._buffer.extend(state)

    def results(self) -> list[tuple]:
        # sort by key (repr-keyed to tolerate mixed None/typed keys),
        # then fold each run of equal keys through fresh accumulators
        self._buffer.sort(key=lambda entry: tuple(map(repr, entry[0])))
        rows: list[tuple] = []
        index = 0
        total = len(self._buffer)
        while index < total:
            key, select_values, _ = self._buffer[index]
            accumulators = [
                make_accumulator(spec) for spec in self.query.aggregates
            ]
            while index < total and self._buffer[index][0] == key:
                for accumulator, value in zip(
                    accumulators, self._buffer[index][2]
                ):
                    accumulator.add(value)
                index += 1
            rows.append(
                select_values + tuple(acc.result() for acc in accumulators)
            )
        rows.sort(key=lambda row: row[: len(self.query.select)])
        return rows

    @property
    def buffered_tuples(self) -> int:
        """Number of tuples buffered so far."""
        return len(self._buffer)


class ListingOperator(OutputOperator):
    """Collects projected rows for aggregate-free queries."""

    def __init__(self, query: StarQuery, star: StarSchema) -> None:
        self.query = query
        self._select_extractors = [
            _make_extractor(ref, query, star) for ref in query.select
        ]
        # the shared getter memo's triple shape, with only selects used
        dim_names: list[str] = []
        self._row_getter_factories = (
            [],
            [_make_row_getter_factory(ref, query, star, dim_names)
             for ref in query.select],
            [],
        )
        self._dim_names = tuple(dim_names)
        self._rows: list[tuple] = []

    def consume(self, fact_tuple: FactTuple) -> None:
        self._rows.append(
            tuple(extract(fact_tuple) for extract in self._select_extractors)
        )

    def consume_batch(self, fact_tuples: list[FactTuple]) -> None:
        select_extractors = self._select_extractors
        self._rows.extend(
            tuple(extract(fact_tuple) for extract in select_extractors)
            for fact_tuple in fact_tuples
        )

    def consume_rows(self, batch, row_indices: list[int]) -> None:
        getters = self._compiled_row_getters(batch)
        if getters is None:
            super().consume_rows(batch, row_indices)
            return
        select_getters = getters[1]
        self._rows.extend(
            tuple(get(row) for get in select_getters)
            for row in map(batch.rows.__getitem__, row_indices)
        )

    def partial_state(self) -> list[tuple]:
        """The projected rows collected so far."""
        return self._rows

    def merge_partial(self, state: list[tuple]) -> None:
        self._rows.extend(state)

    def results(self) -> list[tuple]:
        return sorted(self._rows)


def make_output_operator(
    query: StarQuery, star: StarSchema, mode: str = "hash"
) -> OutputOperator:
    """Create the appropriate operator for ``query``.

    Args:
        mode: 'hash' (default) or 'sort' aggregation strategy.

    Raises:
        PipelineError: on an unknown mode.
    """
    if mode not in ("hash", "sort"):
        raise PipelineError(f"unknown aggregation mode {mode!r}")
    if query.is_aggregation:
        if mode == "sort":
            return SortAggregationOperator(query, star)
        return AggregationOperator(query, star)
    return ListingOperator(query, star)
