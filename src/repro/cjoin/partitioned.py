"""CJOIN over a range-partitioned fact table (paper section 5).

The optimizer tags each query with the partitions it must scan
(derived from its fact predicate and the partitioning column); the
continuous scan then covers only the *union* of partitions needed by
the active queries, and queries terminate as soon as the scan wraps
around their start — which now happens after one pass over the union
rather than the whole table.

Correctness rests on two facts:

* a query's fact predicate rejects every tuple outside its needed
  partitions (``implied_interval`` is a conservative superset of the
  accepted values), so scanning extra partitions for other queries is
  harmless;
* each query's needed set is augmented with the partition containing
  its start position, so the scan always returns to that position and
  the standard wrap-around finalization fires.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.errors import PipelineError, StorageError
from repro.query.predicate import implied_interval
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.partition import PartitionedTable
from repro.storage.table import Table


class PartitionedContinuousScan:
    """A continuous scan over the needed-partition union.

    Presents the same interface as
    :class:`~repro.storage.scan.ContinuousScan` (``next()``,
    ``next_position``, ``tuples_returned``) over a stable global
    position space (partition offsets are frozen at construction).
    Partitions are ref-counted: a partition is scanned while at least
    one active query needs it.
    """

    def __init__(self, table: PartitionedTable, buffer_pool: BufferPool) -> None:
        self.table = table
        self.buffer_pool = buffer_pool
        self._offsets = table.partition_offsets()
        self._row_counts = table.partition_row_counts()
        self._need_counts: dict[int, int] = {}
        self._partition_index = 0  # current partition (index into table list)
        self._local_position = 0
        self._tuples_returned = 0

    # ------------------------------------------------------------------
    # Needed-set maintenance (ref-counted by the operator)
    # ------------------------------------------------------------------
    def acquire_partitions(self, partition_ids: set[int]) -> None:
        """Pin ``partition_ids`` into the scanned union."""
        for partition_id in partition_ids:
            if not 0 <= partition_id < len(self._row_counts):
                raise StorageError(f"no partition {partition_id}")
            self._need_counts[partition_id] = (
                self._need_counts.get(partition_id, 0) + 1
            )

    def release_partitions(self, partition_ids: set[int]) -> None:
        """Unpin ``partition_ids``; fully released partitions are skipped."""
        for partition_id in partition_ids:
            count = self._need_counts.get(partition_id, 0)
            if count <= 1:
                self._need_counts.pop(partition_id, None)
            else:
                self._need_counts[partition_id] = count - 1

    def needed_partitions(self) -> list[int]:
        """Currently pinned partitions, ascending."""
        return sorted(self._need_counts)

    def partition_of_position(self, position: int) -> int:
        """Return the partition id containing a global position."""
        for partition_id in range(len(self._offsets) - 1, -1, -1):
            if position >= self._offsets[partition_id]:
                if position < self._offsets[partition_id] + self._row_counts[
                    partition_id
                ]:
                    return partition_id
                break
        raise StorageError(f"position {position} outside all partitions")

    # ------------------------------------------------------------------
    # ContinuousScan interface
    # ------------------------------------------------------------------
    def _has_scannable_rows(self) -> bool:
        return any(
            self._row_counts[partition_id] > 0
            for partition_id in self._need_counts
        )

    @property
    def next_position(self) -> int:
        """Global position of the next tuple to be returned."""
        if not self._has_scannable_rows():
            return 0
        self._align()
        return self._offsets[self._partition_index] + self._local_position

    @property
    def tuples_returned(self) -> int:
        """Total tuples produced since construction."""
        return self._tuples_returned

    def next(self) -> tuple[int, tuple] | None:
        """Return the next (global position, row), or None when idle.

        Idle covers both "no pinned partitions" and "every pinned
        partition is empty".
        """
        if not self._has_scannable_rows():
            return None
        self._align()
        partition = self.table.partitions[self._partition_index]
        rows_per_page = partition.heap.rows_per_page
        page_id, slot_id = divmod(self._local_position, rows_per_page)
        page = self.buffer_pool.fetch(partition.heap, page_id)
        row = page.slot(slot_id)
        position = self._offsets[self._partition_index] + self._local_position
        self._advance()
        self._tuples_returned += 1
        return position, row

    def _align(self) -> None:
        """Move the cursor to the next pinned, non-empty partition."""
        if not self._need_counts:
            return
        for _ in range(len(self._row_counts) + 1):
            needed = self._partition_index in self._need_counts
            non_empty = self._row_counts[self._partition_index] > 0
            in_range = self._local_position < self._row_counts[
                self._partition_index
            ]
            if needed and non_empty and in_range:
                return
            self._partition_index = (
                (self._partition_index + 1) % len(self._row_counts)
            )
            self._local_position = 0
        raise PipelineError("no scannable partition despite pinned set")

    def _advance(self) -> None:
        self._local_position += 1
        if self._local_position >= self._row_counts[self._partition_index]:
            self._partition_index = (
                (self._partition_index + 1) % len(self._row_counts)
            )
            self._local_position = 0


class PartitionedCJoinOperator(CJoinOperator):
    """CJOIN with partition pruning and early query termination."""

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema,
        partitioned_fact: PartitionedTable,
        **kwargs,
    ) -> None:
        self.partitioned_fact = partitioned_fact
        super().__init__(catalog, star, **kwargs)
        # Replace the plain continuous scan with the partition-aware one
        self.scan = PartitionedContinuousScan(partitioned_fact, self.buffer_pool)
        self.preprocessor.scan = self.scan
        self._query_partitions: dict[int, set[int]] = {}
        # Finalization must release the query's pinned partitions before
        # the manager's standard cleanup runs.
        original_callback = self.manager.on_query_finished

        def on_finished(query_id: int) -> None:
            pinned = self._query_partitions.pop(query_id, None)
            if pinned is not None:
                self.scan.release_partitions(pinned)
            original_callback(query_id)

        self.distributor.on_query_finished = on_finished

    def submit(self, query: StarQuery) -> QueryHandle:
        """Admit ``query``, pinning only the partitions it needs."""
        needed = self.partitions_for(query)
        # A pin set whose partitions are all empty would never wrap the
        # scan back to the query's start.  Pin one non-empty partition
        # as a carrier; the query's fact predicate rejects its tuples,
        # so only the wrap-around (and thus termination) is affected.
        row_counts = self.partitioned_fact.partition_row_counts()
        if not any(row_counts[p] > 0 for p in needed):
            fallback = next(
                (p for p, count in enumerate(row_counts) if count > 0), None
            )
            if fallback is not None:
                needed.add(fallback)
        self.scan.acquire_partitions(needed)
        handle = super().submit(query)
        registration = handle.registration
        if registration.start_position is not None:
            start_partition = self.scan.partition_of_position(
                registration.start_position
            )
            if start_partition not in needed:
                needed.add(start_partition)
                self.scan.acquire_partitions({start_partition})
        self._query_partitions[registration.query_id] = needed
        handle.set_progress_total(
            sum(
                self.partitioned_fact.partition_row_counts()[p] for p in needed
            )
        )
        return handle

    def partitions_for(self, query: StarQuery) -> set[int]:
        """Partitions a query must scan, from its fact predicate."""
        partitioning = self.partitioned_fact.partitioning
        if query.fact_predicate is None:
            return set(range(partitioning.partition_count))
        low, high, low_inc, high_inc = implied_interval(
            query.fact_predicate, partitioning.column
        )
        return set(
            partitioning.partitions_for_interval(low, high, low_inc, high_inc)
        )


def as_catalog_table(partitioned: PartitionedTable) -> Table:
    """Materialize a partitioned table as a plain catalog table.

    The operator needs a catalog entry for the fact table (for row
    counts and schema); rows are stored in global-position order so
    both representations agree position-for-position.
    """
    table = Table(partitioned.schema, partitioned.partitions[0].heap.rows_per_page
                  if partitioned.partitions else 128)
    for partition in partitioned.partitions:
        for row in partition.heap.iter_rows():
            table.insert(row)
    return table
