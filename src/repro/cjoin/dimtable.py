"""Dimension hash tables (paper section 3.2.1).

``HD_j`` stores the *union* of the dimension tuples selected by any
active query, keyed by the dimension's primary key.  Each stored tuple
carries a bit-vector ``b_delta``; the table also keeps one complement
bitmap ``b_Dj`` — the bit-vector of any tuple *not* stored — defined
as ``b_Dj[i] = 1`` iff query ``Q_i`` does not reference this
dimension.

The paper's defining property (used by the Filtering Invariant):

    ``probe(tau)[i] = 1``  iff  ``Q_i`` references ``D_j`` and the
    joining tuple satisfies ``c_ij``, **or** ``Q_i`` does not
    reference ``D_j`` at all.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro import bitvec
from repro.catalog.schema import TableSchema
from repro.errors import PipelineError


class _DimEntry:
    """One stored dimension tuple and its query bit-vector."""

    __slots__ = ("row", "bits")

    def __init__(self, row: tuple, bits: int) -> None:
        self.row = row
        self.bits = bits


class DimensionHashTable:
    """The shared hash table for one dimension (the paper's ``HD_j``)."""

    def __init__(self, schema: TableSchema) -> None:
        if schema.primary_key is None:
            raise PipelineError(
                f"dimension {schema.name!r} must have a primary key"
            )
        self.schema = schema
        self.name = schema.name
        self._key_index = schema.column_index(schema.primary_key)
        self._entries: dict[object, _DimEntry] = {}
        #: lazily rebuilt (key -> bits, key -> row) snapshot for the
        #: batch kernels; invalidated whenever stored bits change
        self._columnar_cache: tuple[dict, dict] | None = None
        #: the paper's b_Dj: bit i set iff Q_i does NOT reference this dim
        self.complement_bitmap: int = 0

    # ------------------------------------------------------------------
    # Probing (the Filter hot path)
    # ------------------------------------------------------------------
    def probe(self, key: object) -> tuple[int, tuple | None]:
        """Return (filtering bit-vector, joined row or None) for ``key``.

        Implements section 3.2.2: a found entry contributes
        ``b_delta``; a miss contributes ``b_Dj``.
        """
        entry = self._entries.get(key)
        if entry is None:
            return self.complement_bitmap, None
        return entry.bits, entry.row

    def entries_view(self) -> dict:
        """The live key -> entry mapping, for the batched probe loop.

        The batch fast path (DESIGN.md section 5) probes one key per
        loop iteration; going through :meth:`probe` would add a method
        call and a result-tuple allocation per row.  Callers treat the
        view as read-only; entries expose ``.bits`` and ``.row``.
        """
        return self._entries

    def columnar_view(self) -> tuple[dict, dict]:
        """``(key -> bits, key -> row)`` snapshot dicts for the kernels.

        Plain dicts let the batch kernels drive the whole probe/AND
        pass through C-level ``map`` calls (``dict.get`` with the
        complement bitmap as the miss default) with no per-row entry
        attribute access.  The snapshot is rebuilt lazily after a
        registration change and shared by every batch in between —
        registration is per *query*, so the rebuild amortizes over the
        hundreds of batches scanned while the query mix is stable.
        """
        cache = self._columnar_cache
        if cache is None:
            entries = self._entries
            cache = self._columnar_cache = (
                {key: entry.bits for key, entry in entries.items()},
                {key: entry.row for key, entry in entries.items()},
            )
        return cache

    # ------------------------------------------------------------------
    # Registration bookkeeping (Algorithms 1 and 2)
    # ------------------------------------------------------------------
    def mark_query_not_referencing(self, query_id: int) -> None:
        """Record that an admitted query does not reference this dimension.

        (Algorithm 1 line 10: ``b_Dj[n] = 1``.)  Every stored tuple
        must also show bit n, since the query implicitly selects all
        dimension tuples.
        """
        bit = bitvec.bit_for_query(query_id)
        self.complement_bitmap |= bit
        self._columnar_cache = None
        for entry in self._entries.values():
            entry.bits |= bit

    def mark_query_referencing(self, query_id: int) -> None:
        """Record that an admitted query references this dimension.

        (Algorithm 1 line 8: ``b_Dj[n] = 0``.)  Selected tuples gain
        bit n individually via :meth:`register_selected_rows`.
        """
        self.complement_bitmap = bitvec.clear_bit(self.complement_bitmap, query_id)

    def register_selected_rows(self, query_id: int, rows: Iterable[tuple]) -> int:
        """Insert/update the rows selected by query ``query_id``.

        (Algorithm 1 lines 11-16.)  A row absent from the table is
        inserted with bits initialized to ``b_Dj`` before gaining bit
        n, exactly as the paper specifies.  Returns the number of rows
        registered.
        """
        count = 0
        self._columnar_cache = None
        bit = bitvec.bit_for_query(query_id)
        key_index = self._key_index
        entries = self._entries
        entries_get = entries.get
        complement = self.complement_bitmap
        for row in rows:
            key = row[key_index]
            entry = entries_get(key)
            if entry is None:
                entry = entries[key] = _DimEntry(row, complement)
            entry.bits |= bit
            count += 1
        return count

    def unregister_query(self, query_id: int) -> None:
        """Remove all traces of a finished query (Algorithm 2).

        The paper's Algorithm 2 sets ``b_Dj[n] = 1`` and clears entry
        bits only for referenced dimensions, leaving the neutral
        all-ones state for id ``n``.  That makes id *reuse* subtle:
        entries inserted while the id is parked would inherit a stale
        1-bit.  We instead maintain the invariant that **unallocated
        ids carry bit 0 everywhere** (complement bitmap and every
        entry); Algorithm 1 then re-establishes the correct bits from
        a clean slate on reuse.  Entries whose bit-vector drops to
        zero are garbage-collected (section 3.3.2).
        """
        mask = ~bitvec.bit_for_query(query_id)
        self.complement_bitmap &= mask
        self._columnar_cache = None
        dead_keys = []
        for key, entry in self._entries.items():
            entry.bits = bits = entry.bits & mask
            if not bits:
                dead_keys.append(key)
        for key in dead_keys:
            del self._entries[key]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """Number of stored dimension tuples."""
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no tuples remain (filter can be removed)."""
        return not self._entries

    def bits_for_key(self, key: object) -> int:
        """The stored bit-vector for ``key`` (b_Dj if absent) — test hook."""
        entry = self._entries.get(key)
        return self.complement_bitmap if entry is None else entry.bits

    def __repr__(self) -> str:
        return (
            f"DimensionHashTable({self.name!r}, tuples={self.tuple_count}, "
            f"bDj={bin(self.complement_bitmap)})"
        )
