"""Whole-batch kernels for the vectorized hot path (DESIGN.md section 14).

The PR-1 batched pipeline amortized per-tuple *dispatch* — one Python
call per Filter per batch — but its probe/AND/route loops still ran
one bytecode iteration per fact row.  This module re-expresses those
loops as batch kernels over whole columns:

* **adaptive probe** — against a dimension smaller than a quarter of
  the batch's live rows, each *distinct* foreign-key value hits the
  hash table once and the per-row filtering bit-vector column is
  rebuilt with C-level ``map`` passes over the cached probe results
  (the dedup strategy); against larger dimensions — where a batch's
  keys are mostly distinct and dedup would only add a second per-row
  lookup pass — mapped ``dict.get`` lookups with the complement
  bitmap as the miss default probe every live row and one
  element-wise ``map(and_, ...)`` produces the AND column, all at C
  level (the direct strategy);
* **bulk AND** — the surviving bit-vector column is produced by one
  element-wise AND pass instead of per-row read/AND/store bytecode;
* **survivor compaction** — the live list shrinks via comprehension
  (or ``numpy.nonzero``) instead of per-row ``list.append`` calls,
  with a C-level ``0 not in column`` fast path for the common
  nothing-dropped batch;
* **group-by-bit-vector routing** — the Distributor groups surviving
  rows by identical ``b_tau`` so each output operator receives
  columnar row slices (see ``OutputOperator.consume_rows``) instead of
  a materialized :class:`~repro.cjoin.tuples.FactTuple` per row.

Two interchangeable implementations sit behind one feature probe:

* :class:`PythonKernel` — always available; pure ``array``/``map``/
  comprehension passes, no third-party dependency;
* :class:`NumpyKernel` — the optional opt-in accelerator
  (``kernel='numpy'``), usable when numpy is importable and the
  batch's bit-vectors fit in 64 bits (up to 64 concurrent queries —
  the paper's whole operating range).  Batches that exceed 64 query
  bits, or carry non-integer join keys, fall back to the pure-Python
  passes *per call*, so correctness never depends on the accelerator.

Selection is driven by the ``kernel`` knob on
:class:`~repro.cjoin.executor.ExecutorConfig` /
:class:`~repro.tuning.TuningConfig` (modes in
:data:`repro.tuning.KERNEL_MODES`): ``'auto'`` picks the pure-Python
kernels — measured fastest on this workload shape, since the hot
passes are already C-level ``map`` traffic and numpy's per-batch
array construction costs more than its vector AND saves at batch
granularity (see EXPERIMENTS.md section 11) — ``'python'`` forces
them explicitly, ``'numpy'`` opts into the accelerator, and ``'off'``
keeps the PR-1 per-row loops (the reference the per-tuple-cost
microbench measures against).  Setting the ``REPRO_NO_NUMPY``
environment variable hides numpy from the probe — the no-numpy CI
leg and the forced-fallback test fixture both use it.

Semantics are identical across all modes for every workload; the
equivalence suite (tests/test_kernel_equivalence.py) enforces this
property-style, and stats stay comparable because kernels keep the
*logical* per-row probe/skip counts of the reference loops while also
reporting the deduplicated hash-table traffic
(``FilterStats.distinct_probes``).
"""

from __future__ import annotations

import os
from collections import deque
from itertools import compress, repeat
from operator import and_ as _and, itemgetter, not_ as _not

from repro import bitvec
from repro.errors import ConfigError
from repro.tuning import KERNEL_MODES

#: Run a C-level iterator to exhaustion without building a list —
#: drives ``map(list.__setitem__, ...)`` scatter passes.
_drain = deque(maxlen=0).extend


def _probe_numpy():
    """Import numpy unless the environment hides it.

    ``REPRO_NO_NUMPY`` (any non-empty value) force-disables the
    accelerator even when numpy is installed — the switch behind the
    no-numpy CI leg and the fallback test fixture.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_numpy = _probe_numpy()

#: True when the optional numpy accelerator is importable and enabled.
HAS_NUMPY = _numpy is not None

#: Bit-vectors at or under this width ride the uint64 numpy fast path.
NUMPY_MAX_QUERY_BITS = 64

_MASK64 = (1 << 64) - 1


def group_rows_by_bits(bitvectors, live) -> dict[int, list[int]]:
    """Group live row indices by identical bit-vector.

    Returns ``{b_tau: [row_index, ...]}`` in first-occurrence order
    with rows in scan order inside each group — the exact routing
    order of the per-row reference path, so operator consumption order
    (and therefore result rows) cannot drift.
    """
    groups: dict[int, list[int]] = {}
    for row_index in live:
        bits = bitvectors[row_index]
        group = groups.get(bits)
        if group is None:
            groups[bits] = [row_index]
        else:
            group.append(row_index)
    return groups


class PythonKernel:
    """Pure-Python batch kernels: C-level map/comprehension passes."""

    name = "python"

    # ------------------------------------------------------------------
    # Filter kernel
    # ------------------------------------------------------------------
    #: Dedup pays only when distinct keys are well under the live row
    #: count (it trades the per-row probe map for a dict build plus a
    #: second per-row lookup pass); the dimension hash table's
    #: cardinality is the free proxy for that: dedup when
    #: ``tuple_count * DEDUP_FANOUT <= live rows``.
    DEDUP_FANOUT = 4

    #: Partial batches that are still mostly live run the probe/AND
    #: over the *full* columns (dead rows carry bit-vector 0, and
    #: ``0 & x == 0`` keeps them dead), trading a few dead-row lookups
    #: for slice-level reads and write-backs with no gather/scatter;
    #: sparse batches gather the live rows instead.  The dense pass
    #: wins while ``live * DENSE_CUTOFF >= total``.
    DENSE_CUTOFF = 2

    def filter_batch(
        self,
        batch,
        fk_index: int,
        table,
        probe_skip: bool,
        name: str,
    ) -> tuple[int, int, int]:
        """Probe/AND/compact one batch against one dimension table.

        Mutates ``batch`` exactly like the reference per-row loop
        (bit-vector column updated, dropped rows cleared from the
        alive mask, joining dimension rows attached) and returns
        ``(probes, skips, distinct_probes)`` with the reference loop's
        *logical* counting: every live row is either a probe or a
        section 3.2.2 skip, while ``distinct_probes`` reports the
        hash-table lookups this kernel actually paid.

        Every pass is C-level: column layout by liveness (dense
        slice-in/slice-out vs gathered, see :data:`DENSE_CUTOFF`),
        probe strategy by dimension cardinality (direct mapped lookups
        vs distinct-key dedup, see :data:`DEDUP_FANOUT`), and
        compaction from whichever side of the survivor/dropped split
        is smaller.
        """
        live = batch.live
        bitvectors = batch.bitvectors
        complement = table.complement_bitmap
        count = len(live)
        total = len(bitvectors)
        fully_live = count == total
        dense = fully_live or count * self.DENSE_CUTOFF >= total
        if dense:
            # cached whole-column extraction (doubles as the fact value
            # column for the Distributor's columnar consumers)
            keys = batch.key_column(fk_index)
            in_bits = bitvectors
        else:
            # gather only the live rows — full-column passes would
            # cost O(batch) on a batch with a handful of survivors
            keys = list(
                map(itemgetter(fk_index), map(batch.rows.__getitem__, live))
            )
            in_bits = list(map(bitvectors.__getitem__, live))
        # per-row skips are only observable when some active query does
        # not reference this dimension; the reference loop counts them
        # only on partially-live batches (fully-live batches drive the
        # loop straight from the columns), and ANDing a skippable row is
        # a no-op by the table invariants, so counting is all that's
        # left — three C-level passes (AND, zero-test, popcount-style
        # sum) over the live bit-vectors
        skips = 0
        if probe_skip and complement != 0 and not fully_live:
            not_and = (~complement).__and__
            live_bits = (
                map(bitvectors.__getitem__, live) if dense else in_bits
            )
            skips = sum(map(_not, map(not_and, live_bits)))
        bits_by_key, rows_by_key = table.columnar_view()
        if rows_by_key:
            batch.attach_dim_lookup(name, fk_index, rows_by_key)
        new_bits, distinct = self._and_pass(
            in_bits, keys, bits_by_key, complement,
            table.tuple_count * self.DEDUP_FANOUT <= count,
        )
        self._install(batch, live, new_bits, dense, fully_live)
        return count - skips, skips, distinct

    def _and_pass(self, in_bits, keys, bits_by_key, complement, dedup):
        """Produce the post-probe AND column; return (column, probes).

        * **direct** (``dedup`` False): mapped ``dict.get`` lookups
          with the complement bitmap as the miss default, then one
          element-wise AND — two C-level passes, no per-row bytecode;
        * **dedup** (``dedup`` True — the dimension is much smaller
          than the batch): ``dict.fromkeys`` deduplicates the key
          column at C speed, each *distinct* key is probed once (the
          per-batch analogue of the paper's one-probe-serves-all-
          queries sharing, applied across rows), and the column is
          rebuilt through the probe map.
        """
        if dedup:
            bits_get = bits_by_key.get
            bits_of = {
                key: bits_get(key, complement)
                for key in dict.fromkeys(keys)
            }
            return bitvec.bulk_and_lookup(in_bits, keys, bits_of), len(
                bits_of
            )
        return list(map(
            _and,
            in_bits,
            map(bits_by_key.get, keys, repeat(complement)),
        )), len(keys)

    @staticmethod
    def _install(batch, live, new_bits, dense, fully_live) -> None:
        """Write the AND column back and compact the live list.

        Write-back is a slice assignment on the dense path and a
        C-level ``map(list.__setitem__, ...)`` scatter on the gathered
        path.  Compaction rebuilds the alive mask from whichever side
        of the survivor/dropped split is smaller.
        """
        bitvectors = batch.bitvectors
        if dense:
            bitvectors[:] = new_bits
            if fully_live:
                if 0 not in new_bits:  # C scan; common nothing-dropped
                    return
                flags = new_bits
            else:
                # dead rows are 0 in the full column, so the zero scan
                # must look only at the live rows
                flags = list(map(new_bits.__getitem__, live))
                if 0 not in flags:
                    return
        else:
            _drain(map(bitvectors.__setitem__, live, new_bits))
            if 0 not in new_bits:
                return
            flags = new_bits
        survivors = list(compress(live, flags))
        if 2 * len(survivors) <= len(live):
            batch.replace_live(survivors)
        else:
            dropped = list(compress(live, map(_not, flags)))
            batch.drop_rows(bitvec.pack_positions(dropped), survivors)

    # ------------------------------------------------------------------
    # Routing kernel
    # ------------------------------------------------------------------
    group_rows_by_bits = staticmethod(group_rows_by_bits)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NumpyKernel(PythonKernel):
    """Numpy-accelerated kernels over uint64 bit-vector columns.

    Only the dedup AND pass (a distinct-key lookup table applied with
    one vectorized AND) and routing group discovery move to numpy.
    The direct probe strategy is inherited unchanged (it is already
    all C-level dict traffic numpy cannot help with), and any batch
    whose bit-vectors exceed 64 bits or whose keys are not machine
    integers transparently uses the inherited pure-Python pass for
    that call.
    """

    name = "numpy"

    def __init__(self) -> None:
        if _numpy is None:  # pragma: no cover - guarded by resolve()
            raise ConfigError("numpy kernel requested but numpy is disabled")
        self._np = _numpy

    def _and_pass(self, in_bits, keys, bits_by_key, complement, dedup):
        if not dedup:
            # the direct pass is already pure C dict traffic that
            # numpy cannot improve on
            return super()._and_pass(
                in_bits, keys, bits_by_key, complement, dedup
            )
        np = self._np
        count = len(in_bits)
        try:
            bits_arr = np.fromiter(in_bits, dtype=np.uint64, count=count)
            keys_arr = np.fromiter(keys, dtype=np.int64, count=count)
        except (TypeError, ValueError, OverflowError):
            # wide bit-vectors (> 64 queries) or non-integer join keys:
            # the pure-Python pass handles this batch
            return super()._and_pass(
                in_bits, keys, bits_by_key, complement, dedup
            )
        distinct, inverse = np.unique(keys_arr, return_inverse=True)
        bits_get = bits_by_key.get
        # masking high bits is safe: they can only be set for queries
        # admitted after this batch entered the pipeline, whose row
        # bits are still 0, so the AND zeroes them either way
        masked_complement = complement & _MASK64
        lut = np.fromiter(
            (
                bits_get(key, masked_complement) & _MASK64
                for key in distinct.tolist()
            ),
            dtype=np.uint64,
            count=len(distinct),
        )
        return (bits_arr & lut[inverse]).tolist(), len(distinct)

    def group_rows_by_bits(self, bitvectors, live):
        np = self._np
        count = len(live)
        if count <= 1:
            return group_rows_by_bits(bitvectors, live)
        try:
            bits_arr = np.fromiter(
                (bitvectors[r] for r in live), dtype=np.uint64, count=count
            )
        except (TypeError, ValueError, OverflowError):
            return group_rows_by_bits(bitvectors, live)
        distinct, inverse, counts = np.unique(
            bits_arr, return_inverse=True, return_counts=True
        )
        if len(distinct) == count:
            # all-distinct: grouping buys nothing, skip the sort
            return {bitvectors[r]: [r] for r in live}
        live_arr = np.fromiter(live, dtype=np.int64, count=count)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(counts)[:-1]
        chunks = np.split(live_arr[order], boundaries)
        # re-establish first-occurrence group order (np.unique sorts by
        # value) so routing order matches the reference loop exactly
        grouped = sorted(
            (rows[0], bits, rows.tolist())
            for bits, rows in zip(distinct.tolist(), chunks)
        )
        return {bits: rows for _, bits, rows in grouped}


_PYTHON_KERNEL = PythonKernel()
_NUMPY_KERNEL = NumpyKernel() if HAS_NUMPY else None


def resolve(mode: str) -> PythonKernel | None:
    """Map a ``kernel=`` mode string to a kernel instance (or None).

    ``'off'`` returns None — callers keep the reference per-row loops.
    ``'auto'`` picks the pure-Python kernels: they measure fastest on
    the headline workload shape (benchmarks/bench_kernel_cost.py),
    because the per-batch cost of building numpy arrays exceeds what
    the vectorized AND saves at batch granularity.  The numpy kernels
    stay available as an explicit opt-in for experimentation.

    Raises:
        ConfigError: on an unknown mode, or ``'numpy'`` when numpy is
            unavailable (or hidden by ``REPRO_NO_NUMPY``).
    """
    if mode not in KERNEL_MODES:
        raise ConfigError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    if mode == "off":
        return None
    if mode == "python":
        return _PYTHON_KERNEL
    if mode == "numpy":
        if _NUMPY_KERNEL is None:
            raise ConfigError(
                "kernel='numpy' requires numpy; install it or use "
                "kernel='auto'/'python' (the pure-Python kernels)"
            )
        return _NUMPY_KERNEL
    return _PYTHON_KERNEL
