"""On-line optimization of the Filter order (paper section 3.4).

The Filter order determines the expected number of probes per fact
tuple; since every Filter costs one probe + one AND, minimizing cost
means dropping tuples as early as possible.  The paper maps this to
the adaptive ordering of pipelined stream filters and adopts Babu et
al. [5] (A-Greedy).  We provide:

* :class:`DropRatePolicy` — orders Filters by observed *unconditional*
  drop rate (descending).  Cheap; optimal when filter drops are
  independent.
* :class:`AGreedyPolicy` — maintains a sliding window of *drop
  profiles* (for a sampled tuple, which filters would drop it) and
  greedily picks, at each rank, the filter that drops the most
  profiles *surviving the chosen prefix* — the conditional-selectivity
  ordering of A-Greedy.
* :class:`FixedOrderPolicy` — keeps admission order (the ablation
  baseline).

Profiles are gathered by the executor, which periodically evaluates
every filter on a sampled tuple via ``Filter.would_drop`` (the paper's
profiling of tuples, independent of pipeline order).
"""

from __future__ import annotations

from collections import deque

from repro.cjoin.filter import Filter
from repro.cjoin.tuples import FactTuple

#: Default number of sampled drop-profiles retained.
DEFAULT_PROFILE_WINDOW = 512


class OrderingPolicy:
    """Interface for filter-ordering policies."""

    #: whether the executor should collect drop profiles for this policy
    wants_profiles = False

    def record_profile(self, filters: list[Filter], fact_tuple: FactTuple) -> None:
        """Observe a sampled tuple (only when ``wants_profiles``)."""

    def recommend(self, filters: list[Filter]) -> list[Filter]:
        """Return the recommended filter order (a permutation)."""
        raise NotImplementedError

    def forget(self, filter_name: str) -> None:
        """Drop state tied to a removed filter."""


class FixedOrderPolicy(OrderingPolicy):
    """No reordering: filters stay in admission order."""

    def recommend(self, filters: list[Filter]) -> list[Filter]:
        return list(filters)


class DropRatePolicy(OrderingPolicy):
    """Most-selective-first ordering from per-filter drop counters.

    Ignores correlations between filters; equivalent to ranking by
    unconditional selectivity, which is the classical independent-
    predicates ordering (all CJOIN filters have equal unit cost).
    """

    def recommend(self, filters: list[Filter]) -> list[Filter]:
        return sorted(filters, key=lambda f: f.stats.drop_rate, reverse=True)


class AGreedyPolicy(OrderingPolicy):
    """Profile-driven conditional ordering (Babu et al. [5]).

    Keeps a window of boolean drop-profiles.  ``recommend`` runs the
    greedy selection: rank 1 goes to the filter dropping the most
    profiles; rank 2 to the filter dropping the most of the *remaining*
    (not yet dropped) profiles; and so on.  This matches A-Greedy's
    matrix-view invariant and adapts to correlated predicates, which
    pure drop-rate ranking cannot.
    """

    wants_profiles = True

    def __init__(self, window: int = DEFAULT_PROFILE_WINDOW) -> None:
        self.window = window
        #: each profile maps filter name -> would-drop boolean
        self._profiles: deque[dict[str, bool]] = deque(maxlen=window)

    def record_profile(self, filters: list[Filter], fact_tuple: FactTuple) -> None:
        self._profiles.append(
            {f.name: f.would_drop(fact_tuple) for f in filters}
        )

    def recommend(self, filters: list[Filter]) -> list[Filter]:
        if not self._profiles:
            return list(filters)
        remaining = list(filters)
        surviving = list(self._profiles)
        order: list[Filter] = []
        while remaining:
            best = None
            best_drops = -1
            for candidate in remaining:
                drops = sum(
                    1
                    for profile in surviving
                    if profile.get(candidate.name, False)
                )
                if drops > best_drops:
                    best = candidate
                    best_drops = drops
            order.append(best)
            remaining.remove(best)
            surviving = [
                profile
                for profile in surviving
                if not profile.get(best.name, False)
            ]
        return order

    def forget(self, filter_name: str) -> None:
        for profile in self._profiles:
            profile.pop(filter_name, None)

    @property
    def profile_count(self) -> int:
        """Number of profiles currently in the window."""
        return len(self._profiles)
