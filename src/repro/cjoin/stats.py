"""Run-time statistics for the CJOIN pipeline.

Two consumers:

* the Pipeline Manager's on-line optimizer, which orders Filters by
  their *observed* drop rates (section 3.4);
* tests and micro-benchmarks, which assert structural properties —
  e.g. at most K probes per fact tuple regardless of the number of
  concurrent queries (section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FilterStats:
    """Counters for one Filter, reset on each re-optimization window."""

    tuples_in: int = 0
    tuples_dropped: int = 0
    probes: int = 0
    probe_skips: int = 0

    @property
    def pass_rate(self) -> float:
        """Fraction of input tuples that survived (1.0 when idle)."""
        if self.tuples_in == 0:
            return 1.0
        return 1.0 - (self.tuples_dropped / self.tuples_in)

    @property
    def drop_rate(self) -> float:
        """Fraction of input tuples dropped."""
        if self.tuples_in == 0:
            return 0.0
        return self.tuples_dropped / self.tuples_in

    def reset(self) -> None:
        """Zero all counters (start of a new observation window)."""
        self.tuples_in = 0
        self.tuples_dropped = 0
        self.probes = 0
        self.probe_skips = 0


@dataclass
class PipelineStats:
    """Whole-pipeline counters since operator construction."""

    tuples_scanned: int = 0
    tuples_preprocessor_dropped: int = 0
    tuples_distributed: int = 0
    control_tuples: int = 0
    probes_total: int = 0
    probe_skips_total: int = 0
    queries_admitted: int = 0
    queries_completed: int = 0
    reoptimizations: int = 0
    filter_orders: list[tuple[str, ...]] = field(default_factory=list)

    def record_order(self, order: tuple[str, ...]) -> None:
        """Log a (re)ordering of the filter sequence."""
        if not self.filter_orders or self.filter_orders[-1] != order:
            self.filter_orders.append(order)

    @property
    def probes_per_tuple(self) -> float:
        """Average dimension probes per scanned fact tuple."""
        if self.tuples_scanned == 0:
            return 0.0
        return self.probes_total / self.tuples_scanned
