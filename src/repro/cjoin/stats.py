"""Run-time statistics for the CJOIN pipeline.

Three consumers:

* the Pipeline Manager's on-line optimizer, which orders Filters by
  their *observed* drop rates (section 3.4);
* tests and micro-benchmarks, which assert structural properties —
  e.g. at most K probes per fact tuple regardless of the number of
  concurrent queries (section 3.2.3);
* the always-on service layer (DESIGN.md section 9), which reports
  per-query latency/predictability telemetry: admission wait, scan
  cycles to completion, and end-to-end response time, summarized as
  p50/p95/p99 percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty).

    ``fraction`` is in (0, 1]; e.g. 0.95 for p95.  Nearest-rank keeps
    the result an actually-observed latency, which is what open-loop
    benchmark reports conventionally quote.
    """
    if not values:
        return 0.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(rank, 1) - 1]


@dataclass(frozen=True)
class QueryLatencyRecord:
    """Per-query latency breakdown, recorded at finalization cleanup.

    The three timings decompose the paper's "predictable response
    time" claim: a query waits for admission (bounded by the service's
    ``max_in_flight``), then rides the continuous scan for about one
    cycle regardless of concurrency, so end-to-end latency stays flat
    as load grows.
    """

    query_id: int
    label: str | None
    #: seconds from handle creation (submission) to pipeline admission
    wait_seconds: float
    #: pipeline scan cycles elapsed while the query was registered
    #: (tuples scanned during its lifetime / fact-table rows; ~1.0 for
    #: a query that completes after one wrap of the continuous scan)
    scan_cycles: float
    #: seconds from submission to completion (end-to-end latency)
    latency_seconds: float
    #: queries already registered when this one was admitted; > 0
    #: means the admission was mid-scan, not at a drain boundary
    admitted_with_in_flight: int
    #: continuous-scan position the query started at
    scan_position_at_admission: int
    #: which submission route completed the query: 'service' (the
    #: always-on CJOIN operator), 'process' (sharded drain), or
    #: 'baseline' (query-at-a-time engine) — matching Submission.route,
    #: so the submission log and latency records join on one vocabulary
    #: and latency_summary() covers the whole warehouse (DESIGN.md
    #: section 10)
    route: str = "service"


@dataclass
class FilterStats:
    """Counters for one Filter, reset on each re-optimization window."""

    tuples_in: int = 0
    tuples_dropped: int = 0
    probes: int = 0
    probe_skips: int = 0
    #: hash-table lookups the batch kernels actually paid (one per
    #: *distinct* key per batch); ``probes`` stays the logical per-row
    #: count so drop rates and probes_per_tuple are kernel-independent
    distinct_probes: int = 0

    @property
    def pass_rate(self) -> float:
        """Fraction of input tuples that survived (1.0 when idle)."""
        if self.tuples_in == 0:
            return 1.0
        return 1.0 - (self.tuples_dropped / self.tuples_in)

    @property
    def drop_rate(self) -> float:
        """Fraction of input tuples dropped."""
        if self.tuples_in == 0:
            return 0.0
        return self.tuples_dropped / self.tuples_in

    def reset(self) -> None:
        """Zero all counters (start of a new observation window)."""
        self.tuples_in = 0
        self.tuples_dropped = 0
        self.probes = 0
        self.probe_skips = 0
        self.distinct_probes = 0


@dataclass
class PipelineStats:
    """Whole-pipeline counters since operator construction."""

    tuples_scanned: int = 0
    tuples_preprocessor_dropped: int = 0
    tuples_distributed: int = 0
    control_tuples: int = 0
    probes_total: int = 0
    probe_skips_total: int = 0
    queries_admitted: int = 0
    queries_completed: int = 0
    #: queries deregistered early by cancel() (DESIGN.md section 10)
    queries_cancelled: int = 0
    reoptimizations: int = 0
    filter_orders: list[tuple[str, ...]] = field(default_factory=list)
    #: one QueryLatencyRecord per finalized query, in completion order
    latency_records: list[QueryLatencyRecord] = field(default_factory=list)

    def record_order(self, order: tuple[str, ...]) -> None:
        """Log a (re)ordering of the filter sequence."""
        if not self.filter_orders or self.filter_orders[-1] != order:
            self.filter_orders.append(order)

    def record_latency(self, record: QueryLatencyRecord) -> None:
        """Log one finalized query's latency breakdown."""
        self.latency_records.append(record)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 over the recorded per-query latencies.

        Returns a dict with ``count``, end-to-end percentiles
        (``p50``/``p95``/``p99``), admission-wait percentiles
        (``wait_p50``/``wait_p95``/``wait_p99``), and the mean scan
        cycles to completion (``mean_scan_cycles``); zeros when no
        query has finished yet.
        """
        latencies = [r.latency_seconds for r in self.latency_records]
        waits = [r.wait_seconds for r in self.latency_records]
        cycles = [r.scan_cycles for r in self.latency_records]
        return {
            "count": float(len(latencies)),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "wait_p50": percentile(waits, 0.50),
            "wait_p95": percentile(waits, 0.95),
            "wait_p99": percentile(waits, 0.99),
            "mean_scan_cycles": (
                sum(cycles) / len(cycles) if cycles else 0.0
            ),
        }

    @property
    def probes_per_tuple(self) -> float:
        """Average dimension probes per scanned fact tuple."""
        if self.tuples_scanned == 0:
            return 0.0
        return self.probes_total / self.tuples_scanned
