"""Mixed query/update workloads under snapshot isolation

(paper section 3.5, summarized in PAPER.md section 3).

Two adaptations, mirroring the paper's two cases:

1. **Virtual predicate** (preferred): when the continuous scan exposes
   multi-version metadata, one CJOIN operator serves all snapshots —
   the Preprocessor evaluates snapshot visibility per query.  This is
   built into :class:`~repro.cjoin.operator.CJoinOperator` via its
   ``versioned_fact`` argument; queries carry ``snapshot_id``.

2. **Operator per snapshot** (this module): when version metadata is
   unavailable, :class:`SnapshotPartitionedCJoin` maintains one CJOIN
   operator per referenced snapshot and routes each query to its
   snapshot's operator.  Work sharing then happens only among queries
   of the same snapshot — the degradation the paper notes.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.errors import SnapshotError
from repro.query.star import StarQuery


class SnapshotPartitionedCJoin:
    """Routes queries to one CJOIN operator per snapshot id.

    Args:
        catalog_for_snapshot: builds (or returns) a catalog whose fact
            table materializes the requested snapshot — the stand-in
            for a storage engine whose scan serves one snapshot at a
            time.
        star: the star schema shared by all snapshots.
    """

    def __init__(
        self,
        catalog_for_snapshot: Callable[[int], Catalog],
        star: StarSchema,
        max_concurrent: int = 256,
    ) -> None:
        self._catalog_for_snapshot = catalog_for_snapshot
        self._star = star
        self._max_concurrent = max_concurrent
        self._operators: dict[int, CJoinOperator] = {}

    def operator_for(self, snapshot_id: int) -> CJoinOperator:
        """Return (creating on demand) the operator for a snapshot."""
        operator = self._operators.get(snapshot_id)
        if operator is None:
            catalog = self._catalog_for_snapshot(snapshot_id)
            operator = CJoinOperator(
                catalog, self._star, max_concurrent=self._max_concurrent
            )
            self._operators[snapshot_id] = operator
        return operator

    def submit(self, query: StarQuery) -> QueryHandle:
        """Route ``query`` to its snapshot's operator.

        Raises:
            SnapshotError: if the query carries no snapshot id.
        """
        if query.snapshot_id is None:
            raise SnapshotError(
                "snapshot-partitioned CJOIN requires queries tagged with "
                "a snapshot id"
            )
        return self.operator_for(query.snapshot_id).submit(query)

    def run_until_drained(self) -> None:
        """Drive every snapshot's operator to completion."""
        for operator in self._operators.values():
            operator.run_until_drained()

    @property
    def operator_count(self) -> int:
        """Number of distinct snapshot operators created."""
        return len(self._operators)

    def sharing_degree(self) -> dict[int, int]:
        """Active query count per snapshot (diagnostic)."""
        return {
            snapshot_id: operator.active_query_count
            for snapshot_id, operator in self._operators.items()
        }
