"""The CJOIN operator (paper section 3): a single always-on pipeline

evaluating all concurrent star queries over one continuous fact scan.

Public entry point: :class:`~repro.cjoin.operator.CJoinOperator`.

    operator = CJoinOperator(catalog, star_schema)
    handle = operator.submit(query)
    operator.run_until_drained()
    print(handle.results())

Components mirror the paper's Figure 1: Preprocessor -> Filters ->
Distributor, orchestrated by a Pipeline Manager that admits/finalizes
queries (Algorithms 1 and 2) and re-optimizes the filter order on line.
"""

from repro.cjoin.batch import FactBatch
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.cjoin.executor import ExecutorConfig
from repro.cjoin.galaxy import GalaxyJoinQuery, evaluate_galaxy_join
from repro.cjoin.parallel import execute_process_parallel
from repro.cjoin.snapshots import SnapshotPartitionedCJoin

__all__ = [
    "CJoinOperator",
    "ExecutorConfig",
    "FactBatch",
    "GalaxyJoinQuery",
    "QueryHandle",
    "SnapshotPartitionedCJoin",
    "evaluate_galaxy_join",
    "execute_process_parallel",
]
