"""Process-parallel sharded CJOIN drain (DESIGN.md section 8).

The paper scales CJOIN by mapping pipeline components onto cores
(section 4); under CPython's GIL that mapping is architecture-only
(see :mod:`repro.cjoin.executor`).  The one axis of real hardware
parallelism open to a pure-Python reproduction is *data parallelism*:
shard the fact table into contiguous segments, drain the full query
set over every shard in its own process, and merge the per-shard
aggregation states — the same decomposition HoneyComb-style systems
use to scale shared joins on multicores, and the one the paper's
section 5 partitioning already sets up.

Protocol (coordinator side):

1. plan ``workers`` contiguous ``[start, end)`` spans of the fact
   table in scan order (:func:`repro.storage.partition.contiguous_spans`);
2. hand every worker its span plus a dimension snapshot and the FULL
   active query set; each worker rebuilds a shard-local catalog and
   runs the PR-1 batched pipeline (admission, filters, distributor)
   to completion over its shard;
3. instead of finalized rows, each worker exports every query's
   *un-finalized* operator state (mergeable accumulators; see
   :mod:`repro.query.aggregates`) through the Distributor's
   ``partial_sink``;
4. the coordinator folds shard states into a fresh output operator
   per query — in shard order, which is scan order — and finalizes
   once, producing results identical to the serial batched drain.

Transports:

* ``'fork'`` (default where available) — workers inherit the parent's
  catalog via copy-on-write fork memory, so no fact rows are pickled;
  only spans go in and partial states come back;
* ``'shm'`` (default where fork is not) — the fact table is laid out
  once as typed shared-memory columns (:mod:`repro.storage.shm`,
  DESIGN.md section 14) and the published segment is cached per fact
  table, so repeat drains skip the encode; spawn workers attach the
  segment read-only and decode only their shard slice, so fact rows
  never cross a pipe even without fork;
* ``'pickle'`` — spawn-safe: explicit picklable shard tasks carrying
  the row snapshots (portable, slower; kept as the reference the
  shared-memory transport is benchmarked against);
* ``'inprocess'`` — the same shard/merge protocol on the calling
  thread; used for ``workers=1``, as the graceful fallback for
  unpicklable workloads or pool failures, and for deterministic
  testing of the merge path.

Semantics intentionally relaxed relative to the always-on serial
operator (documented in DESIGN.md section 8): queries are admitted at
shard boundaries only (mid-scan admission is barrier'd — every query
in a drain sees every shard in full), and MVCC snapshots are not
consulted (matching the serial path when no versioned fact table is
attached).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import sys
import threading
import weakref
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.aggregation import make_output_operator
from repro.cjoin.executor import DEFAULT_BATCH_SIZE, ExecutorConfig
from repro.errors import ConfigError
from repro.query.star import StarQuery
from repro.storage.partition import contiguous_spans
from repro.storage.shm import (
    ShmLayout,
    attach_fact_slice,
    publish_fact_rows,
)
from repro.storage.table import Table
from repro.tuning import DEFAULT_KERNEL

#: Default cap on queries drained concurrently inside one shard
#: pipeline (the worker-side ``maxConc``); larger query sets are
#: drained in successive full-shard passes.
DEFAULT_MAX_CONCURRENT = 256


@dataclass(frozen=True)
class ShardTask:
    """Picklable payload for one worker under the 'pickle' transport."""

    shard_index: int
    star: StarSchema
    fact_rows: tuple[tuple, ...]
    dimension_rows: tuple[tuple[str, tuple[tuple, ...]], ...]
    queries: tuple[StarQuery, ...]
    batch_size: int
    aggregation_mode: str
    max_concurrent: int
    kernel: str = DEFAULT_KERNEL


@dataclass(frozen=True)
class ShmShardTask:
    """Picklable payload for one worker under the 'shm' transport.

    Carries the shared-memory layout descriptor and the worker's
    ``[start, end)`` span instead of fact rows — the whole point of
    the transport (DESIGN.md section 14).  Dimension rows still ride
    along pickled: they are orders of magnitude smaller than the fact
    table and each worker needs them whole.
    """

    shard_index: int
    star: StarSchema
    layout: ShmLayout
    span: tuple[int, int]
    dimension_rows: tuple[tuple[str, tuple[tuple, ...]], ...]
    queries: tuple[StarQuery, ...]
    batch_size: int
    aggregation_mode: str
    max_concurrent: int
    kernel: str = DEFAULT_KERNEL


def default_transport() -> str:
    """'fork' where the OS supports it, else 'shm'.

    Copy-on-write fork memory is still the cheapest way to hand
    workers the catalog; where only spawn exists (Windows, macOS
    default), the shared-memory column transport replaces the old
    row-pickling default.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "shm"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _shard_catalog(
    star: StarSchema,
    fact_rows,
    dimension_tables: dict[str, Table],
) -> Catalog:
    """A single-star catalog over one fact shard.

    Dimension :class:`Table` objects are registered as-is (they are
    read-only during a drain); only the fact shard is rebuilt.
    """
    catalog = Catalog()
    for table in dimension_tables.values():
        catalog.register_table(table)
    catalog.register_table(
        Table.from_validated_rows(star.fact, list(fact_rows))
    )
    catalog.register_star(star)
    return catalog


def _drain_shard(
    catalog: Catalog,
    star: StarSchema,
    queries: tuple[StarQuery, ...],
    batch_size: int,
    aggregation_mode: str,
    max_concurrent: int,
    kernel: str = DEFAULT_KERNEL,
) -> list:
    """Run the batched pipeline over one shard; return partial states.

    Returns one :meth:`~repro.cjoin.aggregation.OutputOperator.partial_state`
    export per query, in query order.  Query sets larger than
    ``max_concurrent`` are drained in successive passes; each pass
    re-scans the whole shard, so every query still sees every row.
    """
    from repro.cjoin.operator import CJoinOperator

    states: list = []
    for chunk_start in range(0, len(queries), max_concurrent):
        chunk = queries[chunk_start:chunk_start + max_concurrent]
        operator = CJoinOperator(
            catalog,
            star,
            max_concurrent=max_concurrent,
            executor_config=ExecutorConfig(
                execution="batched", batch_size=batch_size, kernel=kernel
            ),
            aggregation_mode=aggregation_mode,
        )
        sink: dict[int, object] = {}
        operator.distributor.partial_sink = sink
        query_ids = [
            operator.submit(query).registration.query_id for query in chunk
        ]
        operator.run_until_drained()
        states.extend(sink[query_id] for query_id in query_ids)
    return states


def _run_shard_task(task: ShardTask) -> list:
    """Pickle-transport worker body: rebuild tables, drain the shard."""
    dimension_tables = {
        name: Table.from_validated_rows(task.star.dimension(name), list(rows))
        for name, rows in task.dimension_rows
    }
    catalog = _shard_catalog(task.star, task.fact_rows, dimension_tables)
    return _drain_shard(
        catalog,
        task.star,
        task.queries,
        task.batch_size,
        task.aggregation_mode,
        task.max_concurrent,
        task.kernel,
    )


def _run_shm_task(task: ShmShardTask) -> list:
    """Shm-transport worker body: attach, decode the slice, drain.

    Only this worker's ``[start, end)`` rows are ever decoded into
    Python objects; the segment is detached again before the drain
    starts.
    """
    start, end = task.span
    fact_rows = attach_fact_slice(task.layout, start, end)
    dimension_tables = {
        name: Table.from_validated_rows(task.star.dimension(name), list(rows))
        for name, rows in task.dimension_rows
    }
    catalog = _shard_catalog(task.star, fact_rows, dimension_tables)
    return _drain_shard(
        catalog,
        task.star,
        task.queries,
        task.batch_size,
        task.aggregation_mode,
        task.max_concurrent,
        task.kernel,
    )


#: Fork-transport state, set by the coordinator immediately before the
#: pool forks and cleared right after; children inherit it by
#: copy-on-write, so fact rows never cross a pipe.  Guarded by
#: :data:`_FORK_LOCK`: concurrent fork-transport drains (two
#: warehouses on threads) serialize instead of forking each other's
#: tables.
_FORK_STATE: tuple | None = None
_FORK_LOCK = threading.Lock()


def _run_shard_span(span: tuple[int, int]) -> list:
    """Fork-transport worker body: slice the inherited fact table."""
    if _FORK_STATE is None:  # pragma: no cover - coordinator bug guard
        raise ConfigError("fork worker started without coordinator state")
    (star, fact_rows, dimension_tables, queries, batch_size,
     aggregation_mode, max_concurrent, kernel) = _FORK_STATE
    start, end = span
    catalog = _shard_catalog(star, fact_rows[start:end], dimension_tables)
    return _drain_shard(
        catalog, star, queries, batch_size, aggregation_mode,
        max_concurrent, kernel,
    )


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def merge_shard_states(
    star: StarSchema,
    queries,
    shard_states: list[list],
    aggregation_mode: str = "hash",
) -> list[list[tuple]]:
    """Fold per-shard partial states into finalized per-query results.

    ``shard_states[s][q]`` is shard ``s``'s partial state for query
    ``q``.  Shards are merged in shard order (= scan order), so group
    discovery order — and therefore result-row order — matches the
    serial drain exactly.
    """
    results: list[list[tuple]] = []
    for index, query in enumerate(queries):
        operator = make_output_operator(query, star, aggregation_mode)
        for states in shard_states:
            operator.merge_partial(states[index])
        results.append(operator.results())
    return results


def execute_process_parallel(
    catalog: Catalog,
    star: StarSchema,
    queries,
    workers: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    aggregation_mode: str = "hash",
    max_concurrent: int = DEFAULT_MAX_CONCURRENT,
    transport: str | None = None,
    kernel: str = DEFAULT_KERNEL,
) -> list[list[tuple]]:
    """Drain ``queries`` over ``workers`` fact shards; merge results.

    Results are identical to submitting the same queries to a serial
    ``execution='batched'`` :class:`~repro.cjoin.operator.CJoinOperator`
    and draining (enforced by tests/test_parallel_equivalence.py).

    Args:
        workers: shard count = worker process count.  ``workers=1``
            runs in-process (no pool).
        transport: 'fork', 'shm', 'pickle', 'inprocess', or None to
            pick the platform default.  Pool or serialization failures
            under any process transport fall back to 'inprocess'
            transparently — same protocol, same results.
        kernel: batch-kernel mode for the shard pipelines (DESIGN.md
            section 14), resolved inside each worker process so
            'auto' adapts to what the worker can import.

    Raises:
        ConfigError: on an invalid worker count, unknown transport, or
            unknown kernel mode.
    """
    queries = tuple(queries)
    if transport is None:
        transport = default_transport()
    if transport not in ("fork", "shm", "pickle", "inprocess"):
        raise ConfigError(
            f"unknown transport {transport!r}; expected 'fork', 'shm', "
            f"'pickle', or 'inprocess'"
        )
    # validates workers/batch_size/kernel ranges with actionable messages
    ExecutorConfig(
        execution="batched",
        backend="process",
        workers=workers,
        batch_size=batch_size,
        kernel=kernel,
    )
    for query in queries:
        query.validate(star)
    if not queries:
        return []
    fact_table = catalog.table(star.fact.name)
    fact_rows = fact_table.all_rows()
    dimension_tables = {
        name: catalog.table(name) for name in star.dimension_names()
    }
    spans = contiguous_spans(len(fact_rows), workers)
    if workers == 1 or transport == "inprocess":
        shard_states = _run_inprocess(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    elif transport == "fork":
        shard_states = _run_fork_pool(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    elif transport == "shm":
        shard_states = _run_shm_pool(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
            fact_table=fact_table,
        )
    else:
        shard_states = _run_pickle_pool(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    return merge_shard_states(star, queries, shard_states, aggregation_mode)


def _run_inprocess(
    star, fact_rows, dimension_tables, queries, spans,
    batch_size, aggregation_mode, max_concurrent, kernel=DEFAULT_KERNEL,
) -> list[list]:
    """The shard/merge protocol on the calling thread (no processes)."""
    shard_states = []
    for start, end in spans:
        shard = _shard_catalog(star, fact_rows[start:end], dimension_tables)
        shard_states.append(
            _drain_shard(
                shard, star, queries, batch_size, aggregation_mode,
                max_concurrent, kernel,
            )
        )
    return shard_states


def _run_fork_pool(
    star, fact_rows, dimension_tables, queries, spans,
    batch_size, aggregation_mode, max_concurrent, kernel=DEFAULT_KERNEL,
) -> list[list]:
    """Fan out over a fork pool; fall back in-process on failure.

    The lock is held for the whole drain: the state must stay set in
    the parent while the pool lives (a respawned worker re-forks and
    re-reads it), and two threads draining at once must not fork each
    other's tables.
    """
    global _FORK_STATE
    context = multiprocessing.get_context("fork")
    with _FORK_LOCK:
        _FORK_STATE = (
            star, fact_rows, dimension_tables, queries, batch_size,
            aggregation_mode, max_concurrent, kernel,
        )
        try:
            with context.Pool(processes=len(spans)) as pool:
                return pool.map(_run_shard_span, spans)
        except Exception:
            return _run_inprocess(
                star, fact_rows, dimension_tables, queries, spans,
                batch_size, aggregation_mode, max_concurrent, kernel,
            )
        finally:
            _FORK_STATE = None


def _spawn_is_safe() -> bool:
    """True when spawn children can re-import ``__main__``.

    A spawn child re-executes the parent's main script during
    bootstrap; when the parent was fed a script that is not a real
    file (``python - <<EOF`` heredocs report ``__file__ = '<stdin>'``),
    every child dies at startup and the pool respawns them forever —
    a hang, not an exception, so it must be caught preflight.
    """
    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    return main_file is None or os.path.isfile(main_file)


def _run_pickle_pool(
    star, fact_rows, dimension_tables, queries, spans,
    batch_size, aggregation_mode, max_concurrent, kernel=DEFAULT_KERNEL,
) -> list[list]:
    """Fan out over a spawn pool with explicit picklable shard tasks.

    Workloads that cannot be pickled (e.g. ad-hoc predicate objects
    defined in a REPL) and any pool failure fall back to the
    in-process protocol — correctness first, parallelism best-effort.
    """
    if not _spawn_is_safe():
        return _run_inprocess(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    dimension_rows = tuple(
        (name, tuple(table.all_rows()))
        for name, table in dimension_tables.items()
    )
    tasks = [
        ShardTask(
            shard_index=index,
            star=star,
            fact_rows=tuple(fact_rows[start:end]),
            dimension_rows=dimension_rows,
            queries=queries,
            batch_size=batch_size,
            aggregation_mode=aggregation_mode,
            max_concurrent=max_concurrent,
            kernel=kernel,
        )
        for index, (start, end) in enumerate(spans)
    ]
    try:
        # preflight only the workload: rows and schemas always pickle,
        # queries may close over ad-hoc predicate objects that do not
        pickle.dumps(queries)
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=len(tasks)) as pool:
            return pool.map(_run_shard_task, tasks)
    except Exception:
        return _run_inprocess(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )


#: Published-segment cache for the 'shm' transport: the fact table is
#: laid out in shared memory ONCE and every subsequent drain reattaches
#: the same segment, so repeat drains pay only the per-worker slice
#: decode.  Single slot (one warehouse serves one star); keyed by the
#: :class:`~repro.storage.table.Table` identity (held weakly) plus its
#: row count — tables are insert-only, so (same object, same count)
#: implies identical rows.  Guarded by :data:`_SHM_LOCK`; the segment
#: is unlinked on replacement and at interpreter exit.
_SHM_CACHE: tuple | None = None
_SHM_LOCK = threading.Lock()


def _discard_shm_cache() -> None:
    """Unlink the cached fact-table segment (idempotent)."""
    global _SHM_CACHE
    with _SHM_LOCK:
        cached, _SHM_CACHE = _SHM_CACHE, None
    if cached is not None:
        _, _, segment, _ = cached
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


atexit.register(_discard_shm_cache)


def _published_layout(fact_table, fact_rows, column_count: int) -> ShmLayout:
    """Return the cached layout for ``fact_table``, publishing on miss."""
    global _SHM_CACHE
    with _SHM_LOCK:
        if _SHM_CACHE is not None:
            table_ref, row_count, segment, layout = _SHM_CACHE
            if table_ref() is fact_table and row_count == len(fact_rows):
                return layout
            _SHM_CACHE = None
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        segment, layout = publish_fact_rows(fact_rows, column_count)
        _SHM_CACHE = (
            weakref.ref(fact_table), len(fact_rows), segment, layout,
        )
        return layout


def _run_shm_pool(
    star, fact_rows, dimension_tables, queries, spans,
    batch_size, aggregation_mode, max_concurrent, kernel=DEFAULT_KERNEL,
    fact_table=None,
) -> list[list]:
    """Fan out over a spawn pool with the fact table in shared memory.

    The fact table is encoded into typed shared-memory columns once
    per table (see :data:`_SHM_CACHE`); each worker's task carries
    only the layout descriptor and its span, so per-worker pipe
    traffic is independent of fact-table size and repeat drains skip
    the encode entirely.  Unpicklable workloads and pool failures
    fall back to the in-process protocol like every other transport.
    """
    if not _spawn_is_safe():
        return _run_inprocess(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    dimension_rows = tuple(
        (name, tuple(table.all_rows()))
        for name, table in dimension_tables.items()
    )
    segment = None  # owned by this drain only when there is no cache key
    try:
        # same workload preflight as the pickle transport
        pickle.dumps(queries)
        if fact_table is not None:
            layout = _published_layout(
                fact_table, fact_rows, star.fact.arity
            )
        else:
            # no table identity to cache under: publish for this drain
            # only and unlink when it ends
            segment, layout = publish_fact_rows(fact_rows, star.fact.arity)
        tasks = [
            ShmShardTask(
                shard_index=index,
                star=star,
                layout=layout,
                span=(start, end),
                dimension_rows=dimension_rows,
                queries=queries,
                batch_size=batch_size,
                aggregation_mode=aggregation_mode,
                max_concurrent=max_concurrent,
                kernel=kernel,
            )
            for index, (start, end) in enumerate(spans)
        ]
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=len(tasks)) as pool:
            return pool.map(_run_shm_task, tasks)
    except Exception:
        return _run_inprocess(
            star, fact_rows, dimension_tables, queries, spans,
            batch_size, aggregation_mode, max_concurrent, kernel,
        )
    finally:
        if segment is not None:
            segment.close()
            segment.unlink()
