"""Tuples flowing through the CJOIN pipeline.

Three kinds of items travel from the Preprocessor to the Distributor:

* :class:`FactTuple` — a fact row tagged with its relevance bit-vector
  ``b_tau`` and (as an optimization from section 3.2.2) pointers to the
  dimension rows it joined with, so aggregation operators never
  re-probe;
* :class:`QueryStart` — the "query start" control tuple emitted right
  after admission (section 3.3.1); it precedes every fact tuple the
  new query may produce results from;
* :class:`QueryEnd` — the "end of query" control tuple emitted when
  the continuous scan wraps around the query's starting position
  (section 3.3.2); it precedes the re-scan of the starting tuple.

Every item carries a monotonically increasing ``sequence`` assigned by
the Preprocessor.  Parallel executors may process data tuples out of
order, but the Distributor re-serializes by sequence, which enforces
the paper's correctness property that control tuples are never
reordered relative to data tuples (section 3.3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cjoin.registry import RegisteredQuery


class FactTuple:
    """A fact row in flight, tagged with its relevance bit-vector."""

    __slots__ = ("sequence", "position", "row", "bitvector", "dim_rows")

    def __init__(
        self, sequence: int, position: int, row: tuple, bitvector: int
    ) -> None:
        self.sequence = sequence
        self.position = position
        self.row = row
        self.bitvector = bitvector
        #: dimension name -> joined dimension row; allocated lazily by
        #: the first Filter that attaches a pointer (most tuples die
        #: before any attachment, so the common path skips the dict)
        self.dim_rows: dict[str, tuple] | None = None

    def __repr__(self) -> str:
        return (
            f"FactTuple(seq={self.sequence}, pos={self.position}, "
            f"bits={bin(self.bitvector)})"
        )


class ControlTuple:
    """Base class for pipeline control items (never filtered)."""

    __slots__ = ("sequence",)

    def __init__(self, sequence: int) -> None:
        self.sequence = sequence


class QueryStart(ControlTuple):
    """Signals the Distributor to set up output operators for a query."""

    __slots__ = ("registration",)

    def __init__(self, sequence: int, registration: "RegisteredQuery") -> None:
        super().__init__(sequence)
        self.registration = registration

    def __repr__(self) -> str:
        return f"QueryStart(seq={self.sequence}, qid={self.registration.query_id})"


class QueryEnd(ControlTuple):
    """Signals the Distributor to finalize a query and emit its results."""

    __slots__ = ("query_id",)

    def __init__(self, sequence: int, query_id: int) -> None:
        super().__init__(sequence)
        self.query_id = query_id

    def __repr__(self) -> str:
        return f"QueryEnd(seq={self.sequence}, qid={self.query_id})"
