"""The Filter component (paper sections 3.1-3.2).

One Filter per dimension table in the pipeline.  For each fact tuple
it probes the shared dimension hash table once — thereby joining the
tuple against *all* concurrent queries — ANDs the filtering bit-vector
into ``b_tau``, and drops the tuple when no query remains interested.

Implements both optimizations from section 3.2.2:

* **probe skip**: when ``b_tau AND NOT b_Dj == 0`` the tuple is
  relevant only to queries that do not reference this dimension, so
  the probe is skipped entirely;
* **pointer attachment**: the joining dimension row is attached to the
  fact tuple so aggregation operators never re-probe.
"""

from __future__ import annotations

from repro.catalog.schema import StarSchema
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.stats import FilterStats
from repro.cjoin.tuples import FactTuple


class Filter:
    """Probes one dimension hash table for every passing fact tuple."""

    def __init__(
        self,
        hash_table: DimensionHashTable,
        star: StarSchema,
        pipeline_stats=None,
        probe_skip: bool = True,
    ) -> None:
        self.hash_table = hash_table
        self.name = hash_table.name
        self.fk_index = star.fact_fk_index(hash_table.name)
        self.stats = FilterStats()
        self.pipeline_stats = pipeline_stats
        #: section 3.2.2 optimization toggle (off only for ablation)
        self.probe_skip = probe_skip

    def process(self, fact_tuple: FactTuple) -> bool:
        """Filter one tuple in place; return True iff it survives.

        The caller (Stage) forwards surviving tuples to the next
        Filter and discards the rest.
        """
        self.stats.tuples_in += 1
        bits = fact_tuple.bitvector
        table = self.hash_table
        # Probe-skip: every query still interested in this tuple has its
        # bit set in b_Dj (does not reference this dimension) -> the
        # probe could only AND-in ones.
        if self.probe_skip and bits & ~table.complement_bitmap == 0:
            self.stats.probe_skips += 1
            if self.pipeline_stats is not None:
                self.pipeline_stats.probe_skips_total += 1
            return True
        self.stats.probes += 1
        if self.pipeline_stats is not None:
            self.pipeline_stats.probes_total += 1
        filtering_bits, dim_row = table.probe(fact_tuple.row[self.fk_index])
        bits &= filtering_bits
        fact_tuple.bitvector = bits
        if bits == 0:
            self.stats.tuples_dropped += 1
            return False
        if dim_row is not None:
            if fact_tuple.dim_rows is None:
                fact_tuple.dim_rows = {}
            fact_tuple.dim_rows[self.name] = dim_row
        return True

    def would_drop(self, fact_tuple: FactTuple) -> bool:
        """Side-effect-free drop test used for optimizer profiling.

        Evaluates what :meth:`process` would decide for ``fact_tuple``
        *in isolation* (without mutating it or the stats).
        """
        bits = fact_tuple.bitvector
        if bits & ~self.hash_table.complement_bitmap == 0:
            return False
        filtering_bits, _ = self.hash_table.probe(
            fact_tuple.row[self.fk_index]
        )
        return bits & filtering_bits == 0

    def __repr__(self) -> str:
        return f"Filter({self.name!r}, tuples={self.hash_table.tuple_count})"
