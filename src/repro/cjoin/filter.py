"""The Filter component (paper sections 3.1-3.2).

One Filter per dimension table in the pipeline.  For each fact tuple
it probes the shared dimension hash table once — thereby joining the
tuple against *all* concurrent queries — ANDs the filtering bit-vector
into ``b_tau``, and drops the tuple when no query remains interested.

Implements both optimizations from section 3.2.2:

* **probe skip**: when ``b_tau AND NOT b_Dj == 0`` the tuple is
  relevant only to queries that do not reference this dimension, so
  the probe is skipped entirely;
* **pointer attachment**: the joining dimension row is attached to the
  fact tuple so aggregation operators never re-probe.

Two entry points over the same logic: :meth:`Filter.process` handles
one tuple (the reference path), :meth:`Filter.process_batch` handles a
whole :class:`~repro.cjoin.batch.FactBatch` in one call — probe skip is
tested once against the batch's bit-vector union, the probe loop runs
against the hash table's entry view directly (no per-row method call
or result allocation), and liveness is folded into the batch's alive
mask (DESIGN.md section 5).

When a batch kernel is installed (``kernel=`` knob, DESIGN.md section
14), :meth:`Filter.process_batch` delegates the probe/AND/compact
passes to :meth:`~repro.cjoin.kernels.PythonKernel.filter_batch`:
each *distinct* key probed once per batch, the bit-vector column
ANDed in bulk, survivors compacted without per-row appends, and the
joining dimension rows attached once per batch
(:meth:`~repro.cjoin.batch.FactBatch.attach_dim_lookup`) instead of
once per surviving row.  ``kernel='off'`` keeps the per-row loop
below — the reference the per-tuple-cost microbench measures against.
"""

from __future__ import annotations

from repro import bitvec
from repro.catalog.schema import StarSchema
from repro.cjoin.batch import FactBatch
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.stats import FilterStats
from repro.cjoin.tuples import FactTuple


class Filter:
    """Probes one dimension hash table for every passing fact tuple."""

    def __init__(
        self,
        hash_table: DimensionHashTable,
        star: StarSchema,
        pipeline_stats=None,
        probe_skip: bool = True,
        kernel=None,
    ) -> None:
        self.hash_table = hash_table
        self.name = hash_table.name
        self.fk_index = star.fact_fk_index(hash_table.name)
        self.stats = FilterStats()
        self.pipeline_stats = pipeline_stats
        #: section 3.2.2 optimization toggle (off only for ablation)
        self.probe_skip = probe_skip
        #: batch kernel from :func:`repro.cjoin.kernels.resolve`, or
        #: None to keep the per-row reference loop (kernel='off')
        self.kernel = kernel

    def process(self, fact_tuple: FactTuple) -> bool:
        """Filter one tuple in place; return True iff it survives.

        The caller (Stage) forwards surviving tuples to the next
        Filter and discards the rest.
        """
        self.stats.tuples_in += 1
        bits = fact_tuple.bitvector
        table = self.hash_table
        # Probe-skip: every query still interested in this tuple has its
        # bit set in b_Dj (does not reference this dimension) -> the
        # probe could only AND-in ones.
        if self.probe_skip and bits & ~table.complement_bitmap == 0:
            self.stats.probe_skips += 1
            if self.pipeline_stats is not None:
                self.pipeline_stats.probe_skips_total += 1
            return True
        self.stats.probes += 1
        if self.pipeline_stats is not None:
            self.pipeline_stats.probes_total += 1
        filtering_bits, dim_row = table.probe(fact_tuple.row[self.fk_index])
        bits &= filtering_bits
        fact_tuple.bitvector = bits
        if bits == 0:
            self.stats.tuples_dropped += 1
            return False
        if dim_row is not None:
            if fact_tuple.dim_rows is None:
                fact_tuple.dim_rows = {}
            fact_tuple.dim_rows[self.name] = dim_row
        return True

    def process_batch(self, batch: FactBatch) -> None:
        """Filter every live row of ``batch`` in one call.

        Semantically identical to calling :meth:`process` on each live
        row in order; the batch form amortizes the per-tuple costs:

        * one probe-skip test on the batch's bit-vector union instead
          of one per tuple;
        * the key column extracted once per batch and probed against
          the hash table's entry view directly, with no per-row method
          call or (bits, row) tuple allocation;
        * liveness folded into the batch alive mask with one bulk AND.
        """
        live = batch.live
        if not live:
            return
        stats = self.stats
        pipeline_stats = self.pipeline_stats
        stats.tuples_in += len(live)
        table = self.hash_table
        not_complement = ~table.complement_bitmap
        probe_skip = self.probe_skip
        bitvectors = batch.bitvectors
        if probe_skip and batch.union_bits() & not_complement == 0:
            # every live row is relevant only to queries that do not
            # reference this dimension: probing could only AND-in ones
            stats.probe_skips += len(live)
            if pipeline_stats is not None:
                pipeline_stats.probe_skips_total += len(live)
            return
        if self.kernel is not None:
            count = len(live)
            probes, skips, distinct = self.kernel.filter_batch(
                batch, self.fk_index, table, probe_skip, self.name
            )
            stats.probes += probes
            stats.probe_skips += skips
            stats.distinct_probes += distinct
            stats.tuples_dropped += count - len(batch.live)
            if pipeline_stats is not None:
                pipeline_stats.probes_total += probes
                pipeline_stats.probe_skips_total += skips
            return
        keys = batch.key_column(self.fk_index)
        dim_rows = batch.dim_rows
        entries_get = table.entries_view().get
        complement = table.complement_bitmap
        survivors: list[int] = []
        keep = survivors.append
        name = self.name
        dropped: list[int] = []
        skips = 0
        # when b_Dj == 0 every active query references this dimension,
        # so the per-row skip test can never fire: drop it from the loop
        probe_skip = probe_skip and complement != 0
        # The loop below receives (row_index, bits, probed) triples.
        # When check_skip is False, ``probed`` is already the hash-table
        # entry (or None), produced by a C-level map() pass over the key
        # column; dropping the per-row skip test is safe because for a
        # skippable row the AND is a no-op anyway — every query that
        # does not reference this dimension has its bit set in b_Dj
        # *and* in every stored entry, by the table invariants.  When
        # check_skip is True, ``probed`` is the key and the loop decides
        # per row whether to probe at all (the section 3.2.2 skip).
        if len(live) == len(bitvectors):
            # fully-live batch: drive the loop from the columns themselves
            check_skip = False
            row_triples = zip(
                range(len(bitvectors)), bitvectors, map(entries_get, keys)
            )
        else:
            # gather the live rows' columns with C-speed comprehensions
            # so the Python-level loop below touches only live rows
            check_skip = probe_skip
            live_keys = [keys[row_index] for row_index in live]
            row_triples = zip(
                live,
                [bitvectors[row_index] for row_index in live],
                live_keys if check_skip else map(entries_get, live_keys),
            )
        for row_index, bits, probed in row_triples:
            if check_skip:
                if bits & not_complement == 0:
                    skips += 1
                    keep(row_index)
                    continue
                entry = entries_get(probed)
            else:
                entry = probed
            if entry is None:
                bits &= complement
                dim_row = None
            else:
                bits &= entry.bits
                dim_row = entry.row
            bitvectors[row_index] = bits
            if bits == 0:
                dropped.append(row_index)
                continue
            if dim_row is not None:
                if dim_rows is None:
                    # allocated on the batch's first pointer attach
                    # only — selective batches never pay for the list
                    dim_rows = batch.ensure_dim_rows()
                attachments = dim_rows[row_index]
                if attachments is None:
                    dim_rows[row_index] = {name: dim_row}
                else:
                    attachments[name] = dim_row
            keep(row_index)
        probes = len(live) - skips
        stats.probes += probes
        stats.probe_skips += skips
        stats.tuples_dropped += len(dropped)
        if pipeline_stats is not None:
            pipeline_stats.probes_total += probes
            pipeline_stats.probe_skips_total += skips
        if dropped:
            batch.drop_rows(bitvec.pack_positions(dropped), survivors)

    def would_drop(self, fact_tuple: FactTuple) -> bool:
        """Side-effect-free drop test used for optimizer profiling.

        Evaluates what :meth:`process` would decide for ``fact_tuple``
        *in isolation* (without mutating it or the stats).
        """
        bits = fact_tuple.bitvector
        if bits & ~self.hash_table.complement_bitmap == 0:
            return False
        filtering_bits, _ = self.hash_table.probe(
            fact_tuple.row[self.fk_index]
        )
        return bits & filtering_bits == 0

    def __repr__(self) -> str:
        return f"Filter({self.name!r}, tuples={self.hash_table.tuple_count})"
