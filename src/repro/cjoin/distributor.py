"""The Distributor (paper sections 3.1-3.3).

Routes each surviving fact tuple to the output operators of every
query whose bit survives in ``b_tau``, and reacts to control tuples:
QueryStart installs the query's output operator *before* any of its
potential results arrive; QueryEnd finalizes the operator, fulfills
the caller's handle, and notifies the manager so Algorithm 2 cleanup
can run.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import bitvec
from repro.catalog.schema import StarSchema
from repro.cjoin.aggregation import OutputOperator, make_output_operator
from repro.cjoin.batch import FactBatch
from repro.cjoin.registry import RegisteredQuery
from repro.cjoin.stats import PipelineStats
from repro.cjoin.tuples import FactTuple, QueryEnd, QueryStart
from repro.errors import PipelineError


#: Tuples routed to a query before its first partial-result snapshot;
#: the interval then doubles after every refresh (exponential backoff,
#: see Distributor._feed_partial) so snapshot cost stays amortized O(1)
#: per routed tuple even for operators whose results() rescan state.
DEFAULT_STREAM_INTERVAL = 256

#: Bound on the decoded bit-vector -> query-id tuple cache.  Distinct
#: surviving bit-vectors are usually few (rows that passed the same
#: predicates share b_tau), but a pathological churn of query sets
#: could grow the cache without bound; past this it is simply reset.
DECODE_CACHE_LIMIT = 4096


class Distributor:
    """Terminal pipeline component: routing plus query lifecycle."""

    def __init__(
        self,
        star: StarSchema,
        stats: PipelineStats,
        on_query_finished: Callable[[int], None] | None = None,
        aggregation_mode: str = "hash",
        stream_interval: int = DEFAULT_STREAM_INTERVAL,
        kernel=None,
    ) -> None:
        self.star = star
        self.stats = stats
        self.on_query_finished = on_query_finished
        self.aggregation_mode = aggregation_mode
        #: routed tuples between handle partial-snapshot refreshes for
        #: handles that asked to stream (DESIGN.md section 10)
        self.stream_interval = max(stream_interval, 1)
        #: batch kernel from :func:`repro.cjoin.kernels.resolve`, or
        #: None for the materializing reference path (kernel='off')
        self.kernel = kernel
        self._operators: dict[int, OutputOperator] = {}
        self._registrations: dict[int, RegisteredQuery] = {}
        #: bit-vector -> decoded query-id tuple; the same surviving
        #: b_tau values recur batch after batch, so decoding is paid
        #: once per distinct bit-vector per query-set epoch, not once
        #: per batch group
        self._decoded_ids: dict[int, tuple[int, ...]] = {}
        #: per query: (tuples routed since the last partial snapshot,
        #: current refresh threshold — doubles after every snapshot)
        self._since_snapshot: dict[int, tuple[int, int]] = {}
        #: when set (shard workers, DESIGN.md section 8), every
        #: finalized query also exports its operator's un-finalized
        #: partial state here, keyed by query id
        self.partial_sink: dict[int, object] | None = None

    def process(self, item) -> None:
        """Handle one pipeline item (fact tuple or control tuple)."""
        if isinstance(item, FactTuple):
            self._route(item)
        elif isinstance(item, FactBatch):
            self._route_batch(item)
        elif isinstance(item, QueryStart):
            self._start_query(item.registration)
        elif isinstance(item, QueryEnd):
            self._end_query(item.query_id)
        else:
            raise PipelineError(f"unexpected pipeline item {item!r}")

    def _route(self, fact_tuple: FactTuple) -> None:
        self.stats.tuples_distributed += 1
        for query_id in bitvec.iter_query_ids(fact_tuple.bitvector):
            operator = self._operators.get(query_id)
            if operator is None:
                raise PipelineError(
                    f"fact tuple routed to unregistered query {query_id}"
                )
            operator.consume(fact_tuple)
            registration = self._registrations[query_id]
            registration.tuples_streamed += 1
            if registration.handle._stream_partials:
                self._feed_partial(query_id, operator, 1)

    def _route_batch(self, batch: FactBatch) -> None:
        """Route a batch's surviving rows, grouped by bit-vector.

        Surviving rows of one batch often share the exact same
        ``b_tau`` (they passed the same predicates), so the per-tuple
        query-id enumeration of :meth:`_route` is amortized: decode
        each distinct bit-vector once — cached across batches, since
        the same surviving bit-vectors recur for the life of a query
        set — and hand every operator its rows in one call.  With a
        batch kernel installed the call is the columnar
        :meth:`~OutputOperator.consume_rows` (row indices against the
        batch's columns, no :class:`FactTuple` allocated); the
        reference path (kernel='off') materializes and feeds
        :meth:`~OutputOperator.consume_batch`.
        """
        live = batch.live
        if not live:
            return
        self.stats.tuples_distributed += len(live)
        kernel = self.kernel
        bitvectors = batch.bitvectors
        if kernel is not None:
            groups = kernel.group_rows_by_bits(bitvectors, live)
        else:
            groups = {}
            for row_index in live:
                bits = bitvectors[row_index]
                group = groups.get(bits)
                if group is None:
                    groups[bits] = [row_index]
                else:
                    group.append(row_index)
        operators = self._operators
        registrations = self._registrations
        for bits, row_indices in groups.items():
            fact_tuples = (
                None
                if kernel is not None
                else [batch.materialize(r) for r in row_indices]
            )
            routed = len(row_indices)
            for query_id in self._decode_query_ids(bits):
                operator = operators.get(query_id)
                if operator is None:
                    raise PipelineError(
                        f"fact tuple routed to unregistered query {query_id}"
                    )
                if fact_tuples is None:
                    operator.consume_rows(batch, row_indices)
                else:
                    operator.consume_batch(fact_tuples)
                registration = registrations[query_id]
                registration.tuples_streamed += routed
                if registration.handle._stream_partials:
                    self._feed_partial(query_id, operator, routed)

    def _decode_query_ids(self, bits: int) -> tuple[int, ...]:
        """Decoded query ids of ``bits``, cached across batches."""
        decoded = self._decoded_ids
        ids = decoded.get(bits)
        if ids is None:
            if len(decoded) >= DECODE_CACHE_LIMIT:
                decoded.clear()
            ids = decoded[bits] = tuple(bitvec.iter_query_ids(bits))
        return ids

    def _feed_partial(
        self, query_id: int, operator: OutputOperator, routed: int
    ) -> None:
        """Refresh the handle's partial snapshot periodically.

        Only called for handles whose owner asked to stream (the
        ``_stream_partials`` flag is checked on the routing fast path,
        so idle handles cost one attribute test and nothing else).
        The refresh threshold doubles after every snapshot, so even a
        sort/listing operator whose ``results()`` rescans its whole
        buffer costs O(n) amortized per routed tuple across the cycle
        (a constant number of refreshes per doubling of n), never
        quadratic — streaming one query cannot stall the shared scan.
        """
        since, threshold = self._since_snapshot.get(
            query_id, (0, self.stream_interval)
        )
        since += routed
        if since < threshold:
            self._since_snapshot[query_id] = (since, threshold)
            return
        self._since_snapshot[query_id] = (0, threshold * 2)
        self._registrations[query_id].handle.update_partial(
            operator.results()
        )

    def _start_query(self, registration: RegisteredQuery) -> None:
        query_id = registration.query_id
        if query_id in self._operators:
            raise PipelineError(f"query {query_id} already started")
        self._operators[query_id] = make_output_operator(
            registration.query, self.star, self.aggregation_mode
        )
        self._registrations[query_id] = registration

    def _end_query(self, query_id: int) -> None:
        operator = self._operators.pop(query_id, None)
        registration = self._registrations.pop(query_id, None)
        self._since_snapshot.pop(query_id, None)
        if operator is None or registration is None:
            raise PipelineError(f"end-of-query for unknown query {query_id}")
        if registration.handle.cancelled:
            # a cancelled query's QueryEnd arrived through the normal
            # stream; its accumulated state is discarded and the handle
            # completes empty (results() raises CancelledError)
            registration.handle.complete([])
            self.stats.queries_completed += 1
            if self.on_query_finished is not None:
                self.on_query_finished(query_id)
            return
        if self.partial_sink is not None:
            if query_id in self.partial_sink:
                raise PipelineError(
                    f"query id {query_id} finalized twice in one shard drain"
                )
            self.partial_sink[query_id] = operator.partial_state()
            # shard-local finalized rows are never read (the coordinator
            # merges partials and finalizes once); complete empty
            registration.handle.complete([])
        else:
            registration.handle.complete(operator.results())
        self.stats.queries_completed += 1
        if self.on_query_finished is not None:
            self.on_query_finished(query_id)

    @property
    def open_query_ids(self) -> list[int]:
        """Queries whose operators are installed but not yet finalized."""
        return list(self._operators)
