"""Execution strategies for the CJOIN pipeline (paper section 4).

Two drivers over the same operator code:

* :class:`SynchronousExecutor` — single-threaded, deterministic; the
  default for correctness work and for the library's real query
  answering path.
* :class:`ThreadedExecutor` — maps components onto threads the way the
  paper maps them onto cores: the Preprocessor and Distributor each
  own a thread; Filters are boxed into *Stages*, each Stage served by
  one or more worker threads.  Configurations:

  - ``horizontal``: one Stage holding the whole filter chain, all
    worker threads assigned to it (the paper's winning layout);
  - ``vertical``: one Stage per Filter;
  - ``hybrid``: explicit boxing of filters into stages.

  Items travel in *batches* (section 4's batched queue transfers).
  Batches carry monotone ids; the Distributor side re-serializes by
  batch id, which preserves the ordering of control tuples relative to
  data tuples (the section 3.3.3 correctness property) even with many
  workers per stage.

Orthogonal to the thread mapping, both drivers support two *execution
granularities* selected by ``ExecutorConfig.execution``:

* ``'tuple'`` (default) — the reference tuple-at-a-time path: every
  fact tuple travels as a :class:`FactTuple` and every Filter is
  invoked once per tuple;
* ``'batched'`` — the vectorized fast path (DESIGN.md section 5): the
  Preprocessor packs runs of fact tuples into columnar
  :class:`~repro.cjoin.batch.FactBatch` objects, each Filter handles a
  whole batch per call (batch-level probe skip, per-batch probe
  deduplication, bulk alive-mask updates), and the Distributor routes
  survivors grouped by identical bit-vectors.  Both paths produce
  identical results (enforced by tests/test_batch_equivalence.py);
  the batched path is what makes the hot loop fast in pure Python.

Note on fidelity: under CPython's GIL, stage threads do not speed up
this pure-Python pipeline — the threaded executor demonstrates the
*architecture* (and is tested for correctness); the performance
consequences of thread mappings are reproduced by the calibrated model
in :mod:`repro.sim` (see DESIGN.md section 4).  For real multi-core
speedups this repository defers to the process-parallel sharded
backend (:mod:`repro.cjoin.parallel`, DESIGN.md section 8), selected
via ``ExecutorConfig(backend='process', workers=N)``: data parallelism
across fact shards sidesteps the GIL where thread-per-stage cannot.
"""

from __future__ import annotations

import dataclasses
import heapq
import queue
import threading
from dataclasses import InitVar, dataclass

from repro.cjoin.batch import FactBatch
from repro.cjoin.manager import PipelineManager
from repro.cjoin.pipeline import CJoinPipeline
from repro.cjoin.tuples import ControlTuple, FactTuple
from repro.errors import ConfigError, PipelineError

# The range-bound constants and validators live in repro.tuning now
# (DESIGN.md section 13) so every layer can import them without
# cycles; re-exported here because this module was their home.
from repro.tuning import (  # noqa: F401  (compatibility re-exports)
    DEFAULT_BATCH_SIZE,
    DEFAULT_IDLE_SLEEP,
    DEFAULT_KERNEL,
    KERNEL_MODES,
    MAX_ADMISSION_QUEUE_DEPTH,
    MAX_BATCH_SIZE,
    MAX_CONCURRENT_QUERIES,
    MAX_IDLE_SLEEP,
    MAX_STAGE_THREADS,
    MAX_WORKERS,
    TuningConfig,
    _require_float,
    _require_int,
)


@dataclass(frozen=True)
class ExecutorConfig:
    """Tuning for pipeline execution.

    Attributes:
        mode: 'synchronous', 'horizontal', 'vertical', or 'hybrid'.
        execution: 'tuple' (reference path) or 'batched' (vectorized
            fast path over FactBatch columns); orthogonal to ``mode``.
        backend: 'serial' (in-process, the default) or 'process' — the
            sharded multi-process drain (DESIGN.md section 8).  The
            process backend requires ``execution='batched'`` and
            ``mode='synchronous'``.
        workers: fact-table shards / worker processes for the process
            backend; must be 1 for the serial backend.
        stage_threads: worker threads for the single horizontal stage,
            or per-stage thread counts for vertical/hybrid.
        stage_boxes: for 'hybrid', filter-count per stage (e.g.
            ``(2, 2)`` boxes a 4-filter chain into two stages).
        batch_size: items per preprocessor batch.
        reoptimize_interval: scanned tuples between reoptimization
            attempts (0 disables on-line reordering).
        profile_sample_rate: profile every k-th tuple for the ordering
            policy (0 disables profiling).
        kernel: batch-kernel mode for the vectorized hot path —
            'auto', 'python', 'numpy', or 'off' (DESIGN.md section
            14).  Only meaningful with ``execution='batched'``; the
            tuple path always runs the reference loops.
        tuning: init-only; a :class:`~repro.tuning.TuningConfig` whose
            ``workers``, ``batch_size``, and ``kernel`` override the
            keywords above — the bridge from the unified runtime-
            tuning surface (DESIGN.md section 13) into this low-level
            config.
    """

    mode: str = "synchronous"
    execution: str = "tuple"
    backend: str = "serial"
    workers: int = 1
    stage_threads: tuple[int, ...] = (1,)
    stage_boxes: tuple[int, ...] = ()
    batch_size: int = DEFAULT_BATCH_SIZE
    reoptimize_interval: int = 4096
    profile_sample_rate: int = 64
    kernel: str = DEFAULT_KERNEL
    tuning: InitVar[TuningConfig | None] = None

    def __post_init__(self, tuning: TuningConfig | None = None) -> None:
        if tuning is not None:
            object.__setattr__(self, "workers", tuning.workers)
            object.__setattr__(self, "batch_size", tuning.batch_size)
            object.__setattr__(self, "kernel", tuning.kernel)
        if self.mode not in ("synchronous", "horizontal", "vertical", "hybrid"):
            raise ConfigError(f"unknown executor mode {self.mode!r}")
        if self.execution not in ("tuple", "batched"):
            raise ConfigError(
                f"unknown execution granularity {self.execution!r}; "
                f"expected 'tuple' or 'batched'"
            )
        if self.backend not in ("serial", "process"):
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"expected 'serial' or 'process'"
            )
        _require_int("workers", self.workers, 1, MAX_WORKERS)
        _require_int("batch_size", self.batch_size, 1, MAX_BATCH_SIZE)
        if self.kernel not in KERNEL_MODES:
            raise ConfigError(
                f"kernel must be one of {KERNEL_MODES}, "
                f"got {self.kernel!r}"
            )
        if self.backend == "process":
            if self.execution != "batched":
                raise ConfigError(
                    "backend='process' requires execution='batched' "
                    "(shard workers run the vectorized drain); pass "
                    "execution='batched'"
                )
            if self.mode != "synchronous":
                raise ConfigError(
                    f"backend='process' requires mode='synchronous', "
                    f"got mode={self.mode!r}; process-level parallelism "
                    f"replaces stage threading"
                )
        elif self.workers != 1:
            raise ConfigError(
                f"workers={self.workers} requires backend='process'; "
                f"the serial backend always uses exactly 1 worker"
            )
        if not self.stage_threads:
            raise ConfigError(
                "stage_threads must name at least one stage; use (1,) "
                "for a single single-threaded stage"
            )
        for position, threads in enumerate(self.stage_threads):
            _require_int(
                f"stage_threads[{position}]", threads, 1, MAX_STAGE_THREADS
            )
        for position, box in enumerate(self.stage_boxes):
            _require_int(f"stage_boxes[{position}]", box, 1, MAX_WORKERS)
        if self.stage_boxes and self.mode != "hybrid":
            raise ConfigError(
                f"stage_boxes is only meaningful with mode='hybrid', "
                f"got mode={self.mode!r}"
            )
        if self.mode == "hybrid" and not self.stage_boxes:
            raise ConfigError(
                "mode='hybrid' requires stage_boxes, e.g. (2, 2) to box "
                "a 4-filter chain into two stages"
            )


def _resolve_idle_sleep(idle_sleep):
    """Normalize a float-or-callable idle throttle to a callable.

    A plain number is validated once and frozen; a callable is trusted
    per call (the service validates through TuningConfig before any
    value reaches it) so a running driver sees retunes immediately.
    """
    if callable(idle_sleep):
        return idle_sleep
    _require_float("idle_sleep", idle_sleep, 0.0, MAX_IDLE_SLEEP)
    return lambda: idle_sleep


class _ProfilingDriver:
    """Shared profiling/reoptimization cadence for both executors."""

    def __init__(self, pipeline: CJoinPipeline, manager: PipelineManager,
                 config: ExecutorConfig) -> None:
        self.pipeline = pipeline
        self.manager = manager
        self.config = config
        self._since_reopt = 0
        self._since_profile = 0

    def observe(self, item) -> None:
        """Feed one preprocessor item into the profiling cadence."""
        if isinstance(item, FactBatch):
            self.observe_batch(item)
            return
        if not isinstance(item, FactTuple):
            return
        policy = self.manager.ordering_policy
        rate = self.config.profile_sample_rate
        if policy.wants_profiles and rate > 0:
            self._since_profile += 1
            if self._since_profile >= rate:
                self._since_profile = 0
                policy.record_profile(list(self.pipeline.filters), item)
        interval = self.config.reoptimize_interval
        if interval > 0:
            self._since_reopt += 1
            if self._since_reopt >= interval:
                self._since_reopt = 0
                self.manager.reoptimize()

    def observe_batch(self, batch: FactBatch) -> None:
        """Advance the profiling cadence by a whole batch at once.

        Must run *before* the batch enters the filter chain, like the
        tuple path: the profiler wants preprocessor-fresh bit-vectors,
        and any reoptimization installs a pure permutation that is safe
        for batches not yet filtered.
        """
        row_count = len(batch)
        if row_count == 0:
            return
        policy = self.manager.ordering_policy
        rate = self.config.profile_sample_rate
        if policy.wants_profiles and rate > 0:
            self._since_profile += row_count
            due, self._since_profile = divmod(self._since_profile, rate)
            live = batch.live
            if due and live:
                # keep the tuple path's cadence (one profile per `rate`
                # rows) and spread the samples across the batch instead
                # of always profiling the first row of a run
                filters = list(self.pipeline.filters)
                stride = max(1, len(live) // due)
                for sample_index in range(due):
                    row = live[min(sample_index * stride, len(live) - 1)]
                    policy.record_profile(filters, batch.materialize(row))
        interval = self.config.reoptimize_interval
        if interval > 0:
            self._since_reopt += row_count
            if self._since_reopt >= interval:
                self._since_reopt = 0
                self.manager.reoptimize()


class SynchronousExecutor:
    """Drives the pipeline to completion on the calling thread.

    Two drive modes:

    * :meth:`run_until_drained` — the batch-drain mode: run until every
      admitted query completes, then return (the historical
      ``Warehouse.run()`` contract);
    * :meth:`run_forever` — the continuous service mode (DESIGN.md
      section 9): cycle the scan indefinitely, idle-throttling when no
      query is registered, until :meth:`stop` is signalled from another
      thread.  Mid-scan admission needs no extra machinery here: the
      manager's stall protocol serializes ``admit()`` against
      :meth:`step`'s item production on the preprocessor lock, so any
      thread may admit at any moment between batches.
    """

    def __init__(
        self,
        pipeline: CJoinPipeline,
        manager: PipelineManager,
        config: ExecutorConfig | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.manager = manager
        self.config = config if config is not None else ExecutorConfig()
        self._profiler = _ProfilingDriver(pipeline, manager, self.config)
        self._stop = threading.Event()

    def reconfigure(self, tuning: TuningConfig) -> None:
        """Apply runtime-tunable knobs at the next batch boundary.

        :meth:`step` reads ``self.config`` once per batch, so swapping
        the (immutable) config between batches is safe from any thread
        — the in-flight batch finishes under the old size and the next
        one picks up the new.  Only ``batch_size`` applies here; the
        executor's thread/worker layout is construction-time state.
        """
        self.config = dataclasses.replace(
            self.config, batch_size=tuning.batch_size
        )

    def step(self) -> int:
        """Process one batch; returns the number of items handled.

        With ``execution='batched'`` the count is logical: every fact
        row inside a FactBatch counts as one item, so drain-progress
        semantics match the tuple path.
        """
        preprocessor = self.pipeline.preprocessor
        if self.config.execution == "batched":
            items = preprocessor.next_batched_items(self.config.batch_size)
        else:
            items = preprocessor.next_items(self.config.batch_size)
        handled = 0
        for item in items:
            handled += len(item) if isinstance(item, FactBatch) else 1
            self._profiler.observe(item)
            self.pipeline.process_item(item)
        self.manager.process_finished()
        return handled

    def run_until_drained(self, max_batches: int | None = None) -> None:
        """Run until every admitted query has completed.

        Raises:
            PipelineError: if ``max_batches`` elapses first (guards
                against non-terminating loops in tests).
        """
        batches = 0
        while self.manager.active_query_count > 0:
            handled = self.step()
            if handled == 0 and self.manager.active_query_count > 0:
                # nothing produced yet queries remain: only possible if
                # cleanup is pending, which step() already flushed.
                raise PipelineError("pipeline stalled with active queries")
            batches += 1
            if max_batches is not None and batches > max_batches:
                raise PipelineError(
                    f"pipeline did not drain within {max_batches} batches"
                )

    def run_forever(
        self,
        idle_sleep: float = DEFAULT_IDLE_SLEEP,
        on_cycle=None,
        stop_event: threading.Event | None = None,
    ) -> None:
        """Cycle the pipeline until stopped (the always-on service mode).

        Steps the pipeline continuously; when a step handles nothing
        (no registered queries, no pending control tuples) the loop
        sleeps ``idle_sleep`` seconds instead of spinning.  ``on_cycle``
        — called once per loop iteration, before the step — is the
        service layer's hook for pumping its admission queue on the
        driver thread.  ``stop_event`` overrides the executor's own
        stop flag so an external owner (the service) can coordinate
        shutdown without racing :meth:`stop`'s flag reset.

        Returns after the stop flag is set; a clean shutdown leaves the
        pipeline consistent, and admitted-but-unfinished queries simply
        resume on the next drive call.

        ``idle_sleep`` may also be a zero-argument callable returning
        the current sleep, so the service layer can retune the idle
        throttle of a *running* driver (DESIGN.md section 13).
        """
        idle = _resolve_idle_sleep(idle_sleep)
        stop = stop_event if stop_event is not None else self._stop
        try:
            while not stop.is_set():
                if on_cycle is not None:
                    on_cycle()
                if self.step() == 0:
                    stop.wait(idle())
        finally:
            if stop is self._stop:
                # consume the signal on the way out: each stop() ends
                # at most one run, and the driver stays reusable
                self._stop.clear()

    def stop(self) -> None:
        """Signal :meth:`run_forever` to return (thread-safe, idempotent)."""
        self._stop.set()


class _Batch:
    """A batch envelope with a monotone id for re-serialization."""

    __slots__ = ("batch_id", "items")

    def __init__(self, batch_id: int, items: list) -> None:
        self.batch_id = batch_id
        self.items = items

    def __lt__(self, other: "_Batch") -> bool:
        return self.batch_id < other.batch_id


_POISON = _Batch(-1, [])


class ThreadedExecutor:
    """Multi-threaded pipeline driver with Stage-based filter mapping."""

    def __init__(
        self,
        pipeline: CJoinPipeline,
        manager: PipelineManager,
        config: ExecutorConfig | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.manager = manager
        self.config = config if config is not None else ExecutorConfig(
            mode="horizontal", stage_threads=(2,)
        )
        if self.config.mode == "synchronous":
            raise PipelineError(
                "ThreadedExecutor requires a threaded mode; use "
                "SynchronousExecutor for mode='synchronous'"
            )
        self._profiler = _ProfilingDriver(pipeline, manager, self.config)
        self._threads: list[threading.Thread] = []
        self._queues: list[queue.Queue] = []
        self._stage_slices: list[slice] = []
        self._stop = threading.Event()
        self._started = False

    def reconfigure(self, tuning: TuningConfig) -> None:
        """Apply runtime-tunable knobs at the next batch boundary.

        The preprocessor loop reads ``self.config.batch_size`` once per
        iteration, so swapping the immutable config is safe while the
        stage threads run; the thread layout itself stays fixed.
        """
        self.config = dataclasses.replace(
            self.config, batch_size=tuning.batch_size
        )

    # ------------------------------------------------------------------
    # Stage layout
    # ------------------------------------------------------------------
    def _plan_stages(self) -> list[slice]:
        """Box the filter chain into stages per the configured mode.

        Stages hold *index ranges* resolved against the live filter
        list at processing time, so run-time reordering (a pure
        permutation) stays safe.  Vertical/hybrid layouts size their
        stage count from the star's dimension count — the maximum the
        filter chain can grow to — so the executor can start before
        any query is admitted; a stage whose slice is currently empty
        simply passes tuples through.
        """
        if self.config.mode == "horizontal":
            return [slice(0, None)]
        capacity = len(self.pipeline.distributor.star.dimensions)
        if self.config.mode == "vertical":
            return [slice(i, i + 1) for i in range(capacity)]
        boxes = self.config.stage_boxes
        if sum(boxes) != capacity:
            raise PipelineError(
                f"hybrid stage_boxes {boxes} do not cover the star's "
                f"{capacity} dimensions"
            )
        slices = []
        start = 0
        for box in boxes:
            slices.append(slice(start, start + box))
            start += box
        return slices

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up preprocessor, stage, and distributor threads."""
        if self._started:
            raise PipelineError("executor already started")
        self._started = True
        self._stop.clear()
        self._stage_slices = self._plan_stages()
        stage_count = len(self._stage_slices)
        threads_per_stage = self._threads_per_stage(stage_count)
        # queue[0] feeds stage 0; queue[i+1] is stage i's output;
        # the last queue feeds the distributor thread.
        self._queues = [queue.Queue(maxsize=64) for _ in range(stage_count + 1)]
        self._threads = [
            threading.Thread(
                target=self._preprocessor_loop, name="cjoin-preprocessor",
                daemon=True,
            )
        ]
        for stage_index in range(stage_count):
            for worker in range(threads_per_stage[stage_index]):
                self._threads.append(
                    threading.Thread(
                        target=self._stage_loop,
                        args=(stage_index,),
                        name=f"cjoin-stage{stage_index}-w{worker}",
                        daemon=True,
                    )
                )
        self._threads.append(
            threading.Thread(
                target=self._distributor_loop, name="cjoin-distributor",
                daemon=True,
            )
        )
        self._worker_counts = threads_per_stage
        for thread in self._threads:
            thread.start()

    def _threads_per_stage(self, stage_count: int) -> list[int]:
        configured = list(self.config.stage_threads)
        if len(configured) == 1 and stage_count > 1:
            configured = configured * stage_count
        if len(configured) != stage_count:
            raise PipelineError(
                f"stage_threads {tuple(configured)} does not match "
                f"{stage_count} stages"
            )
        return configured

    def stop(self) -> None:
        """Stop all threads (idempotent)."""
        if not self._started:
            return
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10)
        self._started = False

    def run_forever(
        self,
        idle_sleep: float = DEFAULT_IDLE_SLEEP,
        on_cycle=None,
        stop_event: threading.Event | None = None,
    ) -> None:
        """Continuous service mode, uniform with the synchronous driver.

        The stage threads already cycle the scan on their own, so this
        body only starts them (when not yet started) and pumps
        ``on_cycle`` every ``idle_sleep`` seconds until the stop flag is
        set.  With an external ``stop_event`` the caller still owns the
        thread teardown: call :meth:`stop` after this returns to join
        the stage threads.  As in the synchronous driver, ``idle_sleep``
        may be a zero-argument callable for live retuning.
        """
        idle = _resolve_idle_sleep(idle_sleep)
        if not self._started:
            self.start()
        stop = stop_event if stop_event is not None else self._stop
        while not stop.is_set():
            if on_cycle is not None:
                on_cycle()
            stop.wait(idle())

    def wait_for(self, handles, timeout: float = 60.0) -> None:
        """Block until every handle completes.

        Raises:
            PipelineError: on timeout.
        """
        for handle in handles:
            if not handle.wait(timeout):
                raise PipelineError("timed out waiting for query completion")

    # ------------------------------------------------------------------
    # Thread bodies
    # ------------------------------------------------------------------
    def _preprocessor_loop(self) -> None:
        batch_id = 0
        batched = self.config.execution == "batched"
        preprocessor = self.pipeline.preprocessor
        while not self._stop.is_set():
            if batched:
                items = preprocessor.next_batched_items(self.config.batch_size)
            else:
                items = preprocessor.next_items(self.config.batch_size)
            if not items:
                self.manager.process_finished()
                self._stop.wait(0.001)
                continue
            for item in items:
                self._profiler.observe(item)
            self._put(self._queues[0], _Batch(batch_id, items))
            batch_id += 1
        self._queues[0].put(_POISON)

    def _stage_loop(self, stage_index: int) -> None:
        in_queue = self._queues[stage_index]
        out_queue = self._queues[stage_index + 1]
        stage_slice = self._stage_slices[stage_index]
        while True:
            batch = in_queue.get()
            if batch is _POISON:
                # let sibling workers and the next stage terminate too
                in_queue.put(_POISON)
                out_queue.put(_POISON)
                return
            survivors = []
            for item in batch.items:
                if isinstance(item, ControlTuple):
                    survivors.append(item)
                    continue
                stage_filters = tuple(self.pipeline.filters)[stage_slice]
                if isinstance(item, FactBatch):
                    for stage_filter in stage_filters:
                        stage_filter.process_batch(item)
                        if not item.live:
                            break
                    if item.live:
                        survivors.append(item)
                    continue
                if self._run_stage_filters(stage_filters, item):
                    survivors.append(item)
            self._put(out_queue, _Batch(batch.batch_id, survivors))

    @staticmethod
    def _run_stage_filters(stage_filters, fact_tuple: FactTuple) -> bool:
        for stage_filter in stage_filters:
            if not stage_filter.process(fact_tuple):
                return False
        return True

    def _distributor_loop(self) -> None:
        expected = 0
        pending: list[_Batch] = []
        in_queue = self._queues[-1]
        poisons = 0
        while True:
            batch = in_queue.get()
            if batch is _POISON:
                poisons += 1
                # one poison per worker of the final stage can arrive
                if poisons >= self._worker_counts[-1]:
                    return
                continue
            heapq.heappush(pending, batch)
            while pending and pending[0].batch_id == expected:
                ready = heapq.heappop(pending)
                for item in ready.items:
                    self.pipeline.distributor.process(item)
                expected += 1

    def _put(self, target_queue: queue.Queue, batch: _Batch) -> None:
        while not self._stop.is_set():
            try:
                target_queue.put(batch, timeout=0.05)
                return
            except queue.Full:
                continue
        # shutting down: drop the batch
