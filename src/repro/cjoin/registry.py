"""Query identifiers, registrations, and user-facing handles.

The paper assigns each in-flight query a unique positive integer id,
reused after the query finishes, with ``maxId(Q)`` bounded by a system
parameter ``maxConc`` (section 3, Notation).  :class:`QueryIdAllocator`
implements exactly that policy: the *first unused* id in
``[1, maxConc]`` is handed out, so ids stay dense and bit-vectors stay
short.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.errors import AdmissionError, CancelledError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.star import StarQuery

#: Default bound on concurrently registered queries.
DEFAULT_MAX_CONCURRENT = 256


class QueryIdAllocator:
    """Allocates the first unused query id in ``[1, maxConc]``."""

    def __init__(self, max_concurrent: int = DEFAULT_MAX_CONCURRENT) -> None:
        if max_concurrent < 1:
            raise AdmissionError(
                f"maxConc must be >= 1, got {max_concurrent}"
            )
        self.max_concurrent = max_concurrent
        self._in_use: set[int] = set()

    def allocate(self) -> int:
        """Return the smallest free id.

        Raises:
            AdmissionError: when ``maxConc`` queries are already active.
        """
        for candidate in range(1, self.max_concurrent + 1):
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                return candidate
        raise AdmissionError(
            f"operator is at its concurrency limit ({self.max_concurrent})"
        )

    def release(self, query_id: int) -> None:
        """Return ``query_id`` to the pool.

        Raises:
            AdmissionError: if the id is not currently allocated.
        """
        if query_id not in self._in_use:
            raise AdmissionError(f"query id {query_id} is not allocated")
        self._in_use.remove(query_id)

    @property
    def active_count(self) -> int:
        """Number of ids currently allocated."""
        return len(self._in_use)

    @property
    def max_id(self) -> int:
        """The paper's ``maxId(Q)``: the largest allocated id (0 if none)."""
        return max(self._in_use, default=0)


class RegisteredQuery:
    """Pipeline-internal registration state for one query."""

    def __init__(self, query_id: int, query: "StarQuery", handle: "QueryHandle") -> None:
        self.query_id = query_id
        self.query = query
        self.handle = handle
        #: scan position of the query's first fact tuple
        self.start_position: int | None = None
        #: True until the query's starting tuple has been emitted once;
        #: the next arrival at start_position is then the wrap-around.
        self.awaiting_first_tuple = True
        #: fact tuples emitted to this query so far (progress metric)
        self.tuples_streamed = 0
        #: pipeline-wide tuples_scanned at admission (latency telemetry)
        self.scanned_at_admission = 0
        #: queries already registered when this one was admitted; > 0
        #: means a mid-scan admission rather than a drain boundary
        self.admitted_with_in_flight = 0

    def __repr__(self) -> str:
        return f"RegisteredQuery(id={self.query_id}, label={self.query.label!r})"


class QueryHandle:
    """The caller's view of a submitted query.

    Exposes completion state, canonical results, cancellation,
    incremental result streaming, and the progress /
    estimated-completion feedback the paper highlights as a side
    benefit of the continuous scan (section 3.2.3).

    Streaming (DESIGN.md section 10): while the continuous scan is
    mid-cycle, :meth:`rows_so_far` returns the query's current partial
    result snapshot (fed by the Distributor); iterating the handle
    blocks until the scan wraps, then streams the canonical rows.
    """

    def __init__(self, query: "StarQuery") -> None:
        self.query = query
        self._done = threading.Event()
        self._results: list[tuple] | None = None
        #: set once cancel() succeeds; result accessors then raise
        #: CancelledError instead of returning rows
        self._cancelled = False
        #: installed by whichever layer owns the query right now (the
        #: service for queued submissions, the manager once admitted,
        #: the warehouse for offline pending routes); cancel() calls it
        self._canceller = None
        #: latest partial-result snapshot pushed by the Distributor
        self._partial_rows: list[tuple] = []
        #: True once a caller asked for partials — the Distributor
        #: skips snapshot work for handles nobody is watching
        self._stream_partials = False
        self.submitted_at = time.perf_counter()
        #: stamped by the Pipeline Manager when the query enters the
        #: pipeline; submitted_at..admitted_at is the admission wait
        self.admitted_at: float | None = None
        #: stamped on the first completion callback (with today's
        #: aggregate-only Distributor this coincides with completed_at,
        #: but streaming result delivery can move it earlier)
        self.first_result_at: float | None = None
        self.completed_at: float | None = None
        #: filled by the operator: scan cycle fraction remaining, etc.
        self.registration: RegisteredQuery | None = None
        self._progress_total: int | None = None
        #: guards the done-flag/callback handoff: registration from one
        #: thread must never race completion on the pipeline driver
        self._callback_lock = threading.Lock()
        self._callbacks: list = []

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once results are available."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until done (threaded executors); returns done-ness."""
        return self._done.wait(timeout)

    def on_complete(self, callback) -> None:
        """Register ``callback(handle)`` to run at completion.

        Runs on the completing thread (the pipeline driver).  A handle
        that is already done invokes the callback immediately — the
        service layer uses this hook to track in-flight counts without
        polling.  Registration is race-free against a concurrent
        :meth:`complete`: the callback fires exactly once either way.
        """
        with self._callback_lock:
            if not self.done:
                self._callbacks.append(callback)
                return
        callback(self)

    def complete(self, results: list[tuple]) -> None:
        """Fulfill the handle (called by the Distributor)."""
        self._results = [] if self._cancelled else results
        now = time.perf_counter()
        if self.first_result_at is None:
            self.first_result_at = now
        self.completed_at = now
        with self._callback_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def results(self, timeout: float | None = None) -> list[tuple]:
        """Canonical result rows.

        With ``timeout`` (seconds), blocks until the query completes —
        the natural call under the always-on service, where completion
        happens on a background driver thread.  Without it, the
        historical non-blocking contract holds.

        Raises:
            AdmissionError: if the query has not completed yet
                (``timeout=None``), or did not complete within
                ``timeout`` seconds.
            CancelledError: if the query was cancelled.
        """
        if self._cancelled:
            raise CancelledError(
                f"query {self.query.label or ''!r} was cancelled"
            )
        if timeout is not None:
            if not self.wait(timeout):
                raise AdmissionError(
                    f"query did not complete within {timeout} seconds"
                )
        elif not self.done:
            raise AdmissionError("query has not completed yet")
        if self._cancelled:
            raise CancelledError(
                f"query {self.query.label or ''!r} was cancelled"
            )
        return list(self._results)

    # ------------------------------------------------------------------
    # Cancellation (DESIGN.md section 10)
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` succeeded for this query."""
        return self._cancelled

    def mark_cancelled(self) -> None:
        """Flag the query as cancelled (called by the owning layer)."""
        self._cancelled = True

    def cancel(self) -> bool:
        """Cancel the query wherever it currently lives.

        Queued submissions are dropped from their admission queue;
        registered CJOIN queries are deregistered mid-scan through the
        manager's stall protocol, freeing their in-flight slot within
        one scan cycle.  Returns True when the cancellation took
        effect, False when the query already completed (its results
        stand) or no owner is attached yet.  Idempotent: cancelling a
        cancelled query returns True.
        """
        if self._cancelled:
            return True
        if self.done:
            return False
        canceller = self._canceller
        if canceller is None:
            return False
        return bool(canceller())

    # ------------------------------------------------------------------
    # Result streaming (DESIGN.md section 10)
    # ------------------------------------------------------------------
    def update_partial(self, rows: list[tuple]) -> None:
        """Install a fresh partial-result snapshot (Distributor-fed)."""
        self._partial_rows = rows

    def rows_so_far(self) -> list[tuple]:
        """The query's current partial results, without blocking.

        Before completion this is the latest per-scan-cycle snapshot
        the Distributor pushed (empty until the first push); after
        completion it equals :meth:`results`.  The first call turns
        snapshot feeding on, so an untouched handle costs the
        Distributor nothing.
        """
        if self.done:
            return [] if self._cancelled else list(self._results)
        self._stream_partials = True
        return list(self._partial_rows)

    def __iter__(self):
        """Stream the canonical rows, blocking until the scan wraps."""
        return self.iter_rows()

    def iter_rows(self, timeout: float | None = None):
        """Yield canonical result rows as the query finalizes.

        CJOIN finalizes a query's rows when the continuous scan wraps
        to its start position, so iteration blocks (up to ``timeout``
        seconds, forever when None) until the wrap, then streams the
        rows out; use :meth:`rows_so_far` for mid-cycle partials.

        Raises:
            AdmissionError: if the query does not complete in time.
            CancelledError: if the query was cancelled.
        """
        if not self.wait(timeout):
            raise AdmissionError(
                f"query did not complete within {timeout} seconds"
            )
        if self._cancelled:
            raise CancelledError(
                f"query {self.query.label or ''!r} was cancelled"
            )
        yield from self._results

    @property
    def response_time(self) -> float:
        """Wall-clock seconds from submission to completion.

        Raises:
            AdmissionError: if the query has not completed yet.
        """
        if self.completed_at is None:
            raise AdmissionError("query has not completed yet")
        return self.completed_at - self.submitted_at

    @property
    def latency_seconds(self) -> float:
        """End-to-end seconds from submission to completion.

        Alias of :attr:`response_time` under the service vocabulary.

        Raises:
            AdmissionError: if the query has not completed yet.
        """
        return self.response_time

    @property
    def wait_seconds(self) -> float:
        """Seconds the query waited between submission and admission.

        Raises:
            AdmissionError: if the query has not been admitted yet.
        """
        if self.admitted_at is None:
            raise AdmissionError("query has not been admitted yet")
        return self.admitted_at - self.submitted_at

    # ------------------------------------------------------------------
    # Progress feedback (section 3.2.3)
    # ------------------------------------------------------------------
    def set_progress_total(self, total_tuples: int) -> None:
        """Record the scan length at admission (progress denominator)."""
        self._progress_total = max(total_tuples, 1)

    @property
    def progress(self) -> float:
        """Fraction of the continuous scan completed for this query."""
        if self.done:
            return 1.0
        if self.registration is None or self._progress_total is None:
            return 0.0
        return min(self.registration.tuples_streamed / self._progress_total, 1.0)

    def estimated_seconds_remaining(self, tuples_per_second: float) -> float:
        """Estimated completion time from the pipeline's current rate."""
        if self.done:
            return 0.0
        if self._progress_total is None or tuples_per_second <= 0:
            return float("inf")
        remaining = self._progress_total - (
            self.registration.tuples_streamed if self.registration else 0
        )
        return max(remaining, 0) / tuples_per_second
