"""The Pipeline Manager (paper sections 3.3-3.4).

Runs alongside the pipeline and owns its lifecycle:

* **admission** (Algorithm 1): allocate a query id, update every
  dimension hash table's complement bitmap, run the dimension filter
  queries ``sigma_cnj(D_j)`` against the store, install new Filters,
  and activate the query in the Preprocessor with a start control
  tuple;
* **finalization cleanup** (Algorithm 2): after the Distributor
  retires a query, clear its bits everywhere, garbage-collect dead
  dimension tuples, and remove empty Filters;
* **run-time optimization** (section 3.4): periodically ask the
  ordering policy for a better Filter permutation and install it.

Concurrency notes (for the threaded executor): admissions are
serialized by the manager lock; pipeline mutations happen under a
Preprocessor stall.  Permuting the filter chain never requires
draining in-flight tuples because each tuple snapshots the chain and
AND-filtering is order-insensitive; new-filter insertion is safe
because the new table's complement bitmap is initialized from the
union of preprocessor-active and distributor-open queries (read while
stalled), which covers every bit any in-flight tuple can carry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

from repro import bitvec
from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.optimizer import AGreedyPolicy, OrderingPolicy
from repro.cjoin.pipeline import CJoinPipeline
from repro.cjoin.registry import (
    QueryHandle,
    QueryIdAllocator,
    RegisteredQuery,
)
from repro.cjoin.stats import PipelineStats, QueryLatencyRecord
from repro.errors import AdmissionError
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.scan import TableScan


class AdmissionTimings:
    """Per-admission cost breakdown (drives Tables 1-3 comparisons)."""

    def __init__(self) -> None:
        self.submission_seconds: list[float] = []
        self.dimension_rows_loaded: list[int] = []

    def record(self, seconds: float, rows_loaded: int) -> None:
        """Log one admission."""
        self.submission_seconds.append(seconds)
        self.dimension_rows_loaded.append(rows_loaded)

    @property
    def mean_submission_seconds(self) -> float:
        """Average submission time across admissions (0.0 if none)."""
        if not self.submission_seconds:
            return 0.0
        return sum(self.submission_seconds) / len(self.submission_seconds)


class PipelineManager:
    """Admission, finalization, and on-line optimization."""

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema,
        pipeline: CJoinPipeline,
        buffer_pool: BufferPool,
        stats: PipelineStats,
        max_concurrent: int = 256,
        ordering_policy: OrderingPolicy | None = None,
        probe_skip: bool = True,
        kernel=None,
    ) -> None:
        self.catalog = catalog
        self.star = star
        self.pipeline = pipeline
        self.buffer_pool = buffer_pool
        self.stats = stats
        self.probe_skip = probe_skip
        #: batch kernel handed to every Filter this manager installs
        #: (:mod:`repro.cjoin.kernels`; None keeps the per-row loops)
        self.kernel = kernel
        self.allocator = QueryIdAllocator(max_concurrent)
        self.ordering_policy = (
            ordering_policy if ordering_policy is not None else AGreedyPolicy()
        )
        self.timings = AdmissionTimings()
        self._lock = threading.RLock()
        self._registrations: dict[int, RegisteredQuery] = {}
        #: hash tables by dimension name (including ones newly created)
        self._tables: dict[str, DimensionHashTable] = {}
        #: which dimensions each active query references
        self._referenced_by: dict[int, set[str]] = {}
        self._finished_queue: deque[int] = deque()

    # ------------------------------------------------------------------
    # Admission (Algorithm 1)
    # ------------------------------------------------------------------
    def admit(
        self, query: StarQuery, handle: QueryHandle | None = None
    ) -> QueryHandle:
        """Register ``query`` with the always-on pipeline.

        Returns a :class:`QueryHandle`; results become available once
        the continuous scan wraps around the query's start position.

        ``handle`` lets a caller that queued the query earlier (the
        service's admission queue) keep the handle it already gave out:
        the handle's submission timestamp then predates admission, so
        ``wait_seconds`` measures the real admission wait.
        """
        started = time.perf_counter()
        query.validate(self.star)
        with self._lock:
            self.process_finished()  # reclaim ids before allocating
            query_id = self.allocator.allocate()
            try:
                handle, rows_loaded = self._admit_locked(
                    query, query_id, handle
                )
            except Exception:
                self._rollback_admission(query_id)
                self.allocator.release(query_id)
                raise
        self.stats.queries_admitted += 1
        self.timings.record(time.perf_counter() - started, rows_loaded)
        return handle

    def _admit_locked(
        self,
        query: StarQuery,
        query_id: int,
        handle: QueryHandle | None = None,
    ) -> QueryHandle:
        if handle is None:
            handle = QueryHandle(query)
        handle.admitted_at = time.perf_counter()
        registration = RegisteredQuery(query_id, query, handle)
        # once registered, the manager owns cancellation (a queued
        # submission's handle previously pointed at the service queue);
        # the canceller pins its own registration so a stale handle can
        # never cancel a later query that recycled the same id
        handle._canceller = lambda: self.cancel(query_id, registration)
        registration.scanned_at_admission = self.stats.tuples_scanned
        registration.admitted_with_in_flight = len(self._registrations)
        handle.registration = registration
        # keep the query's reference order: new Filters are appended in
        # this order, which is what the FixedOrderPolicy preserves
        referenced_list = query.referenced_dimensions()
        referenced = set(referenced_list)
        preprocessor = self.pipeline.preprocessor

        # --- Algorithm 1 lines 1-10: complement bitmaps & new tables ---
        # A dimension missing from the pipeline can only be one the new
        # query references (tables are created on first reference), so
        # its complement bitmap starts as the in-flight bit union: every
        # concurrent query implicitly selects all of this dimension.
        new_filters: list[Filter] = []
        pipeline_dims = set(self.pipeline.filter_order())
        missing = [
            name for name in referenced_list if name not in self._tables
        ]
        if missing:
            preprocessor.stall()
            try:
                in_flight_bits = self._in_flight_bits()
            finally:
                preprocessor.resume()
            for name in missing:
                table = DimensionHashTable(self.star.dimension(name))
                table.complement_bitmap = in_flight_bits
                self._tables[name] = table
                new_filters.append(
                    Filter(
                        table,
                        self.star,
                        self.stats,
                        probe_skip=self.probe_skip,
                        kernel=self.kernel,
                    )
                )
        for name in [*referenced_list, *sorted(pipeline_dims - referenced)]:
            if name in missing:
                continue  # complement already correct (bit n is 0)
            if name in referenced:
                self._tables[name].mark_query_referencing(query_id)
            else:
                self._tables[name].mark_query_not_referencing(query_id)

        # --- Algorithm 1 lines 11-16: dimension filter queries --------
        # Runs outside the stall, in parallel with tuple processing: the
        # new query's bit is never set on fact tuples yet, so partially
        # loaded hash tables cannot produce results for it (section
        # 3.3.1 correctness argument).
        rows_loaded = 0
        for name in referenced_list:
            rows = self._run_dimension_query(name, query)
            rows_loaded += self._tables[name].register_selected_rows(
                query_id, rows
            )

        # --- Algorithm 1 lines 17-22: install under a stall -----------
        preprocessor.stall()
        try:
            for new_filter in new_filters:
                self.pipeline.add_filter(new_filter)
            self._registrations[query_id] = registration
            self._referenced_by[query_id] = referenced
            fact_table = self.catalog.table(query.fact_table)
            if fact_table.row_count == 0:
                preprocessor.finish_immediately(registration)
            else:
                handle.set_progress_total(fact_table.row_count)
                preprocessor.activate(registration)
        finally:
            preprocessor.resume()
        return handle, rows_loaded

    def _rollback_admission(self, query_id: int) -> None:
        """Undo the partial effects of a failed admission.

        Clears the query's bits everywhere (restoring the unallocated-
        ids-are-zero invariant) and drops dimension tables this
        admission created that never made it into the pipeline —
        leaving one behind would silently suppress Filter creation for
        the next query referencing that dimension.
        """
        self._registrations.pop(query_id, None)
        self._referenced_by.pop(query_id, None)
        for name in list(self._tables):
            table = self._tables[name]
            table.unregister_query(query_id)
            if table.is_empty and not self.pipeline.has_filter(name):
                del self._tables[name]

    def _in_flight_bits(self) -> int:
        """OR of the bits of every query any in-flight tuple may carry.

        Must be called with the preprocessor stalled: queries move out
        of the preprocessor's active set only while it holds its lock.
        """
        bits = 0
        for query_id in self.pipeline.distributor.open_query_ids:
            bits = bitvec.set_bit(bits, query_id)
        for query_id in self.pipeline.preprocessor.active_query_ids:
            bits = bitvec.set_bit(bits, query_id)
        return bits

    def _run_dimension_query(self, name: str, query: StarQuery) -> list[tuple]:
        """Evaluate ``sigma_cnj(D_j)`` against the store.

        The paper issues this to PostgreSQL; here it is a buffered scan
        of the dimension table (charged to the shared buffer pool),
        short-circuited through an equality index when one covers the
        predicate (section 5: dimension indexes are used transparently
        by query registration).  Wait-free with respect to the pipeline.
        """
        dimension = self.catalog.table(name)
        predicate = query.predicate_on(name)
        view = self.catalog.find_dimension_view(name, predicate)
        if view is not None:
            return view.rows()
        indexed = self._index_lookup(dimension, predicate)
        if indexed is not None:
            return indexed
        matcher = predicate.bind(dimension.schema)
        return [
            row
            for row in TableScan(dimension, self.buffer_pool)
            if matcher(row)
        ]

    @staticmethod
    def _index_lookup(dimension, predicate) -> list[tuple] | None:
        """Serve an equality/IN predicate from a secondary index.

        Returns None when the predicate shape or available indexes do
        not allow it (the scan path then applies).
        """
        from repro.query.predicate import Comparison, InList

        if isinstance(predicate, Comparison) and predicate.op == "=":
            column, values = predicate.column, [predicate.value]
        elif isinstance(predicate, InList):
            column, values = predicate.column, sorted(
                predicate.values, key=repr
            )
        else:
            return None
        if not dimension.has_index(column):
            return None
        return dimension.index_lookup(column, values)

    # ------------------------------------------------------------------
    # Cancellation (DESIGN.md section 10)
    # ------------------------------------------------------------------
    def cancel(
        self,
        query_id: int,
        expected: RegisteredQuery | None = None,
    ) -> bool:
        """Deregister an in-flight query before its scan wraps.

        Runs the mid-scan deregistration under the same stall protocol
        admission uses: the Preprocessor drops the query from ``Q`` and
        emits its QueryEnd early, which flows behind any in-flight
        tuples still carrying the bit; the Distributor then tears the
        query down through the ordinary end-of-query path (state
        discarded, handle completed as cancelled) and Algorithm 2
        cleanup frees the id — so the in-flight slot is reusable within
        one scan cycle.  Returns False when the query is unknown here
        or already finished (its results stand).

        ``expected`` guards against query-id recycling: ids are reused
        as soon as cleanup releases them, so a canceller that raced a
        completion must not tear down the *next* query admitted under
        the same id.  When given, the cancellation only proceeds if the
        id still maps to that exact registration.
        """
        with self._lock:
            registration = self._registrations.get(query_id)
            if registration is None:
                return False
            if expected is not None and registration is not expected:
                return False  # the id was recycled; nothing to cancel
            handle = registration.handle
            if handle.done:
                return False
            preprocessor = self.pipeline.preprocessor
            preprocessor.stall()
            try:
                cancelled = preprocessor.cancel(registration)
                if cancelled:
                    # flag before resuming: the driver thread may
                    # process the QueryEnd immediately afterwards
                    handle.mark_cancelled()
            finally:
                preprocessor.resume()
            if cancelled:
                self.stats.queries_cancelled += 1
            return cancelled

    # ------------------------------------------------------------------
    # Finalization (Algorithm 2)
    # ------------------------------------------------------------------
    def on_query_finished(self, query_id: int) -> None:
        """Distributor callback: defer Algorithm 2 to the manager.

        Runs on the distributor's thread; the actual cleanup happens in
        :meth:`process_finished` under the manager lock, matching the
        paper's note that garbage collection is asynchronous.
        """
        self._finished_queue.append(query_id)

    def process_finished(self) -> int:
        """Run Algorithm 2 for every queued finished query.

        Returns the number of queries cleaned up.
        """
        cleaned = 0
        with self._lock:
            while self._finished_queue:
                query_id = self._finished_queue.popleft()
                self._cleanup_locked(query_id)
                cleaned += 1
        return cleaned

    def _cleanup_locked(self, query_id: int) -> None:
        registration = self._registrations.pop(query_id, None)
        if registration is None:
            raise AdmissionError(f"unknown finished query {query_id}")
        self._record_latency(registration)
        self._referenced_by.pop(query_id, None)
        for table in self._tables.values():
            table.unregister_query(query_id)
        # A Filter is removable only when NO active query references its
        # dimension.  The paper's emptiness test alone is unsafe: a hash
        # table can be empty because an *active* query's predicate
        # selected zero dimension rows — then the filter (probe miss ->
        # b_Dj, whose bit is 0 for that query) is exactly what drops
        # every fact tuple for it.
        still_referenced: set[str] = set()
        for referenced in self._referenced_by.values():
            still_referenced |= referenced
        removable = [
            name for name in self._tables if name not in still_referenced
        ]
        if removable:
            preprocessor = self.pipeline.preprocessor
            preprocessor.stall()
            try:
                for name in removable:
                    if self.pipeline.has_filter(name):
                        self.pipeline.remove_filter(name)
                    del self._tables[name]
                    self.ordering_policy.forget(name)
            finally:
                preprocessor.resume()
        self.allocator.release(query_id)

    def _record_latency(self, registration: RegisteredQuery) -> None:
        """Append the query's latency breakdown to the pipeline stats.

        Runs at cleanup, after the Distributor completed the handle, so
        every timestamp is in place.  Queries torn down before
        completion (rollbacks never reach here; they are not recorded),
        and cancelled queries, are not recorded — a cancellation is not
        a latency sample.
        """
        handle = registration.handle
        if (
            handle.cancelled
            or handle.completed_at is None
            or handle.admitted_at is None
        ):
            return
        fact_rows = self.catalog.table(
            registration.query.fact_table
        ).row_count
        scanned = max(
            self.stats.tuples_scanned - registration.scanned_at_admission, 0
        )
        self.stats.record_latency(
            QueryLatencyRecord(
                query_id=registration.query_id,
                label=registration.query.label,
                wait_seconds=handle.admitted_at - handle.submitted_at,
                scan_cycles=scanned / fact_rows if fact_rows else 0.0,
                latency_seconds=handle.completed_at - handle.submitted_at,
                admitted_with_in_flight=registration.admitted_with_in_flight,
                scan_position_at_admission=registration.start_position or 0,
            )
        )

    # ------------------------------------------------------------------
    # External writers (streaming ingest, DESIGN.md section 15)
    # ------------------------------------------------------------------
    @contextmanager
    def write_barrier(self):
        """Serialize an external catalog mutation against admissions.

        Every admission — including its dimension subqueries and hash
        table builds — runs under the manager lock, so a writer holding
        this barrier mutates tables atomically with respect to query
        admission: a query admitted before the barrier saw none of the
        write set, one admitted after sees all of it.  The caller must
        still stall the Preprocessor around mutations the *scan* could
        observe mid-item (fact appends with their version stamps).
        """
        with self._lock:
            yield

    # ------------------------------------------------------------------
    # Run-time optimization (section 3.4)
    # ------------------------------------------------------------------
    def reoptimize(self) -> bool:
        """Ask the policy for a better filter order; install if changed.

        Returns True when the order changed.  Safe while tuples are in
        flight (pure permutation; see module docstring).
        """
        with self._lock:
            filters = list(self.pipeline.filters)
            if len(filters) < 2:
                return False
            recommended = self.ordering_policy.recommend(filters)
            if [f.name for f in recommended] == [f.name for f in filters]:
                self._reset_filter_windows()
                return False
            self.pipeline.reorder(recommended)
            self.stats.reoptimizations += 1
            self._reset_filter_windows()
            return True

    def _reset_filter_windows(self) -> None:
        for pipeline_filter in self.pipeline.filters:
            pipeline_filter.stats.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_query_count(self) -> int:
        """Queries admitted and not yet cleaned up."""
        return len(self._registrations)

    def dimension_table(self, name: str) -> DimensionHashTable:
        """The shared hash table for dimension ``name`` (test hook)."""
        return self._tables[name]
