"""The Preprocessor (paper sections 3.1-3.3).

Feeds the pipeline from the continuous scan:

* attaches the initial bit-vector ``b_tau`` to each fact tuple —
  bit i set iff ``Q_i`` is active, the tuple satisfies ``c_i0`` (the
  query's fact predicate) and, under snapshot isolation, the tuple's
  version is visible in the query's snapshot (the section-3.5
  "virtual predicate");
* marks each new query's starting position and, when the scan wraps
  around it, emits the end-of-query control tuple *before* re-emitting
  the starting tuple (section 3.3.2);
* assigns every emitted item a monotonically increasing sequence
  number (the total order the Distributor enforces).

Thread-safety: the manager stalls the Preprocessor around pipeline
mutations by holding its lock (see :meth:`stall` / :meth:`resume`);
item production holds the same lock.
"""

from __future__ import annotations

import threading
from collections import deque

from repro import bitvec
from repro.catalog.schema import StarSchema
from repro.cjoin.registry import RegisteredQuery
from repro.cjoin.stats import PipelineStats
from repro.cjoin.tuples import ControlTuple, FactTuple, QueryEnd, QueryStart
from repro.errors import PipelineError
from repro.storage.mvcc import Snapshot, VersionedTable
from repro.storage.scan import ContinuousScan


class _ActiveQuery:
    """Preprocessor-side state for one active query."""

    __slots__ = ("registration", "bit", "fact_matcher", "snapshot")

    def __init__(
        self,
        registration: RegisteredQuery,
        fact_matcher,
        snapshot: Snapshot | None,
    ) -> None:
        self.registration = registration
        self.bit = bitvec.bit_for_query(registration.query_id)
        self.fact_matcher = fact_matcher
        self.snapshot = snapshot


class Preprocessor:
    """Turns the fact table into a tagged, control-annotated stream."""

    def __init__(
        self,
        scan: ContinuousScan,
        star: StarSchema,
        stats: PipelineStats,
        versioned_fact: VersionedTable | None = None,
    ) -> None:
        self.scan = scan
        self.star = star
        self.stats = stats
        self.versioned_fact = versioned_fact
        self._lock = threading.RLock()
        self._stalled = False
        self._sequence = 0
        self._active: dict[int, _ActiveQuery] = {}
        #: queries with no fact predicate / snapshot: their bits OR-ed
        self._unconditional_mask = 0
        self._conditional: list[_ActiveQuery] = []
        #: scan position -> registrations that started there
        self._starts: dict[int, list[RegisteredQuery]] = {}
        self._pending_control: deque[ControlTuple] = deque()

    # ------------------------------------------------------------------
    # Stall / resume (Algorithm 1 lines 17 and 22)
    # ------------------------------------------------------------------
    def stall(self) -> None:
        """Stop item production; blocks until the current batch ends."""
        self._lock.acquire()
        self._stalled = True

    def resume(self) -> None:
        """Resume item production after a stall."""
        if not self._stalled:
            raise PipelineError("resume() without a matching stall()")
        self._stalled = False
        self._lock.release()

    @property
    def is_stalled(self) -> bool:
        """True while the manager holds the pipeline stalled."""
        return self._stalled

    # ------------------------------------------------------------------
    # Query activation (called by the manager, pipeline stalled)
    # ------------------------------------------------------------------
    def activate(self, registration: RegisteredQuery) -> None:
        """Install a query into ``Q`` and emit its start control tuple.

        Must be called while stalled.  Sets the registration's start
        position to the next unprocessed scan tuple, appends the
        QueryStart control tuple, and begins setting bit ``n`` on
        subsequent fact tuples.
        """
        if not self._stalled:
            raise PipelineError("activate() requires a stalled preprocessor")
        query = registration.query
        fact_matcher = None
        if query.fact_predicate is not None:
            fact_matcher = query.fact_predicate.bind(self.star.fact)
        snapshot = None
        if query.snapshot_id is not None and self.versioned_fact is not None:
            snapshot = Snapshot(query.snapshot_id)
        active = _ActiveQuery(registration, fact_matcher, snapshot)
        self._active[registration.query_id] = active
        if fact_matcher is None and snapshot is None:
            self._unconditional_mask |= active.bit
        else:
            self._conditional.append(active)
        registration.start_position = self.scan.next_position
        self._starts.setdefault(registration.start_position, []).append(
            registration
        )
        self._pending_control.append(QueryStart(self._next_sequence(), registration))
        self.stats.control_tuples += 1

    def finish_immediately(self, registration: RegisteredQuery) -> None:
        """Emit start+end back to back (empty fact table admission)."""
        if not self._stalled:
            raise PipelineError("finish_immediately() requires a stall")
        self._pending_control.append(QueryStart(self._next_sequence(), registration))
        self._pending_control.append(
            QueryEnd(self._next_sequence(), registration.query_id)
        )
        self.stats.control_tuples += 2

    @property
    def active_query_ids(self) -> list[int]:
        """Ids of queries currently in ``Q``."""
        return list(self._active)

    @property
    def active_count(self) -> int:
        """Number of queries currently in ``Q``."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Item production
    # ------------------------------------------------------------------
    def next_items(self, max_items: int) -> list:
        """Produce up to ``max_items`` pipeline items.

        Returns an empty list when there is nothing to do (no active
        queries and no pending control tuples).
        """
        with self._lock:
            items: list = []
            while self._pending_control and len(items) < max_items:
                items.append(self._pending_control.popleft())
            if not self._active:
                return items
            while len(items) < max_items:
                produced = self.scan.next()
                if produced is None:
                    break  # empty table; nothing to stream
                position, row = produced
                self.stats.tuples_scanned += 1
                ended = self._handle_wraparound(position)
                if ended:
                    items.extend(ended)
                    if not self._active:
                        break
                bits = self._initial_bits(position, row)
                if bits == 0:
                    self.stats.tuples_preprocessor_dropped += 1
                    continue
                items.append(
                    FactTuple(self._next_sequence(), position, row, bits)
                )
            return items

    def _handle_wraparound(self, position: int) -> list[QueryEnd]:
        """Emit QueryEnd for queries whose scan wrapped to ``position``."""
        registrations = self._starts.get(position)
        if not registrations:
            return []
        ends: list[QueryEnd] = []
        remaining: list[RegisteredQuery] = []
        for registration in registrations:
            if registration.awaiting_first_tuple:
                registration.awaiting_first_tuple = False
                remaining.append(registration)
            else:
                self._deactivate(registration.query_id)
                ends.append(
                    QueryEnd(self._next_sequence(), registration.query_id)
                )
                self.stats.control_tuples += 1
        if remaining:
            self._starts[position] = remaining
        else:
            del self._starts[position]
        return ends

    def _deactivate(self, query_id: int) -> None:
        active = self._active.pop(query_id, None)
        if active is None:
            raise PipelineError(f"query {query_id} is not active")
        self._unconditional_mask &= ~active.bit
        self._conditional = [
            entry for entry in self._conditional if entry is not active
        ]

    def _initial_bits(self, position: int, row: tuple) -> int:
        bits = self._unconditional_mask
        for active in self._conditional:
            if active.snapshot is not None and not active.snapshot.can_see(
                self.versioned_fact.version_at(position)
            ):
                continue
            if active.fact_matcher is not None and not active.fact_matcher(row):
                continue
            bits |= active.bit
        return bits

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence
