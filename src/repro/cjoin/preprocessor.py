"""The Preprocessor (paper sections 3.1-3.3).

Feeds the pipeline from the continuous scan:

* attaches the initial bit-vector ``b_tau`` to each fact tuple —
  bit i set iff ``Q_i`` is active, the tuple satisfies ``c_i0`` (the
  query's fact predicate) and, under snapshot isolation, the tuple's
  version is visible in the query's snapshot (the section-3.5
  "virtual predicate");
* marks each new query's starting position and, when the scan wraps
  around it, emits the end-of-query control tuple *before* re-emitting
  the starting tuple (section 3.3.2);
* assigns every emitted item a monotonically increasing sequence
  number (the total order the Distributor enforces).

Thread-safety: the manager stalls the Preprocessor around pipeline
mutations by holding its lock (see :meth:`stall` / :meth:`resume`);
item production holds the same lock.
"""

from __future__ import annotations

import threading
from array import array
from collections import deque

from repro import bitvec
from repro.catalog.schema import StarSchema
from repro.cjoin.batch import FactBatch
from repro.cjoin.registry import RegisteredQuery
from repro.cjoin.stats import PipelineStats
from repro.cjoin.tuples import ControlTuple, FactTuple, QueryEnd, QueryStart
from repro.errors import PipelineError
from repro.storage.mvcc import Snapshot, VersionedTable
from repro.storage.scan import ContinuousScan


class _ActiveQuery:
    """Preprocessor-side state for one active query."""

    __slots__ = ("registration", "bit", "fact_matcher", "snapshot")

    def __init__(
        self,
        registration: RegisteredQuery,
        fact_matcher,
        snapshot: Snapshot | None,
    ) -> None:
        self.registration = registration
        self.bit = bitvec.bit_for_query(registration.query_id)
        self.fact_matcher = fact_matcher
        self.snapshot = snapshot


class Preprocessor:
    """Turns the fact table into a tagged, control-annotated stream."""

    def __init__(
        self,
        scan: ContinuousScan,
        star: StarSchema,
        stats: PipelineStats,
        versioned_fact: VersionedTable | None = None,
    ) -> None:
        self.scan = scan
        self.star = star
        self.stats = stats
        self.versioned_fact = versioned_fact
        self._lock = threading.RLock()
        self._stalled = False
        self._sequence = 0
        self._active: dict[int, _ActiveQuery] = {}
        #: queries with no fact predicate / snapshot: their bits OR-ed
        self._unconditional_mask = 0
        self._conditional: list[_ActiveQuery] = []
        #: scan position -> registrations that started there
        self._starts: dict[int, list[RegisteredQuery]] = {}
        self._pending_control: deque[ControlTuple] = deque()

    # ------------------------------------------------------------------
    # Stall / resume (Algorithm 1 lines 17 and 22)
    # ------------------------------------------------------------------
    def stall(self) -> None:
        """Stop item production; blocks until the current batch ends."""
        self._lock.acquire()
        self._stalled = True

    def resume(self) -> None:
        """Resume item production after a stall."""
        if not self._stalled:
            raise PipelineError("resume() without a matching stall()")
        self._stalled = False
        self._lock.release()

    @property
    def is_stalled(self) -> bool:
        """True while the manager holds the pipeline stalled."""
        return self._stalled

    # ------------------------------------------------------------------
    # Query activation (called by the manager, pipeline stalled)
    # ------------------------------------------------------------------
    def activate(self, registration: RegisteredQuery) -> None:
        """Install a query into ``Q`` and emit its start control tuple.

        Must be called while stalled.  Sets the registration's start
        position to the next unprocessed scan tuple, appends the
        QueryStart control tuple, and begins setting bit ``n`` on
        subsequent fact tuples.
        """
        if not self._stalled:
            raise PipelineError("activate() requires a stalled preprocessor")
        query = registration.query
        fact_matcher = None
        if query.fact_predicate is not None:
            fact_matcher = query.fact_predicate.bind(self.star.fact)
        snapshot = None
        if query.snapshot_id is not None and self.versioned_fact is not None:
            snapshot = Snapshot(query.snapshot_id)
        active = _ActiveQuery(registration, fact_matcher, snapshot)
        self._active[registration.query_id] = active
        if fact_matcher is None and snapshot is None:
            self._unconditional_mask |= active.bit
        else:
            self._conditional.append(active)
        registration.start_position = self.scan.next_position
        self._starts.setdefault(registration.start_position, []).append(
            registration
        )
        self._pending_control.append(QueryStart(self._next_sequence(), registration))
        self.stats.control_tuples += 1

    def cancel(self, registration: RegisteredQuery) -> bool:
        """Deregister an active query early (DESIGN.md section 10).

        Must be called while stalled.  Removes the query from ``Q`` (no
        further fact tuples carry its bit), forgets its wrap-around
        start position, and appends its QueryEnd control tuple — which
        flows through the pipeline *behind* any in-flight tuples still
        carrying the bit, so the Distributor tears the query down in
        order, exactly like a natural wrap.  Returns False when the
        query is not active here (already wrapped, or admitted with an
        empty fact table); its normal completion is then imminent.
        """
        if not self._stalled:
            raise PipelineError("cancel() requires a stalled preprocessor")
        query_id = registration.query_id
        if query_id not in self._active:
            return False
        self._deactivate(query_id)
        position = registration.start_position
        started_here = self._starts.get(position)
        if started_here is not None:
            remaining = [
                entry for entry in started_here if entry is not registration
            ]
            if remaining:
                self._starts[position] = remaining
            else:
                del self._starts[position]
        self._pending_control.append(
            QueryEnd(self._next_sequence(), query_id)
        )
        self.stats.control_tuples += 1
        return True

    def finish_immediately(self, registration: RegisteredQuery) -> None:
        """Emit start+end back to back (empty fact table admission)."""
        if not self._stalled:
            raise PipelineError("finish_immediately() requires a stall")
        self._pending_control.append(QueryStart(self._next_sequence(), registration))
        self._pending_control.append(
            QueryEnd(self._next_sequence(), registration.query_id)
        )
        self.stats.control_tuples += 2

    @property
    def active_query_ids(self) -> list[int]:
        """Ids of queries currently in ``Q``."""
        return list(self._active)

    @property
    def active_count(self) -> int:
        """Number of queries currently in ``Q``."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Item production
    # ------------------------------------------------------------------
    def next_items(self, max_items: int) -> list:
        """Produce up to ``max_items`` pipeline items.

        Returns an empty list when there is nothing to do (no active
        queries and no pending control tuples).
        """
        with self._lock:
            items: list = []
            while self._pending_control and len(items) < max_items:
                items.append(self._pending_control.popleft())
            if not self._active:
                return items
            while len(items) < max_items:
                produced = self.scan.next()
                if produced is None:
                    break  # empty table; nothing to stream
                position, row = produced
                self.stats.tuples_scanned += 1
                ended = self._handle_wraparound(position)
                if ended:
                    items.extend(ended)
                    if not self._active:
                        break
                bits = self._initial_bits(position, row)
                if bits == 0:
                    self.stats.tuples_preprocessor_dropped += 1
                    continue
                items.append(
                    FactTuple(self._next_sequence(), position, row, bits)
                )
            return items

    def next_batched_items(self, max_rows: int) -> list:
        """Produce pipeline items with fact tuples grouped into batches.

        The batched-path twin of :meth:`next_items`: emits the same
        logical stream (same per-row sequence numbers, same relative
        order of control tuples and fact rows), but runs of consecutive
        fact rows are packed into :class:`FactBatch` columns.  A batch
        never spans a control tuple — the open batch is flushed before
        any QueryEnd is appended — so downstream re-serialization keeps
        the section 3.3.3 ordering property unchanged.
        """
        with self._lock:
            items: list = []
            while self._pending_control and len(items) < max_rows:
                items.append(self._pending_control.popleft())
            # controls spend item budget exactly like the tuple path:
            # a pending QueryStart must never be overtaken by a fact
            # row carrying that query's bit
            if self._pending_control or not self._active:
                return items
            budget = max_rows - len(items)
            stats = self.stats
            scan = self.scan
            # machine i64 columns (DESIGN.md section 14): 8 bytes per
            # row, bulk range-extends, and buffer-protocol views for
            # the kernels and the shared-memory transport
            sequences = array("q")
            positions = array("q")
            rows: list[tuple] = []
            bitvectors: list[int] = []
            # hoisted bit sources; refreshed whenever a wraparound can
            # mutate the active set (the only mutator under this lock)
            unconditional = self._unconditional_mask
            conditional = self._conditional
            versioned = self.versioned_fact

            def flush() -> None:
                if rows:
                    items.append(
                        FactBatch(
                            sequences[:],
                            positions[:],
                            list(rows),
                            list(bitvectors),
                        )
                    )
                    del sequences[:]
                    del positions[:]
                    rows.clear()
                    bitvectors.clear()

            produced_rows = 0
            while produced_rows < budget:
                if scan.table.row_count == 0:
                    break  # empty table; nothing to stream
                # arrival at the next position may wrap queries around
                position = scan.next_position
                ended = self._handle_wraparound(position)
                if ended:
                    flush()
                    items.extend(ended)
                    # ends spend item budget too, like the tuple path
                    budget -= len(ended)
                    if not self._active:
                        break
                    unconditional = self._unconditional_mask
                    conditional = self._conditional
                # a run must stop before the next registered start
                # position so every wrap-around is observed on arrival
                limit = budget - produced_rows
                for start_position in self._starts:
                    if position < start_position < position + limit:
                        limit = start_position - position
                produced = scan.next_run(limit)
                if produced is None:
                    break
                run_start, run_rows = produced
                stats.tuples_scanned += len(run_rows)
                if not conditional:
                    # every active query is unconditional: the whole
                    # run shares one initial bit-vector, so the columns
                    # extend in bulk with no per-row work
                    bits = unconditional
                    if bits == 0:
                        stats.tuples_preprocessor_dropped += len(run_rows)
                        continue
                    run_length = len(run_rows)
                    sequence = self._sequence
                    sequences.extend(
                        range(sequence + 1, sequence + run_length + 1)
                    )
                    self._sequence = sequence + run_length
                    positions.extend(
                        range(run_start, run_start + run_length)
                    )
                    rows.extend(run_rows)
                    bitvectors.extend([bits] * run_length)
                    produced_rows += run_length
                    continue
                for offset, row in enumerate(run_rows):
                    row_position = run_start + offset
                    # inline _initial_bits (the per-row hot path)
                    bits = unconditional
                    for active in conditional:
                        if active.snapshot is not None and not active.snapshot.can_see(
                            versioned.version_at(row_position)
                        ):
                            continue
                        if active.fact_matcher is not None and not active.fact_matcher(
                            row
                        ):
                            continue
                        bits |= active.bit
                    if bits == 0:
                        stats.tuples_preprocessor_dropped += 1
                        continue
                    produced_rows += 1
                    self._sequence += 1
                    sequences.append(self._sequence)
                    positions.append(row_position)
                    rows.append(row)
                    bitvectors.append(bits)
            flush()
            return items

    def _handle_wraparound(self, position: int) -> list[QueryEnd]:
        """Emit QueryEnd for queries whose scan wrapped to ``position``."""
        registrations = self._starts.get(position)
        if not registrations:
            return []
        ends: list[QueryEnd] = []
        remaining: list[RegisteredQuery] = []
        for registration in registrations:
            if registration.awaiting_first_tuple:
                registration.awaiting_first_tuple = False
                remaining.append(registration)
            else:
                self._deactivate(registration.query_id)
                ends.append(
                    QueryEnd(self._next_sequence(), registration.query_id)
                )
                self.stats.control_tuples += 1
        if remaining:
            self._starts[position] = remaining
        else:
            del self._starts[position]
        return ends

    def _deactivate(self, query_id: int) -> None:
        active = self._active.pop(query_id, None)
        if active is None:
            raise PipelineError(f"query {query_id} is not active")
        self._unconditional_mask &= ~active.bit
        self._conditional = [
            entry for entry in self._conditional if entry is not active
        ]

    def _initial_bits(self, position: int, row: tuple) -> int:
        bits = self._unconditional_mask
        for active in self._conditional:
            if active.snapshot is not None and not active.snapshot.can_see(
                self.versioned_fact.version_at(position)
            ):
                continue
            if active.fact_matcher is not None and not active.fact_matcher(row):
                continue
            bits |= active.bit
        return bits

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence
