"""Galaxy-schema queries: fact-to-fact joins over star sub-plans

(paper section 5, "Galaxy Schemata").

A query joining two fact tables is split at the fact-to-fact join
into two star sub-queries Qa / Qb.  Each sub-query registers with the
CJOIN operator of its own star as a *listing* query (no aggregation),
projecting its join key plus whatever the final query needs; the
Distributor's output then feeds a fact-to-fact hash join, and the join
output feeds the final aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cjoin.operator import CJoinOperator
from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec, make_accumulator
from repro.query.star import StarQuery


@dataclass(frozen=True)
class GalaxyJoinQuery:
    """A two-star query joined on one fact-to-fact equi-join.

    Attributes:
        left / right: star sub-queries; both must be listing queries
            (no aggregates), with their select lists containing the
            join columns.
        left_join_column / right_join_column: positions *within each
            sub-query's select list* of the join key.
        group_by_columns: positions within the concatenated
            (left.select + right.select) output used as group key.
        aggregates: aggregate kinds over positions of the concatenated
            output, as (kind, position) pairs; e.g. ("sum", 3).
    """

    left: StarQuery
    right: StarQuery
    left_join_column: int
    right_join_column: int
    group_by_columns: tuple[int, ...] = ()
    aggregates: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.left.is_aggregation or self.right.is_aggregation:
            raise QueryError(
                "galaxy sub-queries must be listing queries; aggregation "
                "happens after the fact-to-fact join"
            )
        if not 0 <= self.left_join_column < len(self.left.select):
            raise QueryError("left join column outside the select list")
        if not 0 <= self.right_join_column < len(self.right.select):
            raise QueryError("right join column outside the select list")


def evaluate_galaxy_join(
    galaxy_query: GalaxyJoinQuery,
    left_operator: CJoinOperator,
    right_operator: CJoinOperator,
) -> list[tuple]:
    """Evaluate a galaxy join using one CJOIN operator per star.

    Both sub-queries are registered concurrently (each shares work with
    whatever other queries are in flight on its operator); the
    fact-to-fact join runs on the listed outputs.
    """
    left_handle = left_operator.submit(galaxy_query.left)
    right_handle = right_operator.submit(galaxy_query.right)
    # Drive both pipelines; the operators may share a catalog but own
    # independent scans.
    left_operator.run_until_drained()
    right_operator.run_until_drained()
    left_rows = left_handle.results()
    right_rows = right_handle.results()
    joined = _hash_join(
        left_rows,
        right_rows,
        galaxy_query.left_join_column,
        galaxy_query.right_join_column,
    )
    return _aggregate(galaxy_query, joined)


def _hash_join(
    left_rows: list[tuple],
    right_rows: list[tuple],
    left_key: int,
    right_key: int,
) -> list[tuple]:
    """Equi-join two listings; output rows are left + right concatenated."""
    build: dict[object, list[tuple]] = {}
    for row in left_rows:
        build.setdefault(row[left_key], []).append(row)
    joined = []
    for right_row in right_rows:
        for left_row in build.get(right_row[right_key], ()):
            joined.append(left_row + right_row)
    return joined


def _aggregate(galaxy_query: GalaxyJoinQuery, joined: list[tuple]) -> list[tuple]:
    """Group and aggregate the joined rows (canonical sorted output)."""
    if not galaxy_query.aggregates:
        return sorted(joined)
    groups: dict[tuple, list] = {}
    for row in joined:
        key = tuple(row[i] for i in galaxy_query.group_by_columns)
        state = groups.get(key)
        if state is None:
            state = [
                make_accumulator(AggregateSpec(kind, "galaxy", f"col{pos}"))
                for kind, pos in galaxy_query.aggregates
            ]
            groups[key] = state
        for accumulator, (kind, position) in zip(state, galaxy_query.aggregates):
            accumulator.add(row[position])
    rows = [
        key + tuple(acc.result() for acc in accumulators)
        for key, accumulators in groups.items()
    ]
    rows.sort(key=lambda row: row[: len(galaxy_query.group_by_columns)])
    return rows
