"""Pipeline assembly: the ordered Filter chain between Preprocessor

and Distributor.  Pure wiring — execution strategies live in
:mod:`repro.cjoin.executor`, lifecycle logic in
:mod:`repro.cjoin.manager`.
"""

from __future__ import annotations

from repro.cjoin.batch import FactBatch
from repro.cjoin.distributor import Distributor
from repro.cjoin.filter import Filter
from repro.cjoin.preprocessor import Preprocessor
from repro.cjoin.stats import PipelineStats
from repro.cjoin.tuples import ControlTuple, FactTuple
from repro.errors import PipelineError


class CJoinPipeline:
    """The always-on operator pipeline of Figure 1."""

    def __init__(
        self,
        preprocessor: Preprocessor,
        distributor: Distributor,
        stats: PipelineStats,
    ) -> None:
        self.preprocessor = preprocessor
        self.distributor = distributor
        self.stats = stats
        self.filters: list[Filter] = []

    # ------------------------------------------------------------------
    # Filter chain maintenance (manager-only, pipeline stalled)
    # ------------------------------------------------------------------
    def add_filter(self, new_filter: Filter) -> None:
        """Append a Filter (Algorithm 1 line 18)."""
        if any(f.name == new_filter.name for f in self.filters):
            raise PipelineError(f"filter {new_filter.name!r} already present")
        self.filters.append(new_filter)
        self.stats.record_order(self.filter_order())

    def remove_filter(self, name: str) -> Filter:
        """Remove the Filter for dimension ``name`` (Algorithm 2 line 12)."""
        for index, existing in enumerate(self.filters):
            if existing.name == name:
                removed = self.filters.pop(index)
                self.stats.record_order(self.filter_order())
                return removed
        raise PipelineError(f"no filter for dimension {name!r}")

    def reorder(self, new_order: list[Filter]) -> None:
        """Install a new filter order (run-time optimization)."""
        if sorted(f.name for f in new_order) != sorted(
            f.name for f in self.filters
        ):
            raise PipelineError("reorder must permute the existing filters")
        self.filters = list(new_order)
        self.stats.record_order(self.filter_order())

    def filter_order(self) -> tuple[str, ...]:
        """Current dimension order of the filter chain."""
        return tuple(f.name for f in self.filters)

    def filter_for(self, name: str) -> Filter:
        """Return the Filter for dimension ``name``."""
        for existing in self.filters:
            if existing.name == name:
                return existing
        raise PipelineError(f"no filter for dimension {name!r}")

    def has_filter(self, name: str) -> bool:
        """True iff a Filter for dimension ``name`` is installed."""
        return any(f.name == name for f in self.filters)

    # ------------------------------------------------------------------
    # Item processing (used by executors)
    # ------------------------------------------------------------------
    def run_filters(self, fact_tuple: FactTuple) -> bool:
        """Run ``fact_tuple`` through the whole chain; True iff it survives."""
        for stage_filter in self.filters:
            if not stage_filter.process(fact_tuple):
                return False
        return True

    def run_filters_batch(self, batch: FactBatch) -> None:
        """Run a whole batch through the chain (vectorized fast path).

        Stops early once no row survives; the Distributor treats a
        fully-dead batch as a no-op.
        """
        for stage_filter in self.filters:
            stage_filter.process_batch(batch)
            if not batch.live:
                return

    def process_item(self, item) -> None:
        """Process one item end-to-end (synchronous execution)."""
        if isinstance(item, ControlTuple):
            self.distributor.process(item)
            return
        if isinstance(item, FactBatch):
            self.run_filters_batch(item)
            self.distributor.process(item)
            return
        if self.run_filters(item):
            self.distributor.process(item)
