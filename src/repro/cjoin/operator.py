"""The public CJOIN operator facade.

Wires scan, Preprocessor, Filters, Distributor, Pipeline Manager and
an executor into one object with the paper's usage model: submit star
queries at any time; each completes after one wrap of the continuous
scan.

Synchronous usage (deterministic; the default):

    operator = CJoinOperator(catalog, star)
    handles = [operator.submit(q) for q in queries]
    operator.run_until_drained()
    rows = handles[0].results()

Threaded usage (architecture demonstration, section 4):

    operator = CJoinOperator(catalog, star,
                             executor_config=ExecutorConfig(
                                 mode="horizontal", stage_threads=(4,)))
    operator.start()
    handle = operator.submit(query)
    handle.wait()
    operator.stop()
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin import kernels
from repro.cjoin.distributor import Distributor
from repro.cjoin.executor import (
    ExecutorConfig,
    SynchronousExecutor,
    ThreadedExecutor,
)
from repro.cjoin.manager import PipelineManager
from repro.cjoin.optimizer import OrderingPolicy
from repro.cjoin.pipeline import CJoinPipeline
from repro.cjoin.preprocessor import Preprocessor
from repro.cjoin.registry import QueryHandle
from repro.cjoin.stats import PipelineStats
from repro.errors import PipelineError
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.mvcc import VersionedTable
from repro.storage.scan import ContinuousScan

#: Default buffer pool size when the caller does not supply one.
DEFAULT_BUFFER_POOL_PAGES = 1024


class CJoinOperator:
    """An always-on shared star-join operator over one fact table."""

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema | None = None,
        buffer_pool: BufferPool | None = None,
        max_concurrent: int = 256,
        ordering_policy: OrderingPolicy | None = None,
        executor_config: ExecutorConfig | None = None,
        versioned_fact: VersionedTable | None = None,
        probe_skip: bool = True,
        aggregation_mode: str = "hash",
    ) -> None:
        self.catalog = catalog
        self.star = star if star is not None else self._single_star(catalog)
        self.buffer_pool = (
            buffer_pool
            if buffer_pool is not None
            else BufferPool(DEFAULT_BUFFER_POOL_PAGES)
        )
        self.stats = PipelineStats()
        fact_table = catalog.table(self.star.fact.name)
        self.scan = ContinuousScan(fact_table, self.buffer_pool)
        self.preprocessor = Preprocessor(
            self.scan, self.star, self.stats, versioned_fact
        )
        config = executor_config if executor_config is not None else ExecutorConfig()
        #: resolved batch kernel (DESIGN.md section 14); None on the
        #: tuple path and under kernel='off'
        self.kernel = (
            kernels.resolve(config.kernel)
            if config.execution == "batched"
            else None
        )
        self.distributor = Distributor(
            self.star,
            self.stats,
            aggregation_mode=aggregation_mode,
            kernel=self.kernel,
        )
        self.pipeline = CJoinPipeline(
            self.preprocessor, self.distributor, self.stats
        )
        self.manager = PipelineManager(
            catalog,
            self.star,
            self.pipeline,
            self.buffer_pool,
            self.stats,
            max_concurrent=max_concurrent,
            ordering_policy=ordering_policy,
            probe_skip=probe_skip,
            kernel=self.kernel,
        )
        self.distributor.on_query_finished = self.manager.on_query_finished
        self._rate_anchor: tuple[float, int] | None = None
        if config.mode == "synchronous":
            self.executor = SynchronousExecutor(self.pipeline, self.manager, config)
        else:
            self.executor = ThreadedExecutor(self.pipeline, self.manager, config)

    @staticmethod
    def _single_star(catalog: Catalog) -> StarSchema:
        names = catalog.star_names()
        if len(names) != 1:
            raise PipelineError(
                "catalog defines multiple stars; pass the star schema explicitly"
            )
        return catalog.star(names[0])

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def submit(
        self, query: StarQuery, handle: QueryHandle | None = None
    ) -> QueryHandle:
        """Register a star query with the always-on pipeline.

        ``handle`` keeps a pre-created handle (a queued submission's)
        attached to the query, preserving its submission timestamp for
        admission-wait telemetry.
        """
        return self.manager.admit(query, handle)

    def run_until_drained(self, max_batches: int | None = None) -> None:
        """Drive the pipeline until all submitted queries complete.

        Only valid with the synchronous executor.
        """
        if not isinstance(self.executor, SynchronousExecutor):
            raise PipelineError(
                "run_until_drained() requires the synchronous executor; "
                "threaded operators complete queries in the background"
            )
        self.executor.run_until_drained(max_batches)

    def execute(self, query: StarQuery) -> list[tuple]:
        """Convenience: submit one query and run it to completion."""
        handle = self.submit(query)
        self.run_until_drained()
        return handle.results()

    # ------------------------------------------------------------------
    # Threaded lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start background threads (threaded executor only)."""
        if not isinstance(self.executor, ThreadedExecutor):
            raise PipelineError("start() requires a threaded executor config")
        self.executor.start()

    def stop(self) -> None:
        """Stop background execution (threads or a continuous driver)."""
        self.executor.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_query_count(self) -> int:
        """Queries admitted and not yet completed/cleaned."""
        return self.manager.active_query_count

    def filter_order(self) -> tuple[str, ...]:
        """Current dimension order of the filter chain."""
        return self.pipeline.filter_order()

    def status_report(self) -> str:
        """Operator status for ops tooling and dashboards.

        Summarizes the live pipeline: registered queries with their
        progress, the current filter order with observed drop rates,
        hash-table sizes, and cumulative sharing statistics.
        """
        lines = [
            f"CJOIN operator on fact {self.star.fact.name!r}: "
            f"{self.active_query_count} quer"
            f"{'y' if self.active_query_count == 1 else 'ies'} in flight"
        ]
        for query_id, registration in sorted(
            self.manager._registrations.items()
        ):
            handle = registration.handle
            label = registration.query.label or f"query-{query_id}"
            state = "done" if handle.done else f"{handle.progress:.0%}"
            lines.append(f"  Q{query_id} [{label}] {state}")
        if self.pipeline.filters:
            chain = " -> ".join(
                f"{f.name}(drop {f.stats.drop_rate:.0%}, "
                f"{f.hash_table.tuple_count} tuples)"
                for f in self.pipeline.filters
            )
            lines.append(f"filters: {chain}")
        else:
            lines.append("filters: (none installed)")
        stats = self.stats
        lines.append(
            f"lifetime: {stats.tuples_scanned} tuples scanned, "
            f"{stats.probes_per_tuple:.2f} probes/tuple, "
            f"{stats.queries_completed}/{stats.queries_admitted} queries "
            f"completed, {stats.reoptimizations} reoptimizations"
        )
        return "\n".join(lines)

    def tuples_per_second(self) -> float:
        """Live scan throughput since the first call (ETA feedback).

        Returns 0.0 on the first call, which anchors the measurement
        window; callers poll it periodically while the pipeline runs.
        """
        import time

        now = time.perf_counter()
        if self._rate_anchor is None:
            self._rate_anchor = (now, self.stats.tuples_scanned)
            return 0.0
        anchor_time, anchor_tuples = self._rate_anchor
        elapsed = now - anchor_time
        if elapsed <= 0:
            return 0.0
        return (self.stats.tuples_scanned - anchor_tuples) / elapsed
