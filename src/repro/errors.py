"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass that describes the failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition or lookup is invalid (unknown table/column,

    duplicate names, malformed foreign keys, non-star topology, ...).
    """


class StorageError(ReproError):
    """A storage-layer operation failed (bad page id, full page, scan

    misuse, missing partition, ...).
    """


class SnapshotError(StorageError):
    """A multi-version visibility operation is invalid (unknown snapshot,

    write to a committed snapshot, ...).
    """


class PersistenceError(StorageError):
    """A durable-storage operation failed (no snapshot in the data
    directory, checksum mismatch, unreadable manifest, WAL misuse, ...).

    Torn WAL tails are *not* errors — recovery replays the longest
    valid prefix silently (DESIGN.md section 16).
    """


class QueryError(ReproError):
    """A query object is malformed with respect to its schema."""


class ParseError(QueryError):
    """SQL text could not be parsed into a star query.

    Attributes:
        position: character offset in the source text, when known.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CancelledError(QueryError):
    """The query was cancelled before it produced results.

    Raised by result accessors (``QueryHandle.results()``, cursor
    fetches, handle iteration) of a query whose ``cancel()`` succeeded.
    """


class AdmissionError(ReproError):
    """A query could not be registered with the CJOIN pipeline

    (operator at maxConc capacity, duplicate registration, unsupported
    query shape, ...).
    """


class PipelineError(ReproError):
    """The CJOIN pipeline reached an inconsistent state, or was driven

    through an illegal transition (e.g. processing while stalled).
    """


class ConfigError(PipelineError):
    """An execution configuration is invalid (unknown mode/backend,

    out-of-range worker or batch counts, inconsistent stage layouts,
    ...).  Subclasses :class:`PipelineError` so pre-existing callers
    that catch configuration problems at pipeline granularity keep
    working.
    """


class IngestError(ReproError):
    """A streaming-ingest operation failed (batch rejected at close,
    invalid write set, apply failure, ...)."""


class IngestBackpressureError(IngestError):
    """The bounded ingest buffer is full; the write was not staged.

    Back-pressure, not failure: retry after the scan-boundary apply
    drains the buffer, or raise the buffer capacity.
    """


class BenchmarkError(ReproError):
    """An experiment harness was configured with invalid parameters."""
