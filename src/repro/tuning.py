"""The unified runtime-tuning surface (DESIGN.md section 13).

Every knob that defends the paper's predictability claim used to be a
loose constructor keyword scattered across three layers:
``max_in_flight`` and ``admission_queue_depth`` on the service,
``workers`` and ``batch_size`` on the executor config, ``idle_sleep``
on both.  :class:`TuningConfig` consolidates them into one validated,
immutable value object that is also the unit of *runtime*
reconfiguration: ``Warehouse.reconfigure(tuning)`` threads a new
config through service → executor → process backend atomically, which
is what lets the adaptive controller (:mod:`repro.engine.autotune`)
resize a live warehouse between scan cycles.

This module sits below every engine layer (it depends only on
:mod:`repro.errors`), so the executor, the service, the warehouse,
and the server can all import it without cycles.  The range-bound
constants and the ``_require_int`` / ``_require_float`` validators
moved here from :mod:`repro.cjoin.executor`, which re-exports them
for compatibility.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.errors import ConfigError

#: Default number of items pulled from the Preprocessor per batch.
DEFAULT_BATCH_SIZE = 256

#: Upper bound on process-parallel workers: beyond this, shard setup
#: cost dwarfs any conceivable speedup on real hardware.
MAX_WORKERS = 128

#: Upper bound on per-stage worker threads (same rationale).
MAX_STAGE_THREADS = 64

#: Upper bound on batch_size: one batch should never be asked to hold
#: more rows than a large fact table, which only wastes memory.
MAX_BATCH_SIZE = 1 << 20

#: Upper bound on maxConc / service in-flight limits: bit-vectors are
#: arbitrary-precision ints, but beyond this bound every per-tuple
#: bit operation touches kilobytes of limbs for no plausible workload.
MAX_CONCURRENT_QUERIES = 1 << 16

#: Upper bound on the service's pending-admission FIFO.
MAX_ADMISSION_QUEUE_DEPTH = 1 << 20

#: Upper bound on the service's idle-throttle sleep, in seconds: a
#: larger value only adds admission latency, never saves more CPU.
MAX_IDLE_SLEEP = 60.0

#: Default idle-throttle sleep for continuous mode.
DEFAULT_IDLE_SLEEP = 0.001

#: Default bound on submissions waiting for an in-flight slot.
DEFAULT_ADMISSION_QUEUE_DEPTH = 1024

#: Default per-connection bound on concurrently submitted statements
#: (the server-side fairness layer, docs/ARCHITECTURE.md section 4).
DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION = 16

#: Batch-kernel selection modes (DESIGN.md section 14): 'auto' picks
#: the pure-Python kernels (measured fastest — the hot passes are
#: already C-level map traffic, and numpy's per-batch array builds
#: cost more than its vector AND saves); 'python' / 'numpy' force one
#: implementation ('numpy' is the opt-in accelerator and requires an
#: importable numpy); 'off' keeps the per-row reference loops (the
#: comparison base for benchmarks/bench_kernel_cost.py).
KERNEL_MODES = ("auto", "python", "numpy", "off")

#: Default kernel mode: the batch kernels, always correct everywhere.
DEFAULT_KERNEL = "auto"


def _require_int(name: str, value, low: int, high: int) -> None:
    """Range-check an integer config field with an actionable message."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"{name} must be an int, got {value!r} "
            f"({type(value).__name__})"
        )
    if not low <= value <= high:
        raise ConfigError(
            f"{name} must be in [{low}, {high}], got {value}"
        )


def _require_float(name: str, value, low: float, high: float) -> None:
    """Range-check a numeric config field with an actionable message."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"{name} must be a number, got {value!r} "
            f"({type(value).__name__})"
        )
    if not low <= value <= high:
        raise ConfigError(
            f"{name} must be in [{low}, {high}], got {value}"
        )


@dataclass(frozen=True)
class TuningConfig:
    """The runtime-tunable knobs of one warehouse, as one value.

    Immutable and validated on construction, so a config that exists
    is a config that can be applied; runtime changes build a new value
    (:meth:`replace`) and hand it to ``Warehouse.reconfigure``.

    Attributes:
        max_in_flight: bound on concurrently registered CJOIN queries;
            ``None`` defers to the operator's ``max_concurrent`` (and
            any explicit value is clamped to it at apply time).
        admission_queue_depth: bound on submissions waiting for an
            in-flight slot before :class:`~repro.errors.AdmissionError`
            back-pressure kicks in.
        idle_sleep: service driver sleep, in seconds, between polls
            while no query is registered.
        workers: fact-table shards / worker processes for the process
            backend; must stay 1 for the serial backend.
        batch_size: items per preprocessor batch (both backends).
        kernel: batch-kernel mode for the vectorized hot path, one of
            :data:`KERNEL_MODES` (DESIGN.md section 14).
    """

    max_in_flight: int | None = None
    admission_queue_depth: int = DEFAULT_ADMISSION_QUEUE_DEPTH
    idle_sleep: float = DEFAULT_IDLE_SLEEP
    workers: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if self.max_in_flight is not None:
            _require_int(
                "max_in_flight", self.max_in_flight, 1, MAX_CONCURRENT_QUERIES
            )
        _require_int(
            "admission_queue_depth",
            self.admission_queue_depth,
            1,
            MAX_ADMISSION_QUEUE_DEPTH,
        )
        _require_float("idle_sleep", self.idle_sleep, 0.0, MAX_IDLE_SLEEP)
        _require_int("workers", self.workers, 1, MAX_WORKERS)
        _require_int("batch_size", self.batch_size, 1, MAX_BATCH_SIZE)
        if self.kernel not in KERNEL_MODES:
            raise ConfigError(
                f"kernel must be one of {KERNEL_MODES}, got {self.kernel!r}"
            )

    def replace(self, **changes) -> "TuningConfig":
        """A new config with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """A JSON-able snapshot (the ``tuning`` key of stats frames)."""
        return dataclasses.asdict(self)


#: Legacy constructor keywords each shimmed call site may still pass,
#: mapped to their TuningConfig field (here: names are identical).
_LEGACY_FIELDS = (
    "max_in_flight",
    "admission_queue_depth",
    "idle_sleep",
    "workers",
    "batch_size",
)


def resolve_tuning(
    tuning: TuningConfig | None,
    deprecated: dict,
    *,
    allowed: tuple[str, ...],
    where: str,
) -> TuningConfig:
    """Fold legacy keyword arguments into one :class:`TuningConfig`.

    The deprecation-shim helper behind ``Warehouse(...)`` and
    ``WarehouseService(...)``: ``deprecated`` is the ``**kwargs``
    catch-all of a shimmed constructor.  Legacy keywords named in
    ``allowed`` emit a :class:`DeprecationWarning` and map onto the
    matching ``TuningConfig`` field; anything else raises ``TypeError``
    exactly like a genuinely unknown keyword.  Because ``deprecated``
    only holds keywords the caller actually spelled out, every entry —
    including an explicit ``None`` — is validated as a real value by
    :class:`TuningConfig` (so ``idle_sleep=None`` still raises
    ``ConfigError`` while ``max_in_flight=None`` stays legal, exactly
    as the pre-shim constructors behaved).

    Raises:
        TypeError: on a keyword outside ``allowed``.
        ConfigError: when both ``tuning=`` and a legacy keyword are
            given — the caller must pick one spelling.
    """
    unknown = [name for name in deprecated if name not in allowed]
    if unknown:
        raise TypeError(
            f"{where}() got an unexpected keyword argument "
            f"{unknown[0]!r}"
        )
    legacy = dict(deprecated)
    if not legacy:
        return tuning if tuning is not None else TuningConfig()
    if tuning is not None:
        raise ConfigError(
            f"{where}() got both tuning= and the legacy keyword(s) "
            f"{sorted(legacy)}; pass every knob through tuning="
        )
    warnings.warn(
        f"{where}({', '.join(sorted(legacy))}=...) is deprecated; pass "
        f"tuning=TuningConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return TuningConfig(**legacy)
