"""Analytic performance model of the CJOIN operator.

The model executes the same logic as the real pipeline at the level of
aggregate rates:

* the continuous scan streams the fact table at the disk's sequential
  bandwidth (it is never random — the single scan is the whole point);
* every tuple pays the Preprocessor cost plus, per Filter, one probe
  and one bit-vector AND; Filter work is spread over the stage
  threads according to the configured layout (section 4);
* a query's response time is one full scan cycle from its admission
  point plus its submission overhead; queries in a closed loop of n
  complete at rate n / cycle, capped by the serialized admission rate.

All shapes the paper reports emerge from these three statements: the
flat response-time curve (Figure 6), linear throughput scale-up until
the bit-vector AND width makes the CPU the bottleneck (Figure 5), the
selectivity knee when hash tables outgrow the cache (Figure 7), and
the rising normalized throughput as submission overhead amortizes
(Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError
from repro.sim.costs import CostModel, WorkloadShape
from repro.sim.hardware import HardwareModel


@dataclass(frozen=True)
class StageLayout:
    """How Filters are boxed into Stages and threads (section 4)."""

    mode: str  # 'horizontal', 'vertical', or 'hybrid'
    total_threads: int
    #: filters per stage for 'hybrid'; ignored otherwise
    boxes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("horizontal", "vertical", "hybrid"):
            raise BenchmarkError(f"unknown stage mode {self.mode!r}")
        if self.total_threads < 1:
            raise BenchmarkError("need at least one stage thread")

    @classmethod
    def horizontal(cls, threads: int) -> "StageLayout":
        """All filters in one stage served by ``threads`` threads."""
        return cls("horizontal", threads)

    @classmethod
    def vertical(cls, threads: int, filter_count: int) -> "StageLayout":
        """One stage per filter; extra threads go to the first stages."""
        if threads < filter_count:
            raise BenchmarkError(
                f"vertical layout needs >= {filter_count} threads"
            )
        return cls("vertical", threads)

    @classmethod
    def hybrid(cls, threads: int, boxes: tuple[int, ...]) -> "StageLayout":
        """Explicit boxing of filters into stages."""
        return cls("hybrid", threads, boxes)


@dataclass
class CJoinPerfModel:
    """Closed-form CJOIN performance at a given operating point."""

    hardware: HardwareModel = field(default_factory=HardwareModel)
    costs: CostModel = field(default_factory=CostModel)
    #: filters in the pipeline (the SSB workload references 4 dims)
    filter_count: int = 4

    # ------------------------------------------------------------------
    # Per-tuple CPU cost
    # ------------------------------------------------------------------
    def per_tuple_filter_us(
        self, shape: WorkloadShape, concurrency: int, selectivity: float
    ) -> float:
        """Probe + AND cost of one filter application."""
        return self.costs.probe_us(
            shape, selectivity, self.hardware
        ) + self.costs.and_us(concurrency)

    # ------------------------------------------------------------------
    # Scan cycle time
    # ------------------------------------------------------------------
    def cycle_seconds(
        self,
        shape: WorkloadShape,
        concurrency: int,
        selectivity: float,
        layout: StageLayout | None = None,
    ) -> float:
        """One full continuous-scan cycle (the pipeline's clock)."""
        if layout is None:
            layout = StageLayout.horizontal(self.hardware.filter_threads_max)
        io_seconds = self.hardware.scan_seconds(self.costs.fact_bytes(shape))
        filter_us = self.per_tuple_filter_us(shape, concurrency, selectivity)
        cpu_seconds = self._stage_seconds(shape, filter_us, layout)
        preprocess_seconds = shape.fact_rows * self.costs.preprocess_us * 1e-6
        # the Preprocessor has its own core; it caps rather than adds
        return max(io_seconds, cpu_seconds, preprocess_seconds)

    def _stage_seconds(
        self, shape: WorkloadShape, filter_us: float, layout: StageLayout
    ) -> float:
        rows = shape.fact_rows
        if layout.mode == "horizontal":
            chain_us = self.filter_count * filter_us
            return rows * chain_us * 1e-6 / layout.total_threads
        if layout.mode == "vertical":
            boxes = tuple(1 for _ in range(self.filter_count))
        else:
            boxes = layout.boxes
            if sum(boxes) != self.filter_count:
                raise BenchmarkError(
                    f"hybrid boxes {boxes} do not cover {self.filter_count} "
                    f"filters"
                )
        threads = self._spread_threads(layout.total_threads, len(boxes))
        # each stage boundary costs a transfer per surviving tuple; the
        # bottleneck stage sets the rate
        worst = 0.0
        for stage_filters, stage_threads in zip(boxes, threads):
            stage_us = (
                stage_filters * filter_us + self.costs.transfer_us
            ) / stage_threads
            worst = max(worst, stage_us)
        return rows * worst * 1e-6

    @staticmethod
    def _spread_threads(total: int, stages: int) -> list[int]:
        base = [1] * stages
        extra = total - stages
        if extra < 0:
            raise BenchmarkError(
                f"{total} threads cannot serve {stages} stages"
            )
        for index in range(extra):
            base[index % stages] += 1
        return base

    # ------------------------------------------------------------------
    # Query-level metrics
    # ------------------------------------------------------------------
    def submission_seconds(
        self, shape: WorkloadShape, selectivity: float
    ) -> float:
        """Admission overhead for one query (Tables 1-3)."""
        return self.costs.submission_seconds(shape, selectivity)

    def response_seconds(
        self,
        shape: WorkloadShape,
        concurrency: int,
        selectivity: float,
        layout: StageLayout | None = None,
    ) -> float:
        """Response time: submission plus one wrap of the scan."""
        return self.submission_seconds(shape, selectivity) + self.cycle_seconds(
            shape, concurrency, selectivity, layout
        )

    def throughput_qph(
        self,
        shape: WorkloadShape,
        concurrency: int,
        selectivity: float,
        layout: StageLayout | None = None,
    ) -> float:
        """Steady-state queries/hour with n queries in closed loop.

        Completions arrive at rate n/cycle; admissions serialize in the
        Pipeline Manager, capping the rate at 1/T_sub.
        """
        cycle = self.cycle_seconds(shape, concurrency, selectivity, layout)
        completion_rate = concurrency / cycle
        admission_rate = 1.0 / self.submission_seconds(shape, selectivity)
        return 3600.0 * min(completion_rate, admission_rate)
