"""Analytic performance model of the query-at-a-time comparators.

Both comparison systems execute each star query with a private plan
(one fact scan + a hash-join pipeline), so n concurrent queries mean
n mutually-unaware scans.  The model has three terms:

* **I/O contention**: interleaved scans turn sequential access into
  seeks; the effective per-query scan time is the solo scan time times
  a superlinear contention factor ``1 + gamma * (n-1)^delta``.
  gamma/delta are calibrated per system from the paper's Figure 6
  endpoints (System X degrades 19x from n=1 to 256, PostgreSQL 66x)
  and reproduce the throughput peak near n=32 in Figure 5.
* **CPU**: per-tuple join work; with more queries than cores, each
  query's CPU share shrinks proportionally.
* **Memory pressure**: per-query hash tables and scan buffers; when
  aggregate demand exceeds RAM the system spills and thrashes (the
  regime where the paper had to terminate PostgreSQL's s=10% run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError
from repro.sim.costs import CostModel, WorkloadShape
from repro.sim.hardware import HardwareModel


@dataclass(frozen=True)
class SystemProfile:
    """Calibrated constants for one comparison system."""

    name: str
    per_tuple_cpu_us: float
    contention_gamma: float
    contention_delta: float
    #: response-time multiplier per unit of RAM overcommit
    thrash_factor: float

    @classmethod
    def system_x(cls) -> "SystemProfile":
        """The commercial row store ("System X")."""
        return cls(
            name="system_x",
            per_tuple_cpu_us=0.11,
            contention_gamma=0.0133,
            contention_delta=1.3,
            thrash_factor=1.0,
        )

    @classmethod
    def postgresql(cls) -> "SystemProfile":
        """PostgreSQL with shared scans enabled."""
        return cls(
            name="postgresql",
            per_tuple_cpu_us=0.266,
            contention_gamma=0.048,
            contention_delta=1.3,
            thrash_factor=4.0,
        )


@dataclass
class BaselinePerfModel:
    """Closed-form comparator performance at an operating point."""

    profile: SystemProfile
    hardware: HardwareModel = field(default_factory=HardwareModel)
    costs: CostModel = field(default_factory=CostModel)
    #: dimensions joined by the average workload query
    join_count: int = 4

    def contention(self, concurrency: int) -> float:
        """I/O interference multiplier for n interleaved scans."""
        if concurrency < 1:
            raise BenchmarkError("concurrency must be >= 1")
        return 1.0 + self.profile.contention_gamma * (
            (concurrency - 1) ** self.profile.contention_delta
        )

    def memory_overcommit(
        self, shape: WorkloadShape, concurrency: int, selectivity: float
    ) -> float:
        """Aggregate hash demand / RAM (values > 1 mean spilling)."""
        per_query = self.costs.hash_table_bytes(shape, selectivity)
        return per_query * concurrency / self.hardware.ram_bytes

    def response_seconds(
        self, shape: WorkloadShape, concurrency: int, selectivity: float
    ) -> float:
        """Per-query response time with n queries in flight."""
        fact_bytes = self.costs.fact_bytes(shape)
        io = self.hardware.scan_seconds(fact_bytes)
        # seek interference only exists when scans actually hit disk;
        # a RAM-resident data set (small sf) has no I/O contention
        if fact_bytes <= self.hardware.ram_bytes:
            io_part = io
        else:
            io_part = io * self.contention(concurrency)
        cpu_per_query = (
            shape.fact_rows
            * self.join_count
            * self.profile.per_tuple_cpu_us
            * 1e-6
        )
        core_share = max(1.0, concurrency / self.hardware.cores)
        cpu_part = cpu_per_query * core_share
        response = io_part + cpu_part
        overcommit = self.memory_overcommit(shape, concurrency, selectivity)
        if overcommit > 1.0:
            response *= 1.0 + self.profile.thrash_factor * (overcommit - 1.0)
        return response

    def throughput_qph(
        self, shape: WorkloadShape, concurrency: int, selectivity: float
    ) -> float:
        """Steady-state queries/hour with n queries in closed loop."""
        response = self.response_seconds(shape, concurrency, selectivity)
        return 3600.0 * concurrency / response
