"""Virtual-time performance models of CJOIN and the comparison systems.

Python (under the GIL) cannot reproduce the paper's wall-clock
concurrency behaviour, so the evaluation substrate is a calibrated
analytic/event model of the same pipeline logic (see DESIGN.md
section 4).  The models share one set of hardware and cost
constants (:mod:`repro.sim.hardware`, :mod:`repro.sim.costs`),
calibrated against the paper's published tables; every figure harness
in ``benchmarks/`` runs on top of them.

Absolute seconds are *modeled*, not measured; the claims these models
support are the qualitative ones the paper makes: who wins, by what
rough factor, where the crossovers fall, and how response time scales
with concurrency.
"""

from repro.sim.hardware import HardwareModel
from repro.sim.costs import CostModel, WorkloadShape
from repro.sim.cjoin_model import CJoinPerfModel, StageLayout
from repro.sim.baseline_model import BaselinePerfModel, SystemProfile
from repro.sim.concurrency import ClosedLoopSimulator

__all__ = [
    "BaselinePerfModel",
    "CJoinPerfModel",
    "ClosedLoopSimulator",
    "CostModel",
    "HardwareModel",
    "StageLayout",
    "SystemProfile",
    "WorkloadShape",
]
