"""Shared cost constants and workload shape derivation.

Calibration: the admission-cost constants are fitted to the paper's
Tables 2 and 3, which give CJOIN query submission time as a function
of predicate selectivity s and scale factor sf:

    T_sub(s, sf) = fixed + dims(sf) * eval + s * dims(sf) * insert

Fitting the published points (sf=100: 1.6s @ s=0.1%, 2.4s @ s=1%,
11.6s @ s=10%; sf=1: 0.4s; sf=10: 0.7s) yields fixed ~ 0.30s,
eval ~ 0.257 us/row, insert ~ 18.8 us/row; the model then reproduces
every published submission time within ~20%.

The probe cache penalty is calibrated so the s-sweep of Table 2's
response times holds: hash tables of ~9MB (s=1%) cost a mild penalty
while ~95MB (s=10%) approach the full miss penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.sim.hardware import MB, HardwareModel
from repro.ssb.generator import table_row_counts


@dataclass(frozen=True)
class WorkloadShape:
    """Data-volume facts derived from a scale factor."""

    scale_factor: float
    fact_rows: int
    dimension_rows: int

    @classmethod
    def from_scale_factor(cls, scale_factor: float) -> "WorkloadShape":
        """Derive volumes from the SSB scaling rules."""
        counts = table_row_counts(scale_factor)
        dims = sum(
            counts[name] for name in ("customer", "supplier", "part", "date")
        )
        return cls(
            scale_factor=scale_factor,
            fact_rows=counts["lineorder"],
            dimension_rows=dims,
        )


@dataclass(frozen=True)
class CostModel:
    """Per-operation cost constants (microseconds unless noted)."""

    fact_tuple_bytes: float = 157.0
    dim_entry_bytes: float = 200.0
    #: Preprocessor work per fact tuple (bit-vector init, queueing)
    preprocess_us: float = 0.5
    #: hash probe with a cache-resident table
    probe_base_us: float = 0.4
    #: additional probe cost as hash tables outgrow the L2 cache
    probe_cache_penalty_us: float = 6.0
    #: saturation scale (bytes) of the cache penalty
    cache_scale_mb: float = 76.0
    #: bitwise-AND cost per 64-bit bit-vector word per filter
    and_word_us: float = 0.1
    #: tuple hand-off cost per stage boundary (cache miss + sync)
    transfer_us: float = 1.5
    #: CJOIN admission: fixed part (stall, dimension query dispatch)
    admit_fixed_s: float = 0.30
    #: CJOIN admission: per dimension row scanned by sigma_cnj(Dj)
    admit_eval_us: float = 0.257
    #: CJOIN admission: per dimension row inserted into HD_j
    admit_insert_us: float = 18.8

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fact_bytes(self, shape: WorkloadShape) -> float:
        """Fact table size in bytes."""
        return shape.fact_rows * self.fact_tuple_bytes

    def hash_table_bytes(self, shape: WorkloadShape, selectivity: float) -> float:
        """Per-query dimension hash footprint (the probe working set)."""
        return shape.dimension_rows * selectivity * self.dim_entry_bytes

    def probe_us(
        self,
        shape: WorkloadShape,
        selectivity: float,
        hardware: HardwareModel,
    ) -> float:
        """Probe cost including the cache-residency penalty."""
        working_set = self.hash_table_bytes(shape, selectivity)
        saturation = 1.0 - math.exp(-working_set / (self.cache_scale_mb * MB))
        return self.probe_base_us + self.probe_cache_penalty_us * saturation

    def and_us(self, concurrency: int) -> float:
        """Bit-vector AND cost for ``concurrency`` in-flight queries.

        The paper attributes CJOIN's sub-linear scale-up past n=128 to
        its bitmap implementation; the word-count dependence models
        exactly that.
        """
        if concurrency < 1:
            raise BenchmarkError("concurrency must be >= 1")
        words = (concurrency + 63) // 64
        return self.and_word_us * words

    def submission_seconds(
        self, shape: WorkloadShape, selectivity: float
    ) -> float:
        """CJOIN admission time T_sub(s, sf) (Tables 1-3 model)."""
        evaluate = shape.dimension_rows * self.admit_eval_us * 1e-6
        insert = shape.dimension_rows * selectivity * self.admit_insert_us * 1e-6
        return self.admit_fixed_s + evaluate + insert
