"""Closed-loop concurrency simulation.

The paper's methodology (section 6.1.3): a single client submits the
first n queries as a batch, then submits the next query whenever one
finishes, so exactly n are always in flight; metrics are taken over
queries 256..512 (steady state).

This event simulator layers that client behaviour on the analytic
models, yielding *per-query* response times (with admission
serialization and wrap-position jitter) — the inputs for Figure 6's
averages and the standard-deviation comparison in section 6.2.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.sim.cjoin_model import CJoinPerfModel
from repro.sim.costs import WorkloadShape


@dataclass
class QueryRecord:
    """Timeline of one simulated query."""

    index: int
    submitted_at: float
    admitted_at: float
    completed_at: float

    @property
    def response_seconds(self) -> float:
        """Client-observed latency (includes admission queueing)."""
        return self.completed_at - self.submitted_at

    @property
    def submission_seconds(self) -> float:
        """Time from submission until the start control tuple."""
        return self.admitted_at - self.submitted_at


class ClosedLoopSimulator:
    """Simulates the benchmark client against the CJOIN model.

    Per-query response = admission wait (serialized) + submission time
    + time for the scan to wrap around the admission position.  A
    small multiplicative jitter models the variation the paper reports
    (CJOIN's response-time deviation stays within ~0.5% of the mean).
    """

    def __init__(
        self,
        model: CJoinPerfModel,
        shape: WorkloadShape,
        selectivity: float,
        jitter: float = 0.005,
        seed: int = 0,
    ) -> None:
        if jitter < 0:
            raise BenchmarkError("jitter must be non-negative")
        self.model = model
        self.shape = shape
        self.selectivity = selectivity
        self.jitter = jitter
        self._rng = random.Random(seed)

    def run(
        self,
        concurrency: int,
        total_queries: int,
        measure_from: int = 0,
    ) -> list[QueryRecord]:
        """Simulate ``total_queries`` at concurrency n; return records

        from index ``measure_from`` on (the steady-state window).
        """
        if concurrency < 1 or total_queries < 1:
            raise BenchmarkError("need at least one query and one slot")
        submission = self.model.submission_seconds(self.shape, self.selectivity)
        cycle = self.model.cycle_seconds(
            self.shape, concurrency, self.selectivity
        )
        records: list[QueryRecord] = []
        admission_free_at = 0.0  # the Pipeline Manager is serial
        slot_free_at = [0.0] * concurrency  # client keeps n in flight
        for index in range(total_queries):
            slot = min(range(concurrency), key=slot_free_at.__getitem__)
            submitted = slot_free_at[slot]
            admission_start = max(submitted, admission_free_at)
            admitted = admission_start + submission
            admission_free_at = admitted
            wrap = cycle * (1.0 + self._rng.uniform(-self.jitter, self.jitter))
            completed = admitted + wrap
            slot_free_at[slot] = completed
            records.append(QueryRecord(index, submitted, admitted, completed))
        return records[measure_from:]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @staticmethod
    def mean_response(records: list[QueryRecord]) -> float:
        """Average client-observed response time."""
        if not records:
            raise BenchmarkError("no records to aggregate")
        return sum(r.response_seconds for r in records) / len(records)

    @staticmethod
    def stdev_response(records: list[QueryRecord]) -> float:
        """Population standard deviation of response times."""
        if not records:
            raise BenchmarkError("no records to aggregate")
        mean = ClosedLoopSimulator.mean_response(records)
        variance = sum(
            (r.response_seconds - mean) ** 2 for r in records
        ) / len(records)
        return variance ** 0.5

    @staticmethod
    def throughput_qph(records: list[QueryRecord]) -> float:
        """Completions per hour over the measured window."""
        if len(records) < 2:
            raise BenchmarkError("need at least two records")
        first = min(r.submitted_at for r in records)
        last = max(r.completed_at for r in records)
        if last <= first:
            raise BenchmarkError("degenerate simulation window")
        return 3600.0 * len(records) / (last - first)
