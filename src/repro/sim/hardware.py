"""The modeled hardware platform.

Defaults describe the paper's testbed (section 6.1.1): two quad-core
Xeons (8 cores), 6MB L2 per CPU, 8GB RAM, and a 4-disk RAID-5 array.
The effective sequential bandwidth is calibrated from the paper's own
numbers: a single CJOIN query at sf=100 loops a 94GB fact table in
roughly 660s, implying ~142 MB/s delivered sequential bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class HardwareModel:
    """Parameters of the modeled machine."""

    cores: int = 8
    #: cores available to Filter stages; the paper sets aside three
    #: (PostgreSQL process, Preprocessor, Distributor), leaving five.
    filter_threads_max: int = 5
    seq_bandwidth_mb_s: float = 142.0
    #: bandwidth when the whole data set is RAM-resident
    mem_bandwidth_mb_s: float = 2000.0
    l2_cache_mb: float = 6.0
    ram_gb: float = 8.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.filter_threads_max < 1:
            raise BenchmarkError("hardware must have at least one core")
        if self.seq_bandwidth_mb_s <= 0:
            raise BenchmarkError("bandwidth must be positive")

    def scan_seconds(self, data_bytes: float) -> float:
        """Time to stream ``data_bytes`` once, RAM-aware."""
        if data_bytes <= self.ram_gb * GB:
            return data_bytes / (self.mem_bandwidth_mb_s * MB)
        return data_bytes / (self.seq_bandwidth_mb_s * MB)

    @property
    def l2_bytes(self) -> float:
        """L2 cache size in bytes."""
        return self.l2_cache_mb * MB

    @property
    def ram_bytes(self) -> float:
        """Main memory size in bytes."""
        return self.ram_gb * GB
