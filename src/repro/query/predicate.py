"""Selection predicates.

The paper allows an arbitrarily complex selection predicate ``c_j`` on
each referenced dimension table (section 2.1) — the only requirement
is that it references a single tuple variable.  We model predicates as
small expression trees over one table's columns, with:

* :meth:`Predicate.bind` — compile against a schema into a fast
  row -> bool closure (the hot path for dimension filter queries and
  the Preprocessor's fact predicates);
* :func:`estimate_selectivity` — exact match fraction over a stored
  table (dimensions are small, so exact is affordable; used by the
  adaptive filter-ordering optimizer);
* :func:`implied_interval` — best-effort interval implied on a column
  (used for partition pruning, section 5).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

from repro.catalog.schema import TableSchema
from repro.errors import QueryError

RowMatcher = Callable[[tuple], bool]

#: Comparison operators supported by :class:`Comparison`.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Predicate:
    """Base class for predicate expression nodes."""

    def bind(self, schema: TableSchema) -> RowMatcher:
        """Compile into a row -> bool closure for ``schema``."""
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Column names this predicate reads."""
        raise NotImplementedError

    def matches(self, row: tuple, schema: TableSchema) -> bool:
        """Convenience one-shot evaluation (tests; hot paths use bind)."""
        return self.bind(schema)(row)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The implicit TRUE predicate (paper: ``c_j ≡ TRUE``)."""

    def bind(self, schema: TableSchema) -> RowMatcher:
        return lambda row: True

    def referenced_columns(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` for op in =, !=, <, <=, >, >=.

    SQL three-valued logic is collapsed to two values: comparisons
    against NULL are false.
    """

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def bind(self, schema: TableSchema) -> RowMatcher:
        index = schema.column_index(self.column)
        value = self.value
        op = self.op
        if op == "=":
            return lambda row: row[index] is not None and row[index] == value
        if op == "!=":
            return lambda row: row[index] is not None and row[index] != value
        if op == "<":
            return lambda row: row[index] is not None and row[index] < value
        if op == "<=":
            return lambda row: row[index] is not None and row[index] <= value
        if op == ">":
            return lambda row: row[index] is not None and row[index] > value
        return lambda row: row[index] is not None and row[index] >= value

    def referenced_columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column <= high`` (both bounds inclusive)."""

    column: str
    low: object
    high: object

    def bind(self, schema: TableSchema) -> RowMatcher:
        index = schema.column_index(self.column)
        low, high = self.low, self.high
        return lambda row: row[index] is not None and low <= row[index] <= high

    def referenced_columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (values)``."""

    column: str
    values: frozenset

    def __init__(self, column: str, values) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", frozenset(values))

    def bind(self, schema: TableSchema) -> RowMatcher:
        index = schema.column_index(self.column)
        values = self.values
        return lambda row: row[index] in values

    def referenced_columns(self) -> set[str]:
        return {self.column}


class _Composite(Predicate):
    """Shared machinery for AND/OR nodes."""

    def __init__(self, *children: Predicate) -> None:
        if not children:
            raise QueryError(
                f"{type(self).__name__} requires at least one child predicate"
            )
        self.children = tuple(children)

    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        for child in self.children:
            columns |= child.referenced_columns()
        return columns

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __repr__(self) -> str:
        inner = ", ".join(repr(child) for child in self.children)
        return f"{type(self).__name__}({inner})"


class And(_Composite):
    """Conjunction of child predicates."""

    def bind(self, schema: TableSchema) -> RowMatcher:
        matchers = [child.bind(schema) for child in self.children]
        if len(matchers) == 1:
            return matchers[0]
        return lambda row: all(matcher(row) for matcher in matchers)


class Or(_Composite):
    """Disjunction of child predicates."""

    def bind(self, schema: TableSchema) -> RowMatcher:
        matchers = [child.bind(schema) for child in self.children]
        if len(matchers) == 1:
            return matchers[0]
        return lambda row: any(matcher(row) for matcher in matchers)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def bind(self, schema: TableSchema) -> RowMatcher:
        matcher = self.child.bind(schema)
        return lambda row: not matcher(row)

    def referenced_columns(self) -> set[str]:
        return self.child.referenced_columns()


def estimate_selectivity(predicate: Predicate, rows: list[tuple], schema: TableSchema) -> float:
    """Exact fraction of ``rows`` matching ``predicate`` (1.0 when empty).

    Dimension tables are small relative to the fact table (section
    2.1), so an exact pass is how the library gathers optimizer
    statistics.
    """
    if not rows:
        return 1.0
    matcher = predicate.bind(schema)
    matched = sum(1 for row in rows if matcher(row))
    return matched / len(rows)


#: (low, high, low_inclusive, high_inclusive); None bounds are unbounded.
Interval = tuple[Optional[object], Optional[object], bool, bool]

_UNBOUNDED: Interval = (None, None, True, True)


def implied_interval(predicate: Predicate, column: str) -> Interval:
    """Return an interval that ``predicate`` implies for ``column``.

    Conservative: the returned interval always *contains* every value
    the predicate can accept (so pruning with it is safe), but may be
    wider than tight.  Unanalyzable shapes return unbounded.
    """
    if isinstance(predicate, Comparison) and predicate.column == column:
        value = predicate.value
        if predicate.op == "=":
            return (value, value, True, True)
        if predicate.op == "<":
            return (None, value, True, False)
        if predicate.op == "<=":
            return (None, value, True, True)
        if predicate.op == ">":
            return (value, None, False, True)
        if predicate.op == ">=":
            return (value, None, True, True)
        return _UNBOUNDED  # != prunes nothing
    if isinstance(predicate, Between) and predicate.column == column:
        return (predicate.low, predicate.high, True, True)
    if isinstance(predicate, InList) and predicate.column == column:
        if not predicate.values:
            return _UNBOUNDED
        values = sorted(predicate.values)
        return (values[0], values[-1], True, True)
    if isinstance(predicate, And):
        interval = _UNBOUNDED
        for child in predicate.children:
            interval = _intersect(interval, implied_interval(child, column))
        return interval
    if isinstance(predicate, Or):
        hull = None
        for child in predicate.children:
            child_interval = implied_interval(child, column)
            hull = child_interval if hull is None else _hull(hull, child_interval)
        return hull if hull is not None else _UNBOUNDED
    return _UNBOUNDED


def _intersect(a: Interval, b: Interval) -> Interval:
    low, low_inc = _tighter_low(a[0], a[2], b[0], b[2])
    high, high_inc = _tighter_high(a[1], a[3], b[1], b[3])
    return (low, high, low_inc, high_inc)


def _hull(a: Interval, b: Interval) -> Interval:
    low, low_inc = _looser_low(a[0], a[2], b[0], b[2])
    high, high_inc = _looser_high(a[1], a[3], b[1], b[3])
    return (low, high, low_inc, high_inc)


def _tighter_low(low_a, inc_a, low_b, inc_b):
    if low_a is None:
        return low_b, inc_b
    if low_b is None:
        return low_a, inc_a
    if low_a > low_b:
        return low_a, inc_a
    if low_b > low_a:
        return low_b, inc_b
    return low_a, inc_a and inc_b


def _tighter_high(high_a, inc_a, high_b, inc_b):
    if high_a is None:
        return high_b, inc_b
    if high_b is None:
        return high_a, inc_a
    if high_a < high_b:
        return high_a, inc_a
    if high_b < high_a:
        return high_b, inc_b
    return high_a, inc_a and inc_b


def _looser_low(low_a, inc_a, low_b, inc_b):
    if low_a is None or low_b is None:
        return None, True
    if low_a < low_b:
        return low_a, inc_a
    if low_b < low_a:
        return low_b, inc_b
    return low_a, inc_a or inc_b


def _looser_high(high_a, inc_a, high_b, inc_b):
    if high_a is None or high_b is None:
        return None, True
    if high_a > high_b:
        return high_a, inc_a
    if high_b > high_a:
        return high_b, inc_b
    return high_a, inc_a or inc_b
