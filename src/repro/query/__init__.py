"""Query model: predicates, aggregates, star queries, workloads."""

from repro.query.aggregates import AggregateSpec, make_accumulator
from repro.query.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
    estimate_selectivity,
    implied_interval,
)
from repro.query.star import ColumnRef, StarQuery
from repro.query.reference import evaluate_star_query
from repro.query.workload import QueryTemplate, RangeParameter, WorkloadGenerator

__all__ = [
    "AggregateSpec",
    "And",
    "Between",
    "ColumnRef",
    "Comparison",
    "InList",
    "Not",
    "Or",
    "Predicate",
    "QueryTemplate",
    "RangeParameter",
    "StarQuery",
    "TruePredicate",
    "WorkloadGenerator",
    "estimate_selectivity",
    "evaluate_star_query",
    "implied_interval",
    "make_accumulator",
]
