"""Star queries (the paper's section 2.1 template).

::

    SELECT A, Aggr_1, ..., Aggr_k
    FROM   F, D_d1, ..., D_dn
    WHERE  AND_j  F |><| D_dj          -- key/foreign-key equi-joins
       AND AND_j  sigma_cj(D_dj)      -- per-dimension selections
       AND sigma_c0(F)                -- optional fact selection
    GROUP BY B

A :class:`StarQuery` captures exactly this shape: one fact table, a
predicate per referenced dimension (``TruePredicate`` when a
dimension is joined but unfiltered), an optional fact predicate,
group-by columns ``B``, selected columns ``A`` and aggregates.

The degenerate cases the paper allows are supported: ``B`` may be
empty (one global group) and ``k`` may be zero (the query lists the
projected join rows instead of aggregating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import StarSchema
from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Predicate, TruePredicate


@dataclass(frozen=True)
class ColumnRef:
    """A table-qualified column reference."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class StarQuery:
    """One star query, normalized and schema-validated on demand.

    Attributes:
        fact_table: name of the central fact table.
        dimension_predicates: predicate per *referenced* dimension; the
            paper's ``c_ij``, with ``TruePredicate`` for join-only
            references.
        fact_predicate: the paper's ``c_i0``; None when absent.
        group_by: the ``B`` attribute set (ordered).
        select: the ``A`` attribute set (ordered); must be a subset of
            semantics-preserving outputs, i.e. grouped columns when
            aggregating.
        aggregates: the ``Aggr_1..k`` list.
        snapshot_id: snapshot this query reads (None = latest).
        label: optional human-readable tag (e.g. SSB template name).
    """

    fact_table: str
    dimension_predicates: dict[str, Predicate] = field(default_factory=dict)
    fact_predicate: Predicate | None = None
    group_by: tuple[ColumnRef, ...] = ()
    select: tuple[ColumnRef, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    snapshot_id: int | None = None
    label: str | None = None

    @classmethod
    def build(
        cls,
        fact_table: str,
        dimension_predicates: dict[str, Predicate] | None = None,
        fact_predicate: Predicate | None = None,
        group_by: list[ColumnRef] | None = None,
        select: list[ColumnRef] | None = None,
        aggregates: list[AggregateSpec] | None = None,
        snapshot_id: int | None = None,
        label: str | None = None,
    ) -> "StarQuery":
        """Construct a normalized query.

        Normalization adds a ``TruePredicate`` entry for every
        dimension that appears in the output (group-by / select /
        aggregate inputs) but carries no explicit predicate, so
        ``dimension_predicates`` always equals the referenced-dimension
        set.  When ``select`` is omitted it defaults to ``group_by``
        (the common SELECT B, aggr... GROUP BY B shape).
        """
        predicates = dict(dimension_predicates or {})
        group_by = list(group_by or [])
        select = list(select if select is not None else group_by)
        aggregates = list(aggregates or [])
        for ref in [*group_by, *select]:
            if ref.table != fact_table and ref.table not in predicates:
                predicates[ref.table] = TruePredicate()
        for spec in aggregates:
            if (
                spec.table is not None
                and spec.table != fact_table
                and spec.table not in predicates
            ):
                predicates[spec.table] = TruePredicate()
        return cls(
            fact_table=fact_table,
            dimension_predicates=predicates,
            fact_predicate=fact_predicate,
            group_by=tuple(group_by),
            select=tuple(select),
            aggregates=tuple(aggregates),
            snapshot_id=snapshot_id,
            label=label,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def referenced_dimensions(self) -> list[str]:
        """Names of the dimensions this query references, in order."""
        return list(self.dimension_predicates)

    def references(self, dimension_name: str) -> bool:
        """True iff this query references ``dimension_name``."""
        return dimension_name in self.dimension_predicates

    def predicate_on(self, dimension_name: str) -> Predicate:
        """The paper's ``c_ij``: the predicate on a dimension,

        ``TruePredicate`` if the dimension is not referenced at all.
        """
        return self.dimension_predicates.get(dimension_name, TruePredicate())

    def output_labels(self) -> list[str]:
        """Column labels of result rows: select refs then aggregates."""
        labels = [str(ref) for ref in self.select]
        labels.extend(spec.label for spec in self.aggregates)
        return labels

    @property
    def is_aggregation(self) -> bool:
        """True when the query computes aggregates (k > 0)."""
        return bool(self.aggregates)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, star: StarSchema) -> None:
        """Check this query against a star schema.

        Raises:
            QueryError: on any mismatch (unknown tables/columns,
                predicates escaping their tuple variable, ungrouped
                select columns, ...).
        """
        if self.fact_table != star.fact.name:
            raise QueryError(
                f"query targets fact {self.fact_table!r} but star is on "
                f"{star.fact.name!r}"
            )
        for dimension_name, predicate in self.dimension_predicates.items():
            dimension = star.dimension(dimension_name)  # raises if unknown
            for column in predicate.referenced_columns():
                if not dimension.has_column(column):
                    raise QueryError(
                        f"predicate on {dimension_name!r} references unknown "
                        f"column {column!r}"
                    )
        if self.fact_predicate is not None:
            for column in self.fact_predicate.referenced_columns():
                if not star.fact.has_column(column):
                    raise QueryError(
                        f"fact predicate references unknown column {column!r}"
                    )
        for ref in [*self.group_by, *self.select]:
            self._validate_ref(ref, star)
        for spec in self.aggregates:
            if spec.is_count_star:
                continue
            self._validate_ref(ColumnRef(spec.table, spec.column), star)
            if spec.column2 is not None:
                self._validate_ref(ColumnRef(spec.table, spec.column2), star)
        if self.is_aggregation:
            grouped = set(self.group_by)
            for ref in self.select:
                if ref not in grouped:
                    raise QueryError(
                        f"selected column {ref} must appear in GROUP BY when "
                        f"aggregating"
                    )

    def _validate_ref(self, ref: ColumnRef, star: StarSchema) -> None:
        if ref.table == self.fact_table:
            table = star.fact
        elif ref.table in self.dimension_predicates:
            table = star.dimension(ref.table)
        else:
            raise QueryError(
                f"column {ref} references a table outside the query's FROM list"
            )
        if not table.has_column(ref.column):
            raise QueryError(f"unknown column {ref}")
