"""SQL aggregate functions (COUNT, SUM, MIN, MAX, AVG).

The Distributor pipes fact tuples into per-query aggregation
operators; these accumulators are the arithmetic inside those
operators.  NULL inputs are skipped per SQL semantics, and COUNT(*)
counts rows regardless of values.

Every accumulator is a *commutative mergeable state*, not just a
streaming fold: :meth:`Accumulator.merge` combines two partial states
into one as if their inputs had been concatenated.  This is what lets
the process-parallel backend (DESIGN.md section 8) aggregate each fact
shard independently and have a coordinator merge the per-shard states
— AVG in particular keeps its (sum, count) pair un-finalized so the
merge is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

#: Supported aggregate kinds.
AGGREGATE_KINDS = ("count", "sum", "min", "max", "avg")


#: Binary input expressions supported inside an aggregate, e.g.
#: SSB's ``sum(lo_extendedprice * lo_discount)`` and
#: ``sum(lo_revenue - lo_supplycost)``.
COMBINE_OPS = ("*", "-", "+")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a query's SELECT list.

    The input is either one column, or a binary expression
    ``column <combine> column2`` over two columns of the same table
    (the shapes the Star Schema Benchmark needs).

    Args:
        kind: one of :data:`AGGREGATE_KINDS`.
        table: table owning the input column(s); None for COUNT(*).
        column: input column name; None for COUNT(*).
        column2: optional second input column.
        combine: operator joining column and column2.
        alias: output column label.
    """

    kind: str
    table: str | None = None
    column: str | None = None
    column2: str | None = None
    combine: str = "*"
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise QueryError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and (self.table is None or self.column is None):
            raise QueryError(f"{self.kind} requires a table.column input")
        if self.column2 is not None and self.combine not in COMBINE_OPS:
            raise QueryError(f"unknown combine operator {self.combine!r}")

    @property
    def is_count_star(self) -> bool:
        """True for COUNT(*) (no input column)."""
        return self.kind == "count" and self.column is None

    def combine_values(self, value, value2):
        """Evaluate the binary input expression (NULL-propagating)."""
        if value is None or value2 is None:
            return None
        if self.combine == "*":
            return value * value2
        if self.combine == "-":
            return value - value2
        return value + value2

    @property
    def label(self) -> str:
        """Output column label."""
        if self.alias is not None:
            return self.alias
        if self.is_count_star:
            return "count_star"
        if self.column2 is not None:
            return f"{self.kind}_{self.column}{self.combine}{self.column2}"
        return f"{self.kind}_{self.column}"


class Accumulator:
    """Base class for streaming, mergeable aggregate state."""

    def add(self, value) -> None:
        """Fold one input value into the state."""
        raise NotImplementedError

    def state(self):
        """Export the partial state as plain picklable values.

        The compact wire format for cross-process merging: plain ints,
        floats, or tuples thereof — never accumulator objects — so
        shard workers ship minimal bytes back to the coordinator.
        """
        raise NotImplementedError

    def merge_state(self, state) -> None:
        """Fold a :meth:`state` export of the same kind into this one.

        Must be equivalent to having added the exported state's inputs
        here directly (commutative and associative up to floating-point
        re-association).
        """
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator of the same kind into this one."""
        self.merge_state(other.state())

    def result(self):
        """Return the final aggregate value (SQL semantics on empty input)."""
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """COUNT(*) or COUNT(column)."""

    def __init__(self, count_nulls: bool) -> None:
        self._count_nulls = count_nulls
        self._count = 0

    def add(self, value) -> None:
        if value is not None or self._count_nulls:
            self._count += 1

    def state(self) -> int:
        return self._count

    def merge_state(self, state: int) -> None:
        self._count += state

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    """SUM(column); NULL on empty/all-NULL input."""

    def __init__(self) -> None:
        self._sum = None

    def add(self, value) -> None:
        if value is None:
            return
        self._sum = value if self._sum is None else self._sum + value

    def state(self):
        return self._sum

    def merge_state(self, state) -> None:
        if state is None:
            return
        self._sum = state if self._sum is None else self._sum + state

    def result(self):
        return self._sum


class MinAccumulator(Accumulator):
    """MIN(column); NULL on empty/all-NULL input."""

    def __init__(self) -> None:
        self._min = None

    def add(self, value) -> None:
        if value is None:
            return
        if self._min is None or value < self._min:
            self._min = value

    def state(self):
        return self._min

    def merge_state(self, state) -> None:
        if state is None:
            return
        if self._min is None or state < self._min:
            self._min = state

    def result(self):
        return self._min


class MaxAccumulator(Accumulator):
    """MAX(column); NULL on empty/all-NULL input."""

    def __init__(self) -> None:
        self._max = None

    def add(self, value) -> None:
        if value is None:
            return
        if self._max is None or value > self._max:
            self._max = value

    def state(self):
        return self._max

    def merge_state(self, state) -> None:
        if state is None:
            return
        if self._max is None or state > self._max:
            self._max = state

    def result(self):
        return self._max


class AvgAccumulator(Accumulator):
    """AVG(column); NULL on empty/all-NULL input.

    The state is the (sum, count) pair, never the finalized quotient,
    so merging partial states from fact-table shards is exact: the
    division happens once, at :meth:`result`.
    """

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def add(self, value) -> None:
        if value is None:
            return
        self._sum += value
        self._count += 1

    def state(self) -> tuple:
        return (self._sum, self._count)

    def merge_state(self, state: tuple) -> None:
        self._sum += state[0]
        self._count += state[1]

    def result(self):
        if self._count == 0:
            return None
        return self._sum / self._count


def make_accumulator(spec: AggregateSpec) -> Accumulator:
    """Create a fresh accumulator for ``spec``."""
    if spec.kind == "count":
        return CountAccumulator(count_nulls=spec.is_count_star)
    if spec.kind == "sum":
        return SumAccumulator()
    if spec.kind == "min":
        return MinAccumulator()
    if spec.kind == "max":
        return MaxAccumulator()
    return AvgAccumulator()
