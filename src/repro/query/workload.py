"""Workload generation from parameterized query templates.

Section 6.1.2 of the paper: each benchmark query becomes a *template*
by replacing its range predicates with abstract ranges; a workload
query is created by sampling a template and substituting concrete
ranges whose selectivity is controlled by a parameter ``s``.

This module holds the generic machinery; the concrete SSB templates
live in :mod:`repro.ssb.queries`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import And, Between, Predicate
from repro.query.star import ColumnRef, StarQuery


@dataclass(frozen=True)
class RangeParameter:
    """An abstract range predicate on one dimension column.

    Attributes:
        dimension: dimension table carrying the predicate.
        column: column the range applies to.
        domain: the column's ordered distinct values; a concrete
            predicate selects a contiguous window of this domain.
    """

    dimension: str
    column: str
    domain: tuple

    def __post_init__(self) -> None:
        if not self.domain:
            raise QueryError(
                f"range parameter on {self.dimension}.{self.column} has an "
                f"empty domain"
            )

    def concrete_predicate(self, selectivity: float, rng: random.Random) -> Between:
        """Instantiate a BETWEEN window covering ~``selectivity`` of the domain.

        The window position is uniform over the feasible starts, so
        repeated instantiation spreads queries across the domain (the
        paper's ad-hoc mix).
        """
        if not 0.0 < selectivity <= 1.0:
            raise QueryError(
                f"selectivity must be in (0, 1], got {selectivity}"
            )
        width = max(1, round(selectivity * len(self.domain)))
        start = rng.randrange(len(self.domain) - width + 1)
        return Between(
            self.column,
            low=self.domain[start],
            high=self.domain[start + width - 1],
        )


@dataclass(frozen=True)
class QueryTemplate:
    """A star-query template with abstract range parameters."""

    name: str
    fact_table: str
    range_parameters: tuple[RangeParameter, ...] = ()
    fixed_dimension_predicates: dict[str, Predicate] = field(default_factory=dict)
    group_by: tuple[ColumnRef, ...] = ()
    select: tuple[ColumnRef, ...] | None = None
    aggregates: tuple[AggregateSpec, ...] = ()

    def instantiate(self, selectivity: float, rng: random.Random) -> StarQuery:
        """Produce a concrete :class:`StarQuery` from this template."""
        predicates: dict[str, Predicate] = dict(self.fixed_dimension_predicates)
        for parameter in self.range_parameters:
            concrete = parameter.concrete_predicate(selectivity, rng)
            existing = predicates.get(parameter.dimension)
            predicates[parameter.dimension] = (
                concrete if existing is None else And(existing, concrete)
            )
        return StarQuery.build(
            fact_table=self.fact_table,
            dimension_predicates=predicates,
            group_by=list(self.group_by),
            select=list(self.select) if self.select is not None else None,
            aggregates=list(self.aggregates),
            label=self.name,
        )


class WorkloadGenerator:
    """Samples templates uniformly and instantiates them.

    A fixed ``seed`` makes workloads reproducible across engines, which
    is what allows apples-to-apples comparisons in the experiments.
    """

    def __init__(self, templates: list[QueryTemplate], seed: int = 0) -> None:
        if not templates:
            raise QueryError("workload generator needs at least one template")
        self.templates = list(templates)
        self._rng = random.Random(seed)

    def next_query(self, selectivity: float) -> StarQuery:
        """Generate the next workload query."""
        template = self._rng.choice(self.templates)
        return template.instantiate(selectivity, self._rng)

    def generate(self, count: int, selectivity: float) -> list[StarQuery]:
        """Generate ``count`` queries."""
        return [self.next_query(selectivity) for _ in range(count)]

    def generate_from(self, template_name: str, selectivity: float) -> StarQuery:
        """Instantiate a specific template by name (e.g. SSB 'Q4.2')."""
        for template in self.templates:
            if template.name == template_name:
                return template.instantiate(selectivity, self._rng)
        raise QueryError(f"no template named {template_name!r}")
