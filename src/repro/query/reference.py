"""Reference (ground-truth) star-query evaluator.

A deliberately naive evaluator: index-nested-loop join of each fact
row against the dimension primary keys, with no sharing or batching.
Both the CJOIN operator and the query-at-a-time baseline are tested
for result equivalence against this module, so it is kept as simple
and obviously-correct as possible.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.errors import QueryError
from repro.query.aggregates import make_accumulator
from repro.query.star import ColumnRef, StarQuery
from repro.storage.mvcc import Snapshot, VersionedTable


def evaluate_star_query(
    query: StarQuery,
    catalog: Catalog,
    versioned_fact: VersionedTable | None = None,
) -> list[tuple]:
    """Evaluate ``query`` and return canonical result rows.

    Result rows are ``select values + aggregate values`` sorted by the
    select values (all systems under test normalize results the same
    way, so lists compare directly).

    Args:
        query: a validated star query.
        catalog: resolves table names to stored tables.
        versioned_fact: when given, rows invisible in the query's
            snapshot are skipped (snapshot isolation, section 3.5).
    """
    star = catalog.star(query.fact_table)
    query.validate(star)
    fact = catalog.table(query.fact_table)

    fact_matcher = None
    if query.fact_predicate is not None:
        fact_matcher = query.fact_predicate.bind(star.fact)
    dim_matchers = {
        name: query.predicate_on(name).bind(star.dimension(name))
        for name in query.referenced_dimensions()
    }
    fk_indexes = {
        name: star.fact_fk_index(name) for name in query.referenced_dimensions()
    }
    dim_tables = {
        name: catalog.table(name) for name in query.referenced_dimensions()
    }
    snapshot = None
    if versioned_fact is not None:
        snapshot_id = query.snapshot_id
        if snapshot_id is None:
            snapshot_id = len(versioned_fact.versions)  # effectively "latest"
        snapshot = Snapshot(snapshot_id)

    groups: dict[tuple, list] = {}
    listing: list[tuple] = []
    for position, fact_row in enumerate(fact.heap.iter_rows()):
        if snapshot is not None and not snapshot.can_see(
            versioned_fact.version_at(position)
        ):
            continue
        if fact_matcher is not None and not fact_matcher(fact_row):
            continue
        joined_dims = {}
        survived = True
        for name, matcher in dim_matchers.items():
            dim_row = dim_tables[name].lookup_pk(fact_row[fk_indexes[name]])
            if dim_row is None or not matcher(dim_row):
                survived = False
                break
            joined_dims[name] = dim_row
        if not survived:
            continue
        select_values = tuple(
            _resolve(ref, query, star, fact_row, joined_dims)
            for ref in query.select
        )
        if not query.is_aggregation:
            listing.append(select_values)
            continue
        key = tuple(
            _resolve(ref, query, star, fact_row, joined_dims)
            for ref in query.group_by
        )
        state = groups.get(key)
        if state is None:
            state = [
                select_values,
                [make_accumulator(spec) for spec in query.aggregates],
            ]
            groups[key] = state
        for spec, accumulator in zip(query.aggregates, state[1]):
            if spec.is_count_star:
                accumulator.add(0)  # any non-None marker; COUNT(*) counts rows
                continue
            value = _resolve(
                ColumnRef(spec.table, spec.column),
                query,
                star,
                fact_row,
                joined_dims,
            )
            if spec.column2 is not None:
                value2 = _resolve(
                    ColumnRef(spec.table, spec.column2),
                    query,
                    star,
                    fact_row,
                    joined_dims,
                )
                value = spec.combine_values(value, value2)
            accumulator.add(value)

    if not query.is_aggregation:
        return sorted(listing)
    rows = [
        select_values + tuple(acc.result() for acc in accumulators)
        for select_values, accumulators in groups.values()
    ]
    rows.sort(key=lambda row: row[: len(query.select)])
    return rows


def _resolve(ref, query: StarQuery, star, fact_row: tuple, joined_dims: dict):
    """Extract the value of ``ref`` from a joined fact/dimension row set."""
    if ref.table == query.fact_table:
        return fact_row[star.fact.column_index(ref.column)]
    dim_row = joined_dims.get(ref.table)
    if dim_row is None:
        raise QueryError(f"column {ref} references an unjoined table")
    return dim_row[star.dimension(ref.table).column_index(ref.column)]
