"""I/O accounting.

The evaluation hinges on *how* data is read, not just how much:
concurrent query-at-a-time scans degrade into random I/O while CJOIN's
single continuous scan stays sequential (paper section 1).  Every page
fetch in the library is classified here so both engines' access
patterns are observable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for page-level I/O, split by access pattern.

    A *sequential* read is a buffer-pool miss whose page immediately
    follows the previous miss on the same heap; every other miss is
    *random*.  Buffer-pool hits never touch the (simulated) disk and
    are counted separately.
    """

    sequential_reads: int = 0
    random_reads: int = 0
    buffer_hits: int = 0
    pages_written: int = 0
    _last_page: dict[int, int] = field(default_factory=dict, repr=False)

    def record_read(self, heap_id: int, page_id: int) -> None:
        """Record a buffer-pool miss for ``page_id`` of heap ``heap_id``."""
        last = self._last_page.get(heap_id)
        if last is not None and page_id == last + 1:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_page[heap_id] = page_id

    def record_hit(self) -> None:
        """Record a buffer-pool hit (no disk access)."""
        self.buffer_hits += 1

    def record_write(self, count: int = 1) -> None:
        """Record ``count`` page writes."""
        self.pages_written += count

    @property
    def disk_reads(self) -> int:
        """Total page reads that reached the disk."""
        return self.sequential_reads + self.random_reads

    @property
    def sequential_fraction(self) -> float:
        """Fraction of disk reads that were sequential (1.0 if none)."""
        if self.disk_reads == 0:
            return 1.0
        return self.sequential_reads / self.disk_reads

    def reset(self) -> None:
        """Zero all counters and forget per-heap positions."""
        self.sequential_reads = 0
        self.random_reads = 0
        self.buffer_hits = 0
        self.pages_written = 0
        self._last_page.clear()
