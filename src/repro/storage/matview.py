"""Materialized views over dimension tables (paper section 5).

The paper: fact-table views are impractical for ad-hoc workloads, but
"it is more common (and affordable) for data warehouses to maintain
indexes and views on dimension tables. CJOIN takes advantage of these
structures transparently, since they can optimize the dimension filter
queries that are part of new query registration."

A :class:`DimensionView` materializes one predicate's selection over a
dimension.  Admission consults registered views before scanning: when
a query's dimension predicate *equals* the view's defining predicate
(predicates are value objects, so structural equality works), the
materialized rows are served directly with no dimension I/O.
"""

from __future__ import annotations

from repro.catalog.schema import TableSchema
from repro.errors import SchemaError
from repro.query.predicate import Predicate


class DimensionView:
    """A materialized ``sigma_predicate(dimension)``."""

    def __init__(
        self,
        name: str,
        dimension_schema: TableSchema,
        predicate: Predicate,
        rows: list[tuple],
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid view name: {name!r}")
        self.name = name
        self.dimension_name = dimension_schema.name
        self.predicate = predicate
        for row in rows:
            dimension_schema.validate_row(row)
        self._rows = [tuple(row) for row in rows]

    @classmethod
    def materialize(
        cls, name: str, dimension_table, predicate: Predicate
    ) -> "DimensionView":
        """Build a view by evaluating ``predicate`` over a stored table."""
        matcher = predicate.bind(dimension_table.schema)
        rows = [row for row in dimension_table.all_rows() if matcher(row)]
        return cls(name, dimension_table.schema, predicate, rows)

    def matches(self, dimension_name: str, predicate: Predicate) -> bool:
        """True iff this view answers ``predicate`` on ``dimension_name``.

        Exact structural predicate equality — the sound, simple
        subsumption test (predicate nodes are value objects).
        """
        return (
            dimension_name == self.dimension_name
            and predicate == self.predicate
        )

    def rows(self) -> list[tuple]:
        """The materialized selection (a copy)."""
        return list(self._rows)

    @property
    def row_count(self) -> int:
        """Number of materialized rows."""
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"DimensionView({self.name!r} over {self.dimension_name!r}, "
            f"{self.row_count} rows)"
        )
