"""One-shot and continuous table scans.

The continuous scan is the heart of CJOIN's sharing model (paper
section 3.1): the fact table becomes an endless, order-stable stream.
Queries attach at an arbitrary *position* (row ordinal) and complete
when the scan wraps around to that position, having seen every tuple
exactly once.

Order stability across wrap-arounds (paper section 3.3.3) holds by
construction here: heaps are append-only, pages are filled in order,
and the scan visits positions ``0 .. row_count-1`` cyclically.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.table import Table


class TableScan:
    """A single sequential pass over a table, page by page.

    Used by the query-at-a-time baseline engine; every page fetch is
    charged to the buffer pool.
    """

    def __init__(self, table: Table, buffer_pool: BufferPool) -> None:
        self.table = table
        self.buffer_pool = buffer_pool

    def __iter__(self) -> Iterator[tuple]:
        heap = self.table.heap
        for page_id in heap.page_ids():
            page = self.buffer_pool.fetch(heap, page_id)
            yield from page.rows

    def iter_with_positions(self) -> Iterator[tuple[int, tuple]]:
        """Yield (position, row) pairs, position being the row ordinal."""
        position = 0
        for row in self:
            yield position, row
            position += 1


class ContinuousScan:
    """A circular scan that never terminates while the table has rows.

    Positions are global row ordinals.  Because the heap is append-only
    with fixed rows-per-page, position ``p`` always maps to
    ``(p // rows_per_page, p % rows_per_page)`` and the visiting order
    is identical on every cycle.  Rows appended mid-cycle are reached
    when the scan arrives at their position, extending the cycle.
    """

    def __init__(self, table: Table, buffer_pool: BufferPool) -> None:
        self.table = table
        self.buffer_pool = buffer_pool
        self._position = 0
        self._tuples_returned = 0
        self._current_page = None
        self._current_page_id = -1

    @property
    def next_position(self) -> int:
        """Position of the tuple the next :meth:`next` call returns.

        This is the admission mark: a query registered now starts at
        this position and completes when the scan returns to it.
        """
        if self._position >= self.table.row_count:
            return 0
        return self._position

    @property
    def tuples_returned(self) -> int:
        """Total tuples produced since construction (across cycles)."""
        return self._tuples_returned

    @property
    def cycles_completed(self) -> float:
        """Approximate number of full passes over the current table."""
        if self.table.row_count == 0:
            return 0.0
        return self._tuples_returned / self.table.row_count

    def next(self) -> tuple[int, tuple] | None:
        """Return the next (position, row) pair, or None if the table is empty."""
        row_count = self.table.row_count
        if row_count == 0:
            return None
        if self._position >= row_count:
            self._position = 0
        position = self._position
        rows_per_page = self.table.heap.rows_per_page
        page_id, slot_id = divmod(position, rows_per_page)
        if page_id != self._current_page_id:
            self._current_page = self.buffer_pool.fetch(self.table.heap, page_id)
            self._current_page_id = page_id
        row = self._current_page.slot(slot_id)
        self._position = position + 1
        self._tuples_returned += 1
        return position, row

    def next_run(self, max_rows: int) -> tuple[int, list[tuple]] | None:
        """Return ``(start_position, rows)`` for a contiguous scan run.

        The bulk twin of :meth:`next` (the batched fast path, DESIGN.md
        section 5): produces up to ``max_rows`` consecutive rows in one
        call, never crossing a page boundary or the table end, so one
        buffer-pool fetch covers the whole run and the per-row Python
        dispatch of the tuple path disappears.  Returns None when the
        table is empty.  Visiting order and wrap-around behaviour are
        identical to repeated :meth:`next` calls.
        """
        row_count = self.table.row_count
        if row_count == 0 or max_rows < 1:
            return None
        if self._position >= row_count:
            self._position = 0
        position = self._position
        rows_per_page = self.table.heap.rows_per_page
        page_id, slot_id = divmod(position, rows_per_page)
        if page_id != self._current_page_id:
            self._current_page = self.buffer_pool.fetch(self.table.heap, page_id)
            self._current_page_id = page_id
        page_rows = self._current_page.rows
        available = min(
            len(page_rows) - slot_id, row_count - position, max_rows
        )
        rows = page_rows[slot_id : slot_id + available]
        self._position = position + available
        self._tuples_returned += available
        return position, rows

    def __iter__(self) -> Iterator[tuple[int, tuple]]:
        """Iterate forever (while rows exist); callers must break."""
        while True:
            item = self.next()
            if item is None:
                raise StorageError("continuous scan over an empty table")
            yield item
