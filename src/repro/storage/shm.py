"""Shared-memory columnar fact-table transport (DESIGN.md section 14).

The process backend's ``'pickle'`` transport serializes every fact
shard into its worker's pipe — one full copy of the fact table per
drain, paid again on every drain.  This module lays the fact table
out **once** in a :mod:`multiprocessing.shared_memory` segment as
typed columns; workers attach the segment read-only and decode only
their ``[start, end)`` shard slice.  What crosses the pipe is a
:class:`ShmLayout` descriptor of a few hundred bytes, regardless of
fact-table size.

Column codecs, chosen per column by inspecting the values:

* ``'i64'`` — every value is a machine-range Python int: packed as
  raw little-endian int64 (``array('q')``), 8 bytes per value, sliced
  zero-copy on attach via ``memoryview.cast``;
* ``'f64'`` — every value is a float: raw float64, same properties;
* ``'dict'`` — at most :data:`DICT_CARDINALITY_LIMIT` distinct
  (hashable) values: one byte per value plus a tiny decode table in
  the layout descriptor — the natural fit for SSB's low-cardinality
  string columns (``lo_orderpriority``, ``lo_shipmode``);
* ``'pickle'`` — anything else: the whole column pickled into the
  segment (a correctness backstop, not a fast path; workers slice
  after unpickling).

An SSB ``lineorder`` row (15 ints + 2 low-cardinality strings) is
therefore 122 bytes in the segment and never touches ``pickle`` on
the hot path.

Lifecycle: the coordinator :func:`publish_fact_rows` once per fact
table — :mod:`repro.cjoin.parallel` caches the published segment and
reattaches it on every subsequent drain, unlinking on replacement and
at interpreter exit (the :func:`published_fact_table` context manager
packages the simpler publish-per-block lifetime); workers
:func:`attach_fact_slice` and close their mapping immediately after
decoding.  On Python >= 3.13 worker attachments pass ``track=False``
so the per-process resource tracker never adopts (and never
double-unlinks) a segment the coordinator owns; earlier versions only
register at create time, so attachments are already tracker-silent.
"""

from __future__ import annotations

import pickle
import sys
from array import array
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

#: Bound on distinct values for the one-byte dictionary codec.
DICT_CARDINALITY_LIMIT = 255


@dataclass(frozen=True)
class ColumnSpec:
    """Where and how one fact column lives inside the segment."""

    kind: str  # 'i64' | 'f64' | 'dict' | 'pickle'
    offset: int
    length: int
    #: dictionary codec decode table (code -> value); None otherwise
    values: tuple | None = None


@dataclass(frozen=True)
class ShmLayout:
    """Picklable descriptor of one published fact table.

    Everything a worker needs to decode its shard: the segment name,
    the row count, and the per-column specs.  This — not the rows —
    is what the coordinator sends through the pool's pipe.
    """

    name: str
    row_count: int
    columns: tuple[ColumnSpec, ...]


def _encode_column(values) -> tuple[str, bytes, tuple | None]:
    """Pick a codec for one column; return (kind, blob, decode table).

    Every pass here is C-level: the exact-type scan is one ``map``
    (bool is an int subclass and True would silently pack as 1, hence
    exact types), ``array('q')`` does the int64 range check itself
    while packing, and the dictionary codec builds its table with
    ``dict.fromkeys`` then codes the column with one mapped lookup.
    """
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return "i64", array("q", values).tobytes(), None
        except OverflowError:
            pass  # beyond int64: the dictionary/pickle path handles it
    elif kinds == {float}:
        return "f64", array("d", values).tobytes(), None
    try:
        table = {
            value: code for code, value in enumerate(dict.fromkeys(values))
        }
        if len(table) > DICT_CARDINALITY_LIMIT:
            raise OverflowError
        codes = array("B", map(table.__getitem__, values))
        return "dict", codes.tobytes(), tuple(table)
    except (TypeError, OverflowError):
        # unhashable values or too many distinct ones: pickle backstop
        return "pickle", pickle.dumps(values, pickle.HIGHEST_PROTOCOL), None


def publish_fact_rows(
    rows: list[tuple], column_count: int
) -> tuple[shared_memory.SharedMemory, ShmLayout]:
    """Lay ``rows`` out columnar in a fresh shared-memory segment.

    Returns the owning segment handle (caller must ``close()`` and
    ``unlink()`` it — see :func:`published_fact_table`) and the
    picklable layout descriptor workers attach through.
    """
    # one C-level transpose instead of column_count gather passes
    columns = list(zip(*rows)) if rows else [()] * column_count
    specs: list[ColumnSpec] = []
    blobs: list[bytes] = []
    offset = 0
    for column in columns:
        kind, blob, values = _encode_column(column)
        specs.append(ColumnSpec(kind, offset, len(blob), values))
        blobs.append(blob)
        offset += len(blob)
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    buffer = segment.buf
    for spec, blob in zip(specs, blobs):
        buffer[spec.offset:spec.offset + spec.length] = blob
    return segment, ShmLayout(segment.name, len(rows), tuple(specs))


@contextmanager
def published_fact_table(rows: list[tuple], column_count: int):
    """Publish ``rows`` for the duration of a ``with`` block.

    Yields the :class:`ShmLayout`; closes and unlinks the segment on
    exit, so a drain can never leak shared memory even when the pool
    fails mid-flight.
    """
    segment, layout = publish_fact_rows(rows, column_count)
    try:
        yield layout
    finally:
        segment.close()
        segment.unlink()


def _attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    On 3.13+ ``track=False`` keeps the attaching process's resource
    tracker out of the segment's lifecycle (the coordinator owns
    unlinking); earlier Pythons only register segments they created,
    so a plain attach is already untracked.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def decode_rows(
    layout: ShmLayout, buffer, start: int, end: int
) -> list[tuple]:
    """Decode rows ``[start, end)`` from a segment buffer.

    Typed columns slice zero-copy (``memoryview.cast`` then one
    ``tolist`` per column); only the pickle backstop decodes beyond
    the requested slice.  Rows come back as plain tuples in schema
    column order — exactly what ``Table.from_validated_rows`` wants.
    """
    if not 0 <= start <= end <= layout.row_count:
        raise ValueError(
            f"slice [{start}, {end}) outside 0..{layout.row_count}"
        )
    columns = []
    for spec in layout.columns:
        view = memoryview(buffer)[spec.offset:spec.offset + spec.length]
        try:
            if spec.kind == "i64":
                column = view.cast("q")[start:end].tolist()
            elif spec.kind == "f64":
                column = view.cast("d")[start:end].tolist()
            elif spec.kind == "dict":
                column = list(map(spec.values.__getitem__, view[start:end]))
            else:
                column = pickle.loads(view)[start:end]
        finally:
            view.release()
        columns.append(column)
    if not columns:
        return [() for _ in range(end - start)]
    return list(zip(*columns))


def attach_fact_slice(layout: ShmLayout, start: int, end: int) -> list[tuple]:
    """Worker-side one-shot: attach, decode ``[start, end)``, detach."""
    segment = _attach_readonly(layout.name)
    try:
        return decode_rows(layout, segment.buf, start, end)
    finally:
        segment.close()
