"""Tables: a schema bound to a heap file of rows."""

from __future__ import annotations

from collections.abc import Iterable

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.storage.heap import HeapFile
from repro.storage.page import DEFAULT_ROWS_PER_PAGE


class Table:
    """A row-store table.

    Rows are plain tuples in schema column order, stored append-only in
    a :class:`~repro.storage.heap.HeapFile`.  Reads on the query path
    go through scans (:mod:`repro.storage.scan`) so that I/O is charged
    to a buffer pool; direct accessors exist for tests and bulk
    internal work.
    """

    def __init__(
        self,
        schema: TableSchema,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> None:
        self.schema = schema
        self.heap = HeapFile(rows_per_page)
        self._pk_index: dict[object, tuple[int, int]] | None = (
            {} if schema.primary_key is not None else None
        )
        #: column name -> value -> row addresses (secondary indexes)
        self._secondary: dict[str, dict[object, list[tuple[int, int]]]] = {}

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[tuple],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> "Table":
        """Build a table and bulk-insert ``rows`` (validated)."""
        table = cls(schema, rows_per_page)
        for row in rows:
            table.insert(row)
        return table

    @classmethod
    def from_validated_rows(
        cls,
        schema: TableSchema,
        rows: list[tuple],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> "Table":
        """Bulk-load rows that are already known schema-valid.

        The fast path for rehosting a slice of an existing table (fact
        shards in the process-parallel backend, DESIGN.md section 8):
        pages are built by slicing, skipping per-row validation, and no
        primary/secondary indexes are maintained — the result serves
        scan-driven paths only.  The schema is stored without its
        primary key so index lookups fail loudly (None) instead of
        silently missing rows.
        """
        from repro.storage.page import Page

        table = cls(schema.without_primary_key(), rows_per_page)
        heap = table.heap
        for page_id, start in enumerate(range(0, len(rows), rows_per_page)):
            page = Page(page_id, rows_per_page)
            page.rows = list(rows[start:start + rows_per_page])
            heap.pages.append(page)
        heap._row_count = len(rows)
        return table

    def insert(self, row: tuple) -> tuple[int, int]:
        """Validate and append ``row``; return its (page, slot) address.

        Raises:
            SchemaError: if the row does not match the schema.
            StorageError: on duplicate primary key.
        """
        row = tuple(row)
        self.schema.validate_row(row)
        if self._pk_index is not None:
            key = row[self.schema.column_index(self.schema.primary_key)]
            if key in self._pk_index:
                raise StorageError(
                    f"duplicate primary key {key!r} in table {self.schema.name!r}"
                )
            address = self.heap.append_row(row)
            self._pk_index[key] = address
        else:
            address = self.heap.append_row(row)
        for column_name, index in self._secondary.items():
            value = row[self.schema.column_index(column_name)]
            index.setdefault(value, []).append(address)
        return address

    def upsert(self, row: tuple) -> tuple[int, int]:
        """Insert ``row``, or replace the row sharing its primary key.

        The replace happens in place at the existing heap address, so
        row count, page layout, and scan order are all unchanged —
        which is what lets the streaming-ingest path upsert dimensions
        under the continuous scan without disturbing its stable-order
        guarantee (DESIGN.md section 15).  Secondary indexes are kept
        consistent with the new column values.

        Raises:
            SchemaError: if the row does not match the schema.
            StorageError: if the table has no primary key (fact tables
                take plain appends, not upserts).
        """
        row = tuple(row)
        self.schema.validate_row(row)
        if self._pk_index is None:
            raise StorageError(
                f"table {self.schema.name!r} has no primary key; "
                f"upsert targets keyed (dimension) tables"
            )
        key = row[self.schema.column_index(self.schema.primary_key)]
        address = self._pk_index.get(key)
        if address is None:
            return self.insert(row)
        old_row = self.heap.read_row(*address)
        self.heap.write_row(*address, row)
        for column_name, index in self._secondary.items():
            position = self.schema.column_index(column_name)
            old_value, new_value = old_row[position], row[position]
            if old_value == new_value:
                continue
            addresses = index.get(old_value, [])
            if address in addresses:
                addresses.remove(address)
                if not addresses:
                    del index[old_value]
            index.setdefault(new_value, []).append(address)
        return address

    def lookup_pk(self, key: object) -> tuple | None:
        """Return the row with primary key ``key``, or None.

        This is an in-memory index lookup (no I/O charge): the paper
        allows indexes on dimension tables, and CJOIN's admission path
        uses them transparently (section 5).
        """
        if self._pk_index is None:
            raise StorageError(
                f"table {self.schema.name!r} has no primary key index"
            )
        address = self._pk_index.get(key)
        if address is None:
            return None
        return self.heap.read_row(*address)

    # ------------------------------------------------------------------
    # Secondary indexes (paper section 5: dimension indexes are common
    # and CJOIN's admission path uses them transparently)
    # ------------------------------------------------------------------
    def create_index(self, column_name: str) -> None:
        """Build an equality index on ``column_name`` (idempotent)."""
        self.schema.column_index(column_name)  # raises on unknown column
        if column_name in self._secondary:
            return
        index: dict[object, list[tuple[int, int]]] = {}
        rows_per_page = self.heap.rows_per_page
        position = 0
        value_index = self.schema.column_index(column_name)
        for row in self.heap.iter_rows():
            address = divmod(position, rows_per_page)
            index.setdefault(row[value_index], []).append(address)
            position += 1
        self._secondary[column_name] = index

    def has_index(self, column_name: str) -> bool:
        """True iff an equality index exists on ``column_name``."""
        return column_name in self._secondary

    def index_lookup(self, column_name: str, values) -> list[tuple]:
        """Rows whose indexed column equals any of ``values``.

        An in-memory index access: no buffer-pool I/O is charged,
        matching the treatment of the primary-key index.

        Raises:
            StorageError: if the column has no index.
        """
        index = self._secondary.get(column_name)
        if index is None:
            raise StorageError(
                f"table {self.schema.name!r} has no index on {column_name!r}"
            )
        rows = []
        for value in values:
            for address in index.get(value, ()):
                rows.append(self.heap.read_row(*address))
        return rows

    @property
    def row_count(self) -> int:
        """Number of rows in the table."""
        return self.heap.row_count

    @property
    def page_count(self) -> int:
        """Number of pages in the table's heap."""
        return self.heap.page_count

    def all_rows(self) -> list[tuple]:
        """Return every row in heap order (test/bulk helper, no I/O charge)."""
        return list(self.heap.iter_rows())

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.row_count})"
