"""Fixed-capacity tuple pages.

Rows are grouped into pages so that I/O is charged in page units, the
granularity at which the paper's disk-bound effects (sequential scan
bandwidth vs random seeks) occur.  A page stores plain Python tuples;
capacity is a row count fixed per heap at creation.
"""

from __future__ import annotations

from repro.errors import StorageError

#: Default number of rows per page.  Chosen so that a milli-scale SSB
#: fact table spans hundreds of pages (enough for I/O patterns to be
#: meaningful) without per-row page overhead dominating.
DEFAULT_ROWS_PER_PAGE = 128


class Page:
    """A fixed-capacity, append-only slotted page of rows."""

    __slots__ = ("page_id", "capacity", "rows")

    def __init__(self, page_id: int, capacity: int = DEFAULT_ROWS_PER_PAGE) -> None:
        if capacity < 1:
            raise StorageError(f"page capacity must be >= 1, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self.rows: list[tuple] = []

    @property
    def is_full(self) -> bool:
        """True iff no more rows fit on this page."""
        return len(self.rows) >= self.capacity

    def append(self, row: tuple) -> int:
        """Append ``row``; return its slot index.

        Raises:
            StorageError: if the page is full.
        """
        if self.is_full:
            raise StorageError(f"page {self.page_id} is full")
        self.rows.append(row)
        return len(self.rows) - 1

    def slot(self, slot_id: int) -> tuple:
        """Return the row stored in ``slot_id``.

        Raises:
            StorageError: if the slot does not exist.
        """
        if not 0 <= slot_id < len(self.rows):
            raise StorageError(
                f"page {self.page_id} has no slot {slot_id} "
                f"({len(self.rows)} rows)"
            )
        return self.rows[slot_id]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, rows={len(self.rows)}/{self.capacity})"
