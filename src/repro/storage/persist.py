"""Durable on-disk storage: snapshots plus an ingest WAL (DESIGN.md
section 16).

The paper's warehouse is *always on*, but an always-on operator is
only as durable as its dataset: until this module, every process start
regenerated SSB from scratch and a crash dropped every acked streamed
write.  This module gives the warehouse a data directory with two
complementary structures:

* **Snapshots** — a full columnar image of the catalog (every table's
  rows, re-encoded with the shm transport's per-column codecs: i64 /
  f64 / one-byte-dict / pickle, DESIGN.md section 14) plus a JSON
  manifest carrying the schemas, the star topology, per-file SHA-256
  checksums, and the ingest generation the image includes.  Snapshot
  publication is atomic: all ``.col`` files and the manifest are
  written and fsynced first, and only then does ``CURRENT`` — a
  one-line pointer file — flip to the new manifest via
  ``os.replace``.  A crash anywhere during a save leaves ``CURRENT``
  pointing at the previous complete snapshot.

* **WAL** — an append-only log, one file per snapshot generation, of
  every ingest batch applied after that snapshot.  A record is
  ``[u32 length | u32 crc32 | pickle payload]``; the append is
  flushed and ``os.fsync``'d *before* the batch's
  :class:`~repro.ingest.buffer.IngestTicket` resolves, so an ack
  means durable.  Recovery replays the longest valid record prefix —
  a torn tail (truncated frame or checksum mismatch) ends replay
  cleanly without ever applying a partial batch — then truncates the
  tail so future appends extend the valid prefix.

``CRASH_HOOK`` is the fault-injection seam for the crash-matrix tests:
when set, it is called with a checkpoint name at every
ordering-sensitive point (after each table file, before/after the
``CURRENT`` flip, before/after the WAL fsync), and a hook that calls
``os._exit`` simulates power loss exactly there.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.errors import PersistenceError
from repro.storage.shm import _encode_column
from repro.storage.table import Table

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

#: The atomic pointer file naming the active manifest.
CURRENT_NAME = "CURRENT"

_MANIFEST_PATTERN = re.compile(r"^MANIFEST-(\d+)\.json$")

#: WAL record header: payload length, then crc32 of the payload.
_WAL_HEADER = struct.Struct(">II")

#: Test-only fault injection: when set, called with a checkpoint name
#: at every ordering-sensitive point of a save or WAL append.
CRASH_HOOK = None


def crash_point(name: str) -> None:
    """Invoke the fault-injection hook, when one is installed."""
    hook = CRASH_HOOK
    if hook is not None:
        hook(name)


@dataclass(frozen=True)
class SnapshotInfo:
    """Receipt for one published snapshot generation."""

    generation: int
    ingest_generation: int
    snapshot_id: int
    manifest: str


@dataclass(frozen=True)
class ReplayReport:
    """What :meth:`DurabilityManager.load` recovered."""

    snapshot_generation: int
    generation: int       # highest ingest generation (snapshot or WAL)
    snapshot_id: int
    wal_records: int
    wal_rows: int


# ----------------------------------------------------------------------
# Column codec (the shm layout, hardened for JSON manifests)
# ----------------------------------------------------------------------
def encode_column(values) -> tuple[str, bytes, tuple | None]:
    """The shm codec, restricted so decode tables survive a manifest.

    The dictionary codec's decode table rides in the JSON manifest, and
    JSON cannot round-trip every hashable Python value bit-exact (1 vs
    1.0 vs True collide as dict keys; tuples come back as lists) — so
    a dict table holding anything but ``str`` falls back to the pickle
    backstop.  SSB's low-cardinality columns are all strings, so the
    hot path is unchanged.
    """
    kind, blob, table = _encode_column(tuple(values))
    if kind == "dict" and not all(type(value) is str for value in table):
        return (
            "pickle",
            pickle.dumps(list(values), pickle.HIGHEST_PROTOCOL),
            None,
        )
    return kind, blob, table


def decode_column(kind: str, blob, values, row_count: int) -> list:
    """Decode one column blob back to its value list."""
    view = memoryview(blob)
    try:
        if kind == "i64":
            column = view.cast("q").tolist()
        elif kind == "f64":
            column = view.cast("d").tolist()
        elif kind == "dict":
            column = list(map(tuple(values).__getitem__, view))
        elif kind == "pickle":
            column = list(pickle.loads(view))
        else:
            raise PersistenceError(f"unknown column codec {kind!r}")
    finally:
        view.release()
    if len(column) != row_count:
        raise PersistenceError(
            f"column decoded to {len(column)} values, expected {row_count}"
        )
    return column


def _schema_to_manifest(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [[c.name, c.dtype.value] for c in schema.columns],
        "primary_key": schema.primary_key,
        "foreign_keys": [
            [fk.column, fk.referenced_table, fk.referenced_column]
            for fk in schema.foreign_keys
        ],
    }


def _schema_from_manifest(spec: dict) -> TableSchema:
    return TableSchema(
        spec["name"],
        [Column(name, DataType(dtype)) for name, dtype in spec["columns"]],
        primary_key=spec["primary_key"],
        foreign_keys=[ForeignKey(*fk) for fk in spec["foreign_keys"]],
    )


def _write_durable(path: Path, payload: bytes) -> None:
    """Write ``path`` and fsync it (contents reach the platters)."""
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so renames/creates are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(fd)


def read_wal(path: Path) -> tuple[list[dict], int]:
    """Replay a WAL file; returns (records, valid_prefix_bytes).

    Stops — without raising — at the first truncated frame, checksum
    mismatch, or unpicklable payload: everything past that point is a
    torn tail from a crash mid-append, and because the frame carries
    its own crc32 a partially written batch can never decode as valid.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    records: list[dict] = []
    offset = 0
    size = len(data)
    while offset + _WAL_HEADER.size <= size:
        length, crc = _WAL_HEADER.unpack_from(data, offset)
        start = offset + _WAL_HEADER.size
        end = start + length
        if end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            break
        records.append(record)
        offset = end
    return records, offset


def has_snapshot(data_dir) -> bool:
    """True iff ``data_dir`` holds a loadable snapshot pointer."""
    directory = Path(data_dir)
    current = directory / CURRENT_NAME
    try:
        manifest_name = current.read_text().strip()
    except OSError:
        return False
    return (directory / manifest_name).is_file()


class DurabilityManager:
    """One warehouse's data directory: snapshots plus the live WAL.

    Thread-safe; the warehouse calls :meth:`log_batch` from its
    scan-boundary apply (driver thread) and :meth:`save_snapshot` from
    ``save()``/``close()`` (any thread).
    """

    def __init__(self, data_dir) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._wal_path: Path | None = None
        self._wal_file = None
        self._generation = self._current_generation()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The active snapshot generation (0 before the first save)."""
        with self._lock:
            return self._generation

    def has_snapshot(self) -> bool:
        """True iff the directory holds a loadable snapshot."""
        return has_snapshot(self.data_dir)

    def _current_generation(self) -> int:
        current = self.data_dir / CURRENT_NAME
        try:
            manifest_name = current.read_text().strip()
        except OSError:
            return 0
        match = _MANIFEST_PATTERN.match(manifest_name)
        return int(match.group(1)) if match else 0

    # ------------------------------------------------------------------
    # Snapshot write
    # ------------------------------------------------------------------
    def save_snapshot(
        self,
        catalog: Catalog,
        star: StarSchema,
        *,
        ingest_generation: int = 0,
        snapshot_id: int = 0,
    ) -> SnapshotInfo:
        """Publish a new snapshot generation atomically.

        Every table file, the manifest, and an empty successor WAL are
        written and fsynced *before* ``CURRENT`` flips — so a crash at
        any point leaves the previous snapshot (and its WAL) active
        and complete.  After the flip the previous generation's files
        are retired best-effort.
        """
        with self._lock:
            generation = self._generation + 1
            tables_meta = []
            for name in catalog.table_names():
                table = catalog.table(name)
                entry = self._write_table_file(table, generation)
                tables_meta.append(entry)
                crash_point(f"snapshot:table:{name}")
            wal_name = f"wal-{generation:06d}.log"
            _write_durable(self.data_dir / wal_name, b"")
            manifest = {
                "format_version": FORMAT_VERSION,
                "generation": generation,
                "ingest_generation": ingest_generation,
                "snapshot_id": snapshot_id,
                "wal": wal_name,
                "star": {
                    "fact": star.fact.name,
                    "dimensions": star.dimension_names(),
                },
                "tables": tables_meta,
            }
            manifest_name = f"MANIFEST-{generation:06d}.json"
            _write_durable(
                self.data_dir / manifest_name,
                json.dumps(manifest, indent=1).encode("utf-8"),
            )
            crash_point("snapshot:before-current")
            self._flip_current(manifest_name)
            crash_point("snapshot:after-current")
            self._close_wal()
            self._wal_path = self.data_dir / wal_name
            self._generation = generation
            self._retire_before(generation)
            return SnapshotInfo(
                generation=generation,
                ingest_generation=ingest_generation,
                snapshot_id=snapshot_id,
                manifest=manifest_name,
            )

    def _write_table_file(self, table: Table, generation: int) -> dict:
        schema = table.schema
        rows = table.all_rows()
        columns = list(zip(*rows)) if rows else [()] * schema.arity
        specs = []
        blobs = []
        offset = 0
        for column in columns:
            kind, blob, values = encode_column(column)
            specs.append(
                {
                    "kind": kind,
                    "offset": offset,
                    "length": len(blob),
                    "values": list(values) if values is not None else None,
                }
            )
            blobs.append(blob)
            offset += len(blob)
        payload = b"".join(blobs)
        file_name = f"{schema.name}-{generation:06d}.col"
        _write_durable(self.data_dir / file_name, payload)
        return {
            "name": schema.name,
            "file": file_name,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "row_count": len(rows),
            "rows_per_page": table.heap.rows_per_page,
            "schema": _schema_to_manifest(schema),
            "columns": specs,
        }

    def _flip_current(self, manifest_name: str) -> None:
        staging = self.data_dir / (CURRENT_NAME + ".tmp")
        _write_durable(staging, (manifest_name + "\n").encode("utf-8"))
        os.replace(staging, self.data_dir / CURRENT_NAME)
        _fsync_dir(self.data_dir)

    def _retire_before(self, keep_generation: int) -> None:
        """Unlink files of superseded generations (best-effort)."""
        for path in self.data_dir.iterdir():
            stem = path.name
            match = re.search(r"-(\d{6})\.(?:col|json|log)$", stem)
            if match is None:
                continue
            if int(match.group(1)) < keep_generation:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    # ------------------------------------------------------------------
    # Snapshot load + WAL replay
    # ------------------------------------------------------------------
    def load(self) -> tuple[Catalog, StarSchema, ReplayReport]:
        """Rebuild the catalog from the active snapshot, replay the WAL.

        Raises:
            PersistenceError: when the directory holds no snapshot, the
                manifest is unreadable, or a table file fails its
                checksum.  A torn WAL tail is *not* an error: replay
                applies the longest valid prefix and truncates the
                rest.
        """
        with self._lock:
            manifest = self._read_manifest()
            schemas: dict[str, TableSchema] = {}
            tables: dict[str, Table] = {}
            for entry in manifest["tables"]:
                table = self._load_table(entry)
                tables[table.schema.name] = table
                schemas[table.schema.name] = table.schema
            star_spec = manifest["star"]
            try:
                star = StarSchema(
                    fact=schemas[star_spec["fact"]],
                    dimensions={
                        name: schemas[name]
                        for name in star_spec["dimensions"]
                    },
                )
            except KeyError as missing:
                raise PersistenceError(
                    f"manifest star references unknown table {missing}"
                ) from None
            catalog = Catalog()
            for name in tables:
                catalog.register_table(tables[name])
            catalog.register_star(star)
            report = self._replay_wal(manifest, catalog, star)
            self._generation = manifest["generation"]
            return catalog, star, report

    def _read_manifest(self) -> dict:
        current = self.data_dir / CURRENT_NAME
        try:
            manifest_name = current.read_text().strip()
        except OSError:
            raise PersistenceError(
                f"no snapshot in {self.data_dir}: save() one first (or "
                f"pass the dataset and let the warehouse write it)"
            ) from None
        try:
            manifest = json.loads(
                (self.data_dir / manifest_name).read_text("utf-8")
            )
        except (OSError, ValueError) as error:
            raise PersistenceError(
                f"cannot read manifest {manifest_name!r}: {error}"
            ) from None
        if manifest.get("format_version") != FORMAT_VERSION:
            raise PersistenceError(
                f"snapshot format {manifest.get('format_version')!r} is "
                f"not this build's format {FORMAT_VERSION}"
            )
        return manifest

    def _load_table(self, entry: dict) -> Table:
        path = self.data_dir / entry["file"]
        try:
            payload = path.read_bytes()
        except OSError as error:
            raise PersistenceError(
                f"cannot read table file {entry['file']!r}: {error}"
            ) from None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry["sha256"]:
            raise PersistenceError(
                f"checksum mismatch in {entry['file']!r}: snapshot is "
                f"corrupt (expected {entry['sha256'][:12]}…, got "
                f"{digest[:12]}…)"
            )
        schema = _schema_from_manifest(entry["schema"])
        row_count = entry["row_count"]
        columns = [
            decode_column(
                spec["kind"],
                payload[spec["offset"]:spec["offset"] + spec["length"]],
                spec["values"],
                row_count,
            )
            for spec in entry["columns"]
        ]
        if columns:
            rows = list(zip(*columns))
        else:
            rows = [() for _ in range(row_count)]
        rows_per_page = entry["rows_per_page"]
        if schema.primary_key is None:
            # unkeyed tables (the fact) take the page-slicing bulk path:
            # the rows come from a checksum-verified image of a table
            # that validated them on the way in
            return Table.from_validated_rows(schema, rows, rows_per_page)
        return Table.from_rows(schema, rows, rows_per_page)

    def _replay_wal(
        self, manifest: dict, catalog: Catalog, star: StarSchema
    ) -> ReplayReport:
        wal_path = self.data_dir / manifest["wal"]
        records, valid_bytes = read_wal(wal_path)
        generation = manifest["ingest_generation"]
        snapshot_id = manifest["snapshot_id"]
        rows = 0
        fact_table = catalog.table(star.fact.name)
        for record in records:
            for name, upserts in record["dim_upserts"].items():
                table = catalog.table(name)
                for row in upserts:
                    table.upsert(tuple(row))
                    rows += 1
            for row in record["fact_rows"]:
                fact_table.insert(tuple(row))
                rows += 1
            generation = max(generation, record["generation"])
            snapshot_id = max(snapshot_id, record.get("snapshot_id", 0))
        try:
            if wal_path.stat().st_size > valid_bytes:
                # drop the torn tail so future appends extend the
                # longest valid prefix instead of burying records
                # behind a corrupt frame
                with open(wal_path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            pass
        self._close_wal()
        self._wal_path = wal_path
        return ReplayReport(
            snapshot_generation=manifest["generation"],
            generation=generation,
            snapshot_id=snapshot_id,
            wal_records=len(records),
            wal_rows=rows,
        )

    # ------------------------------------------------------------------
    # WAL append (the ack-implies-durable contract)
    # ------------------------------------------------------------------
    def log_batch(
        self, batch, *, generation: int, snapshot_id: int
    ) -> None:
        """Append one applied batch to the WAL and fsync it.

        The warehouse calls this *after* applying the batch in memory
        and *before* resolving its ticket: once this returns, the
        batch survives any crash, so the ack the producer then sees is
        a durability receipt.

        Raises:
            PersistenceError: when no snapshot (and hence no WAL
                epoch) exists yet.
        """
        record = {
            "generation": generation,
            "snapshot_id": snapshot_id,
            "fact_rows": batch.fact_rows,
            "dim_upserts": batch.dim_upserts,
        }
        payload = pickle.dumps(record, pickle.HIGHEST_PROTOCOL)
        frame = _WAL_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            handle = self._require_wal()
            crash_point("wal:before-write")
            handle.write(frame)
            crash_point("wal:before-sync")
            handle.flush()
            os.fsync(handle.fileno())
            crash_point("wal:after-sync")

    def _require_wal(self):
        if self._wal_file is None:
            if self._wal_path is None:
                raise PersistenceError(
                    "no WAL epoch: save a snapshot before logging ingest"
                )
            self._wal_file = open(self._wal_path, "ab")
        return self._wal_file

    def _close_wal(self) -> None:
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None

    def close(self) -> None:
        """Release the WAL handle (idempotent)."""
        with self._lock:
            self._close_wal()
