"""Range partitioning of the fact table (paper section 5).

The fact table may be range-partitioned, typically on a date column
tied to data loading.  CJOIN exploits this by tagging each query with
the set of partitions it must scan and emitting the end-of-query
control tuple as soon as the query's partitions are covered, so
queries terminate early (see ``repro.cjoin`` integration).

This module provides the storage-side pieces: the partitioning scheme,
a partitioned table whose global positions are stable, and partition
pruning for interval predicates.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable
from dataclasses import dataclass

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.storage.page import DEFAULT_ROWS_PER_PAGE
from repro.storage.table import Table


@dataclass(frozen=True)
class RangePartitioning:
    """Partitioning scheme: ``column`` split at ascending ``boundaries``.

    ``boundaries = [b0, b1, ..., bk-1]`` creates k+1 partitions:
    ``(-inf, b0), [b0, b1), ..., [bk-1, +inf)``.
    """

    column: str
    boundaries: tuple

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise StorageError("partition boundaries must be strictly ascending")

    @property
    def partition_count(self) -> int:
        """Number of partitions."""
        return len(self.boundaries) + 1

    def partition_of(self, value) -> int:
        """Return the partition id holding ``value``."""
        if value is None:
            raise StorageError(
                f"NULL in partitioning column {self.column!r}"
            )
        return bisect.bisect_right(self.boundaries, value)

    def partitions_for_interval(
        self, low, high, low_inclusive: bool = True, high_inclusive: bool = True
    ) -> list[int]:
        """Return partition ids overlapping [low, high] (None = unbounded).

        This is the pruning primitive: a query whose partitioning-column
        predicate implies this interval only needs these partitions.
        """
        first = 0 if low is None else self.partition_of(low)
        last = self.partition_count - 1 if high is None else self.partition_of(high)
        if low is not None and not low_inclusive and first < last:
            # an open lower bound exactly on a boundary can skip one partition
            if first < len(self.boundaries) and self.boundaries[first] == low:
                pass  # conservative: keep partition, correctness over pruning
        if not high_inclusive and high is not None and last > first:
            last_boundary = last - 1
            if (
                0 <= last_boundary < len(self.boundaries)
                and self.boundaries[last_boundary] == high
            ):
                last -= 1
        return list(range(first, last + 1))


class PartitionedTable:
    """A fact table stored as one :class:`Table` per range partition.

    Global row positions are assigned per-partition in partition order
    *after loading is frozen*, so the continuous scan can traverse the
    union of partitions with stable positions.
    """

    def __init__(
        self,
        schema: TableSchema,
        partitioning: RangePartitioning,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> None:
        if not schema.has_column(partitioning.column):
            raise StorageError(
                f"partitioning column {partitioning.column!r} not in "
                f"table {schema.name!r}"
            )
        self.schema = schema
        self.partitioning = partitioning
        self.partitions: list[Table] = [
            Table(_unkeyed(schema), rows_per_page)
            for _ in range(partitioning.partition_count)
        ]
        self._column_index = schema.column_index(partitioning.column)

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        partitioning: RangePartitioning,
        rows: Iterable[tuple],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> "PartitionedTable":
        """Build a partitioned table and route ``rows`` to partitions."""
        table = cls(schema, partitioning, rows_per_page)
        for row in rows:
            table.insert(row)
        return table

    def insert(self, row: tuple) -> tuple[int, int]:
        """Route ``row`` to its partition; return (partition_id, local position)."""
        row = tuple(row)
        self.schema.validate_row(row)
        partition_id = self.partitioning.partition_of(row[self._column_index])
        table = self.partitions[partition_id]
        table.insert(row)
        return partition_id, table.row_count - 1

    @property
    def row_count(self) -> int:
        """Total rows across partitions."""
        return sum(table.row_count for table in self.partitions)

    def partition_row_counts(self) -> list[int]:
        """Row counts per partition, in partition order."""
        return [table.row_count for table in self.partitions]

    def partition_offsets(self) -> list[int]:
        """Global position of each partition's first row."""
        offsets = []
        total = 0
        for table in self.partitions:
            offsets.append(total)
            total += table.row_count
        return offsets

    def partition_span(self, partition_id: int) -> tuple[int, int]:
        """Return the [start, end) global position span of a partition."""
        if not 0 <= partition_id < len(self.partitions):
            raise StorageError(f"no partition {partition_id}")
        offsets = self.partition_offsets()
        start = offsets[partition_id]
        return start, start + self.partitions[partition_id].row_count


def contiguous_spans(row_count: int, segment_count: int) -> list[tuple[int, int]]:
    """Split ``[0, row_count)`` into balanced contiguous ``[start, end)`` spans.

    The segmentation primitive shared by range partitioning consumers
    and the process-parallel CJOIN backend (DESIGN.md section 8): spans
    are contiguous in global scan order, sizes differ by at most one
    row, and when ``row_count < segment_count`` the trailing spans are
    empty (never dropped), so callers can map segment index -> worker
    statically.

    Raises:
        StorageError: on a non-positive segment count or negative
            row count.
    """
    if segment_count < 1:
        raise StorageError(
            f"segment_count must be >= 1, got {segment_count}"
        )
    if row_count < 0:
        raise StorageError(f"row_count must be >= 0, got {row_count}")
    base, extra = divmod(row_count, segment_count)
    spans: list[tuple[int, int]] = []
    start = 0
    for segment in range(segment_count):
        length = base + (1 if segment < extra else 0)
        spans.append((start, start + length))
        start += length
    return spans


def _unkeyed(schema: TableSchema) -> TableSchema:
    """Copy ``schema`` without a primary key.

    Partitions share one logical key space, so per-partition PK indexes
    would be misleading; uniqueness is the loader's responsibility.
    """
    return schema.without_primary_key()
