"""Dictionary compression (paper section 5, "Compressed Tables").

CJOIN only requires that the store can evaluate predicates, extract
fields, and retrieve result tuples; compression is orthogonal.  We
implement order-preserving dictionary encoding for string columns:

* equality and range predicates can be evaluated directly on codes
  (the paper's BLINK-style "partial decompression"),
* tuples are decompressed on demand as they leave the scan.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.storage.table import Table


class DictionaryCodec:
    """An order-preserving string -> code dictionary for one column."""

    def __init__(self, values: Iterable[str]) -> None:
        distinct = sorted(set(values))
        self._code_of = {value: code for code, value in enumerate(distinct)}
        self._value_of = distinct

    def encode(self, value: str) -> int:
        """Return the code for ``value``.

        Raises:
            StorageError: if the value was not in the build set.
        """
        try:
            return self._code_of[value]
        except KeyError:
            raise StorageError(f"value {value!r} not in dictionary") from None

    def try_encode(self, value: str) -> int | None:
        """Return the code for ``value``, or None if absent."""
        return self._code_of.get(value)

    def decode(self, code: int) -> str:
        """Return the value for ``code``."""
        if not 0 <= code < len(self._value_of):
            raise StorageError(f"code {code} out of dictionary range")
        return self._value_of[code]

    def encode_bound(self, value: str, side: str) -> int:
        """Map a range-predicate bound onto code space.

        Because the encoding is order-preserving, ``column <= v``
        becomes ``code <= encode_bound(v, 'upper')`` and ``column >= v``
        becomes ``code >= encode_bound(v, 'lower')`` even when ``v``
        itself is not in the dictionary.
        """
        if side not in ("lower", "upper"):
            raise StorageError(f"side must be 'lower' or 'upper', got {side!r}")
        import bisect

        if side == "lower":
            return bisect.bisect_left(self._value_of, value)
        return bisect.bisect_right(self._value_of, value) - 1

    @property
    def cardinality(self) -> int:
        """Number of distinct values in the dictionary."""
        return len(self._value_of)


class CompressedTable:
    """A table whose selected string columns are dictionary-encoded.

    The physical table stores integer codes; :meth:`decompress_row`
    restores the logical tuple.  ``schema`` remains the *logical*
    schema so query objects validate unchanged.
    """

    def __init__(
        self,
        logical_schema: TableSchema,
        physical: Table,
        codecs: dict[str, DictionaryCodec],
    ) -> None:
        self.schema = logical_schema
        self.physical = physical
        self.codecs = codecs
        self._coded_indexes = [
            (logical_schema.column_index(name), codec)
            for name, codec in codecs.items()
        ]

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return self.physical.row_count

    def decompress_row(self, coded_row: tuple) -> tuple:
        """Restore the logical tuple from a stored (coded) tuple."""
        row = list(coded_row)
        for index, codec in self._coded_indexes:
            if row[index] is not None:
                row[index] = codec.decode(row[index])
        return tuple(row)

    def compression_ratio(self) -> float:
        """Crude logical/physical size ratio (string bytes vs int codes)."""
        logical = physical = 0
        for coded_row in self.physical.heap.iter_rows():
            row = self.decompress_row(coded_row)
            for logical_value, physical_value in zip(row, coded_row):
                logical += _value_size(logical_value)
                physical += _value_size(physical_value)
        if physical == 0:
            return 1.0
        return logical / physical


class DecompressingContinuousScan:
    """A continuous scan over a compressed table, decompressing on the fly.

    Presents the :class:`~repro.storage.scan.ContinuousScan` interface;
    the underlying I/O (and buffer pool) sees only the compressed
    pages, while consumers receive logical tuples — the paper's
    "decompress on-demand as needed" mode for CJOIN (section 5).
    """

    def __init__(self, table: CompressedTable, buffer_pool) -> None:
        from repro.storage.scan import ContinuousScan

        self.table = table
        self._inner = ContinuousScan(table.physical, buffer_pool)

    @property
    def next_position(self) -> int:
        """Position of the tuple the next :meth:`next` call returns."""
        return self._inner.next_position

    @property
    def tuples_returned(self) -> int:
        """Total tuples produced since construction."""
        return self._inner.tuples_returned

    def next(self) -> tuple[int, tuple] | None:
        """Return the next (position, logical row), or None when empty."""
        produced = self._inner.next()
        if produced is None:
            return None
        position, coded_row = produced
        return position, self.table.decompress_row(coded_row)


def compress_table(table: Table, column_names: list[str]) -> CompressedTable:
    """Dictionary-encode the named string columns of ``table``.

    Raises:
        StorageError: if a named column is not of string type.
    """
    schema = table.schema
    for name in column_names:
        if schema.column(name).dtype is not DataType.STRING:
            raise StorageError(
                f"only string columns can be dictionary-encoded, "
                f"{name!r} is {schema.column(name).dtype.value}"
            )
    rows = table.all_rows()
    codecs = {
        name: DictionaryCodec(
            row[schema.column_index(name)]
            for row in rows
            if row[schema.column_index(name)] is not None
        )
        for name in column_names
    }
    physical_columns = [
        Column(column.name, DataType.INT if column.name in codecs else column.dtype)
        for column in schema.columns
    ]
    physical_schema = TableSchema(
        schema.name,
        physical_columns,
        primary_key=schema.primary_key,
        foreign_keys=schema.foreign_keys,
    )
    physical = Table(physical_schema, rows_per_page=table.heap.rows_per_page)
    coded_positions = [(schema.column_index(name), codecs[name]) for name in codecs]
    for row in rows:
        coded = list(row)
        for index, codec in coded_positions:
            if coded[index] is not None:
                coded[index] = codec.encode(coded[index])
        physical.insert(tuple(coded))
    return CompressedTable(schema, physical, codecs)


def _value_size(value: object) -> int:
    """Approximate on-disk byte size of ``value``."""
    if value is None:
        return 1
    if isinstance(value, str):
        return len(value)
    if isinstance(value, float):
        return 8
    return 4
