"""Buffer pool with LRU replacement.

Every page fetch on the query path goes through a :class:`BufferPool`,
which records hits and classifies misses as sequential or random via
:class:`~repro.storage.iostats.IOStats`.  Concurrent scans sharing one
pool is precisely the contention mechanism the paper's evaluation
exercises: interleaved scans evict each other's pages and turn
sequential access into random access.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.heap import HeapFile
from repro.storage.iostats import IOStats
from repro.storage.page import Page


class BufferPool:
    """An LRU cache of (heap_id, page_id) -> Page.

    Args:
        capacity_pages: maximum number of resident pages; must be >= 1.
        stats: counters to charge; a fresh :class:`IOStats` when omitted.
    """

    def __init__(self, capacity_pages: int, stats: IOStats | None = None) -> None:
        if capacity_pages < 1:
            raise StorageError(
                f"buffer pool capacity must be >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.stats = stats if stats is not None else IOStats()
        self._pages: OrderedDict[tuple[int, int], Page] = OrderedDict()

    def fetch(self, heap: HeapFile, page_id: int) -> Page:
        """Return a page, reading it 'from disk' on a miss.

        A hit refreshes LRU recency; a miss may evict the least
        recently used resident page.
        """
        key = (heap.heap_id, page_id)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.record_hit()
            return page
        page = heap.page(page_id)
        self.stats.record_read(heap.heap_id, page_id)
        self._pages[key] = page
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return page

    def contains(self, heap: HeapFile, page_id: int) -> bool:
        """Return True iff the page is resident (no recency update)."""
        return (heap.heap_id, page_id) in self._pages

    @property
    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        return len(self._pages)

    def invalidate(self, heap: HeapFile) -> None:
        """Drop all resident pages of ``heap`` (e.g. after a bulk load)."""
        keys = [key for key in self._pages if key[0] == heap.heap_id]
        for key in keys:
            del self._pages[key]

    def clear(self) -> None:
        """Drop every resident page (cold-cache experiment setup)."""
        self._pages.clear()
