"""Column-store tables (paper section 5, "Column Stores").

A :class:`ColumnStoreTable` stores each column in its own heap of
value pages.  The continuous scan adaptation the paper describes — a
scan/merge of *only* the columns the current query mix touches — is
provided by :meth:`ColumnStoreTable.merge_scan`: it fetches pages for
the requested columns only, so the I/O volume observed by the buffer
pool shrinks proportionally.

Rows reconstructed by a merge scan are full-arity tuples with ``None``
in unrequested positions, so downstream operators (filters keyed on
foreign keys, aggregates on requested attributes) run unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.page import DEFAULT_ROWS_PER_PAGE


class ColumnStoreTable:
    """A table decomposed into one heap of values per column."""

    def __init__(
        self,
        schema: TableSchema,
        values_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> None:
        self.schema = schema
        self.values_per_page = values_per_page
        self.column_heaps: dict[str, HeapFile] = {
            column.name: HeapFile(values_per_page) for column in schema.columns
        }
        self._row_count = 0

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[tuple],
        values_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> "ColumnStoreTable":
        """Build a column store from row tuples (validated)."""
        table = cls(schema, values_per_page)
        for row in rows:
            table.insert(row)
        return table

    def insert(self, row: tuple) -> int:
        """Append ``row`` (validated); return its position."""
        row = tuple(row)
        self.schema.validate_row(row)
        for column, value in zip(self.schema.columns, row):
            # Values are boxed in 1-tuples so column heaps reuse the row
            # page machinery (and its I/O accounting) unchanged.
            self.column_heaps[column.name].append_row((value,))
        self._row_count += 1
        return self._row_count - 1

    @property
    def row_count(self) -> int:
        """Number of rows in the table."""
        return self._row_count

    def pages_for_columns(self, column_names: Iterable[str]) -> int:
        """Total page count across the named columns (I/O volume proxy)."""
        return sum(
            self.column_heaps[name].page_count
            for name in self._checked(column_names)
        )

    def merge_scan(
        self,
        column_names: Iterable[str],
        buffer_pool: BufferPool,
    ) -> Iterator[tuple[int, tuple]]:
        """Yield (position, row) scanning only the named columns.

        Unrequested columns are ``None`` in the yielded rows.  One pass,
        positions ascending, every column page fetched exactly once per
        pass — the column-store realization of the continuous scan.
        """
        names = self._checked(column_names)
        name_to_index = {
            column.name: i for i, column in enumerate(self.schema.columns)
        }
        arity = self.schema.arity
        readers = [
            (name_to_index[name], self._column_values(name, buffer_pool))
            for name in names
        ]
        for position in range(self._row_count):
            row = [None] * arity
            for index, reader in readers:
                row[index] = next(reader)
            yield position, tuple(row)

    def _column_values(self, name: str, buffer_pool: BufferPool) -> Iterator:
        heap = self.column_heaps[name]
        for page_id in heap.page_ids():
            page = buffer_pool.fetch(heap, page_id)
            for boxed in page.rows:
                yield boxed[0]

    def _checked(self, column_names: Iterable[str]) -> list[str]:
        names = list(column_names)
        if not names:
            raise StorageError("merge scan requires at least one column")
        for name in names:
            if name not in self.column_heaps:
                raise StorageError(
                    f"table {self.schema.name!r} has no column {name!r}"
                )
        return names
