"""Multi-version visibility for snapshot isolation.

The paper assumes snapshot isolation (section 2.1) and sketches two
CJOIN adaptations for mixed query/update workloads (section 3.5).  We
implement the first: the continuous scan exposes per-tuple version
metadata, and the Preprocessor treats "visible in query's snapshot" as
a virtual fact-table predicate.

Versioning model (simplified PostgreSQL-style):

* every committed transaction gets an increasing id;
* a tuple's ``xmin`` is the id of the transaction that inserted it and
  ``xmax`` the id of the one that deleted it (None while live);
* snapshot ``s`` sees a tuple iff ``xmin <= s`` and ``xmax is None or
  xmax > s``.

Rows are never physically removed, which preserves the continuous
scan's stable-order guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import SnapshotError
from repro.storage.table import Table


class TupleVersion(NamedTuple):
    """Insertion/deletion transaction ids for one stored tuple."""

    xmin: int
    xmax: int | None


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time view of the database."""

    snapshot_id: int

    def can_see(self, version: TupleVersion) -> bool:
        """Return True iff a tuple with ``version`` is visible here."""
        if version.xmin > self.snapshot_id:
            return False
        return version.xmax is None or version.xmax > self.snapshot_id


class VersionedTable:
    """A table with parallel per-row version metadata.

    The underlying :class:`Table` holds the row payloads (and thus
    drives paging and scans); ``versions[position]`` holds that row's
    visibility interval.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self.versions: list[TupleVersion] = [
            TupleVersion(xmin=0, xmax=None) for _ in range(table.row_count)
        ]

    @property
    def schema(self):
        """The underlying table's schema."""
        return self.table.schema

    @property
    def row_count(self) -> int:
        """Number of stored row versions (live and dead)."""
        return self.table.row_count

    def insert(self, row: tuple, xmin: int) -> int:
        """Append ``row`` visible from transaction ``xmin``; return position."""
        self.table.insert(row)
        self.versions.append(TupleVersion(xmin=xmin, xmax=None))
        return len(self.versions) - 1

    def delete(self, position: int, xmax: int) -> None:
        """Mark the row at ``position`` as deleted by transaction ``xmax``.

        Raises:
            SnapshotError: on unknown position or double delete.
        """
        if not 0 <= position < len(self.versions):
            raise SnapshotError(f"no row at position {position}")
        version = self.versions[position]
        if version.xmax is not None:
            raise SnapshotError(f"row {position} already deleted by {version.xmax}")
        self.versions[position] = version._replace(xmax=xmax)

    def version_at(self, position: int) -> TupleVersion:
        """Return the version metadata of the row at ``position``."""
        if not 0 <= position < len(self.versions):
            raise SnapshotError(f"no row at position {position}")
        return self.versions[position]

    def visible_rows(self, snapshot: Snapshot) -> list[tuple]:
        """Materialize the rows visible in ``snapshot`` (test helper)."""
        return [
            row
            for position, row in enumerate(self.table.heap.iter_rows())
            if snapshot.can_see(self.versions[position])
        ]


class TransactionManager:
    """Issues snapshot ids and applies committed write sets.

    The id counter starts at 0: bulk-loaded data carries ``xmin=0`` and
    is visible to every snapshot.
    """

    def __init__(self) -> None:
        self._committed = 0

    def current_snapshot(self) -> Snapshot:
        """Return a snapshot of everything committed so far."""
        return Snapshot(self._committed)

    def restore(self, snapshot_id: int) -> None:
        """Fast-forward the id counter past recovered history.

        Recovered rows are bulk-loaded with ``xmin=0`` (visible
        everywhere), so only the counter needs to continue — a
        post-restart commit must not reuse a snapshot id that was
        already handed out as an ingest receipt before the crash.
        """
        self._committed = max(self._committed, int(snapshot_id))

    def commit(
        self,
        table: VersionedTable,
        inserts: list[tuple] | None = None,
        deletes: list[int] | None = None,
    ) -> Snapshot:
        """Atomically apply a write set; return the post-commit snapshot.

        Updates are expressed as delete + insert, as in the paper's
        append-mostly warehouse model.
        """
        txn_id = self._committed + 1
        for position in deletes or []:
            table.delete(position, xmax=txn_id)
        for row in inserts or []:
            table.insert(row, xmin=txn_id)
        self._committed = txn_id
        return Snapshot(txn_id)
