"""Row-store substrate: pages, heap files, buffer pool, scans, MVCC.

The paper's CJOIN prototype sits on PostgreSQL; this package is the
substitute substrate (see DESIGN.md section 3).  It provides exactly
the services CJOIN needs:

* tables of tuples stored in fixed-capacity pages (`page`, `heap`,
  `table`),
* a buffer pool with LRU replacement and sequential/random I/O
  accounting (`buffer`, `iostats`),
* one-shot and *continuous* (circular, order-stable) scans (`scan`),
* snapshot-isolation visibility for mixed query/update workloads
  (`mvcc`),
* the section-5 extensions: column storage (`column`), dictionary
  compression (`compression`), and range partitioning (`partition`),
* durable snapshots plus the ingest WAL (`persist`, DESIGN.md
  section 16).
"""

from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnStoreTable
from repro.storage.compression import DictionaryCodec, compress_table
from repro.storage.heap import HeapFile
from repro.storage.iostats import IOStats
from repro.storage.matview import DimensionView
from repro.storage.persist import DurabilityManager, ReplayReport, SnapshotInfo, has_snapshot
from repro.storage.mvcc import Snapshot, TransactionManager, TupleVersion, VersionedTable
from repro.storage.page import Page
from repro.storage.partition import PartitionedTable, RangePartitioning
from repro.storage.scan import ContinuousScan, TableScan
from repro.storage.table import Table

__all__ = [
    "BufferPool",
    "ColumnStoreTable",
    "ContinuousScan",
    "DictionaryCodec",
    "DimensionView",
    "DurabilityManager",
    "HeapFile",
    "IOStats",
    "Page",
    "PartitionedTable",
    "RangePartitioning",
    "ReplayReport",
    "Snapshot",
    "SnapshotInfo",
    "Table",
    "TableScan",
    "TransactionManager",
    "TupleVersion",
    "VersionedTable",
    "compress_table",
    "has_snapshot",
]
