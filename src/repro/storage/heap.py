"""Heap files: ordered sequences of pages.

A heap file assigns monotonically increasing page ids, which is what
lets :class:`~repro.storage.iostats.IOStats` distinguish sequential
from random access and lets the continuous scan guarantee a stable
tuple order across wrap-arounds (paper section 3.3.3).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.errors import StorageError
from repro.storage.page import DEFAULT_ROWS_PER_PAGE, Page

_heap_ids = itertools.count()


class HeapFile:
    """An append-only list of pages holding one table's rows."""

    def __init__(self, rows_per_page: int = DEFAULT_ROWS_PER_PAGE) -> None:
        self.heap_id = next(_heap_ids)
        self.rows_per_page = rows_per_page
        self.pages: list[Page] = []
        self._row_count = 0

    def append_row(self, row: tuple) -> tuple[int, int]:
        """Append ``row``; return its (page_id, slot_id) address."""
        if not self.pages or self.pages[-1].is_full:
            self.pages.append(Page(len(self.pages), self.rows_per_page))
        page = self.pages[-1]
        slot_id = page.append(row)
        self._row_count += 1
        return page.page_id, slot_id

    def page(self, page_id: int) -> Page:
        """Return page ``page_id``.

        Raises:
            StorageError: if the page does not exist.
        """
        if not 0 <= page_id < len(self.pages):
            raise StorageError(
                f"heap {self.heap_id} has no page {page_id} "
                f"({len(self.pages)} pages)"
            )
        return self.pages[page_id]

    def read_row(self, page_id: int, slot_id: int) -> tuple:
        """Return the row at (``page_id``, ``slot_id``)."""
        return self.page(page_id).slot(slot_id)

    def write_row(self, page_id: int, slot_id: int, row: tuple) -> None:
        """Replace the row at (``page_id``, ``slot_id``) in place.

        The page count, row count, and every address are unchanged, so
        the continuous scan's stable-order guarantee holds across the
        write (the dimension-upsert path relies on this).

        Raises:
            StorageError: if the address does not hold a row.
        """
        page = self.page(page_id)
        page.slot(slot_id)  # raises on an empty/unknown slot
        page.rows[slot_id] = tuple(row)

    @property
    def page_count(self) -> int:
        """Number of pages in the heap."""
        return len(self.pages)

    @property
    def row_count(self) -> int:
        """Number of rows in the heap."""
        return self._row_count

    def page_ids(self) -> range:
        """Page ids in heap order."""
        return range(len(self.pages))

    def iter_rows(self) -> Iterator[tuple]:
        """Yield all rows in heap order, bypassing the buffer pool.

        For bulk internal use (e.g. building statistics); query
        execution paths go through a scan so I/O is accounted.
        """
        for page in self.pages:
            yield from page.rows
