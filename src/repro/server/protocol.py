"""The warehouse wire protocol: framing and frame vocabulary.

Normative specification: docs/PROTOCOL.md.  This module implements its
transport layer — length-prefixed JSON frames (docs/PROTOCOL.md
section 1), the version-negotiation constants (section 2), the frame
vocabulary (sections 3 and 4), the PEP-249 error-class names of the
error-mapping table (section 5), and the description / row-page codecs
(section 6).  Both endpoints share it: :class:`~repro.server.tcp.
WarehouseServer` encodes responses with it and
:class:`~repro.client.remote.RemoteConnection` decodes them.

A frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The transport
never interprets frame bodies beyond requiring a JSON object with a
string ``type`` member; everything else is the server's and client's
business, which keeps this module free of any engine dependency.
"""

from __future__ import annotations

import json
import struct

from repro.catalog.schema import DataType
from repro.errors import ReproError

#: Protocol version offered in HELLO and confirmed in HELLO_OK.  A
#: server refuses any other version (docs/PROTOCOL.md section 2).
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON body, guarding both endpoints
#: against a corrupt or hostile length prefix (docs/PROTOCOL.md
#: section 7).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default rows per FETCH page; pages bound frame sizes, not result
#: sizes (docs/PROTOCOL.md section 6).
DEFAULT_PAGE_ROWS = 256

#: The big-endian unsigned 32-bit length prefix.
_HEADER = struct.Struct(">I")

# ----------------------------------------------------------------------
# Frame vocabulary (docs/PROTOCOL.md sections 3 and 4)
# ----------------------------------------------------------------------
#: Client-to-server frame types.
HELLO = "hello"
EXECUTE = "execute"
FETCH = "fetch"
CANCEL = "cancel"
CLOSE = "close"

#: Server-to-client frame types.
HELLO_OK = "hello_ok"
EXECUTE_OK = "execute_ok"
ROWS = "rows"
CANCEL_OK = "cancel_ok"
CLOSE_OK = "close_ok"
ERROR = "error"

#: The error-class names an ERROR frame may carry (docs/PROTOCOL.md
#: section 5): exactly the PEP-249 classes of
#: :mod:`repro.client.exceptions`.  A client maps unknown names to
#: ``DatabaseError``, so the table can grow without breaking old
#: clients.
ERROR_CLASS_NAMES = (
    "Error",
    "InterfaceError",
    "DatabaseError",
    "ProgrammingError",
    "OperationalError",
    "NotSupportedError",
)


class ProtocolError(ReproError):
    """The byte stream violates the framing rules of docs/PROTOCOL.md:

    a truncated frame, an oversized length prefix, a body that is not
    a JSON object, or a frame without a string ``type``.  Fatal for
    the connection that produced it — framing errors mean the stream
    can no longer be trusted.
    """


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: length prefix plus UTF-8 JSON body.

    Raises:
        ProtocolError: when the payload is not a dict with a string
            ``type``, or its encoding exceeds ``MAX_FRAME_BYTES``.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("type"), str
    ):
        raise ProtocolError(
            "a frame payload must be a dict with a string 'type'"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _read_exact(reader, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on EOF at offset zero.

    Raises:
        ProtocolError: on EOF partway through.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = reader.read(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of {count} "
                f"bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(reader) -> dict | None:
    """Read one frame from a binary reader (``.read(n)``).

    Returns the decoded payload, or None on a clean end-of-stream at a
    frame boundary (the peer closed between frames).

    Raises:
        ProtocolError: on truncation, an oversized or malformed length
            prefix, invalid JSON, or a body that is not an object with
            a string ``type``.
    """
    header = _read_exact(reader, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = _read_exact(reader, length) if length else b""
    if length and body is None:
        raise ProtocolError("connection closed before the frame body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or not isinstance(
        payload.get("type"), str
    ):
        raise ProtocolError(
            "frame body must be a JSON object with a string 'type'"
        )
    return payload


# ----------------------------------------------------------------------
# Description and row codecs (docs/PROTOCOL.md section 6)
# ----------------------------------------------------------------------
def encode_description(description: tuple | None) -> list | None:
    """JSON-encode PEP 249 7-tuples; type codes travel as DataType names."""
    if description is None:
        return None
    return [
        [entry[0], entry[1].name, *entry[2:]] for entry in description
    ]


def decode_description(entries: list | None) -> tuple | None:
    """Rebuild the description tuple; inverse of :func:`encode_description`.

    Raises:
        ProtocolError: on an unknown type-code name or malformed entry.
    """
    if entries is None:
        return None
    description = []
    try:
        for entry in entries:
            name, type_name, *rest = entry
            description.append((name, DataType[type_name], *rest))
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed description in execute_ok frame: {error}"
        ) from error
    return tuple(description)


def decode_rows(rows) -> list[tuple]:
    """Rebuild result tuples from a ROWS frame's JSON arrays.

    Raises:
        ProtocolError: when ``rows`` is not a list of arrays.
    """
    if not isinstance(rows, list):
        raise ProtocolError("rows frame must carry a list of row arrays")
    try:
        return [tuple(row) for row in rows]
    except TypeError as error:
        raise ProtocolError(f"malformed row in rows frame: {error}") from error


def error_payload(class_name: str, message: str) -> dict:
    """Build an ERROR frame payload (docs/PROTOCOL.md section 5)."""
    if class_name not in ERROR_CLASS_NAMES:
        class_name = "DatabaseError"
    return {
        "type": ERROR,
        "error": {"class": class_name, "message": message},
    }
