"""The warehouse wire protocol: framing and frame vocabulary.

Normative specification: docs/PROTOCOL.md.  This module implements its
transport layer — length-prefixed JSON frames (docs/PROTOCOL.md
section 1), the version-negotiation constants (section 2), the frame
vocabulary (sections 3 and 4), the PEP-249 error-class names of the
error-mapping table (section 5), and the description / row-page codecs
(section 6).  Both endpoints share it: :class:`~repro.server.tcp.
WarehouseServer` encodes responses with it and
:class:`~repro.client.remote.RemoteConnection` decodes them.

A frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The transport
never interprets frame bodies beyond requiring a JSON object with a
string ``type`` member; everything else is the server's and client's
business, which keeps this module free of any engine dependency.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.catalog.schema import DataType
from repro.errors import ReproError

#: Highest protocol version this implementation speaks; offered in
#: HELLO and confirmed in HELLO_OK (docs/PROTOCOL.md section 2).
#: Version 2 adds request-id multiplexing (docs/PROTOCOL.md section 8).
PROTOCOL_VERSION = 2

#: Every version this implementation can serve.  Negotiation picks the
#: highest version both peers speak (docs/PROTOCOL.md section 2); a
#: peer speaking version N speaks every listed version below N too.
SUPPORTED_VERSIONS = (1, 2)

#: Upper bound on one frame's JSON body, guarding both endpoints
#: against a corrupt or hostile length prefix (docs/PROTOCOL.md
#: section 7).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default rows per FETCH page; pages bound frame sizes, not result
#: sizes (docs/PROTOCOL.md section 6).
DEFAULT_PAGE_ROWS = 256

#: The big-endian unsigned 32-bit length prefix.
_HEADER = struct.Struct(">I")

#: Bytes in the length prefix, for readers that fetch it themselves
#: (the async streams) before calling :func:`frame_length`.
HEADER_BYTES = _HEADER.size

# ----------------------------------------------------------------------
# Frame vocabulary (docs/PROTOCOL.md sections 3 and 4)
# ----------------------------------------------------------------------
#: Client-to-server frame types.
HELLO = "hello"
EXECUTE = "execute"
FETCH = "fetch"
CANCEL = "cancel"
CLOSE = "close"
#: STATS requires protocol version 2 (docs/PROTOCOL.md section 9); a
#: v1 session receives a clean NotSupportedError ERROR frame instead.
STATS = "stats"
#: INGEST requires protocol version 2 too (docs/PROTOCOL.md section
#: 10): a batched write set (fact appends + dimension upserts) staged
#: for the next scan-boundary apply; the INGEST_OK ack means applied.
INGEST = "ingest"

#: Server-to-client frame types.
HELLO_OK = "hello_ok"
EXECUTE_OK = "execute_ok"
ROWS = "rows"
CANCEL_OK = "cancel_ok"
CLOSE_OK = "close_ok"
STATS_OK = "stats_ok"
INGEST_OK = "ingest_ok"
ERROR = "error"

#: The error-class names an ERROR frame may carry (docs/PROTOCOL.md
#: section 5): exactly the PEP-249 classes of
#: :mod:`repro.client.exceptions`.  A client maps unknown names to
#: ``DatabaseError``, so the table can grow without breaking old
#: clients.
ERROR_CLASS_NAMES = (
    "Error",
    "InterfaceError",
    "DatabaseError",
    "ProgrammingError",
    "OperationalError",
    "NotSupportedError",
)


class ProtocolError(ReproError):
    """The byte stream violates the framing rules of docs/PROTOCOL.md:

    a truncated frame, an oversized length prefix, a body that is not
    a JSON object, or a frame without a string ``type``.  Fatal for
    the connection that produced it — framing errors mean the stream
    can no longer be trusted.
    """


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: length prefix plus UTF-8 JSON body.

    Raises:
        ProtocolError: when the payload is not a dict with a string
            ``type``, or its encoding exceeds ``MAX_FRAME_BYTES``.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("type"), str
    ):
        raise ProtocolError(
            "a frame payload must be a dict with a string 'type'"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _read_exact(reader, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on EOF at offset zero.

    Raises:
        ProtocolError: on EOF partway through.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = reader.read(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of {count} "
                f"bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def frame_length(header: bytes) -> int:
    """Decode and bounds-check a 4-byte length prefix.

    Raises:
        ProtocolError: when the prefix exceeds ``MAX_FRAME_BYTES``.
    """
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


def decode_frame_body(body: bytes) -> dict:
    """Decode and validate one frame body (shared by every reader —
    the blocking :func:`read_frame` and the async servers' and
    clients' stream readers decode through this single choke point).

    Raises:
        ProtocolError: on invalid JSON or a body that is not an object
            with a string ``type``.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or not isinstance(
        payload.get("type"), str
    ):
        raise ProtocolError(
            "frame body must be a JSON object with a string 'type'"
        )
    return payload


def read_frame(reader) -> dict | None:
    """Read one frame from a binary reader (``.read(n)``).

    Returns the decoded payload, or None on a clean end-of-stream at a
    frame boundary (the peer closed between frames).

    Raises:
        ProtocolError: on truncation, an oversized or malformed length
            prefix, invalid JSON, or a body that is not an object with
            a string ``type``.
    """
    header = _read_exact(reader, _HEADER.size)
    if header is None:
        return None
    length = frame_length(header)
    body = _read_exact(reader, length) if length else b""
    if length and body is None:
        raise ProtocolError("connection closed before the frame body")
    return decode_frame_body(body)


async def read_frame_async(reader) -> dict | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    The coroutine twin of :func:`read_frame` — same validation, same
    clean-EOF contract — shared by the async server and async client.

    Raises:
        ProtocolError: on truncation, an oversized length prefix,
            invalid JSON, or a body that is not an object with a
            string ``type``.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF at a frame boundary
        raise ProtocolError(
            "connection closed mid-frame (length prefix truncated)"
        ) from error
    length = frame_length(header)
    if not length:
        return decode_frame_body(b"")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            "connection closed before the frame body"
        ) from error
    return decode_frame_body(body)


# ----------------------------------------------------------------------
# Version negotiation (docs/PROTOCOL.md section 2)
# ----------------------------------------------------------------------
def negotiate_version(requested) -> int | None:
    """The version a server should speak to a peer offering ``requested``.

    A peer offering version N speaks every supported version up to N,
    so the negotiated version is the highest supported version that is
    <= the offer — ``min(requested, PROTOCOL_VERSION)`` over the
    supported set.  Returns None when there is no common version (an
    offer below the oldest supported version, or not an int).
    """
    if isinstance(requested, bool) or not isinstance(requested, int):
        return None
    common = [
        version for version in SUPPORTED_VERSIONS if version <= requested
    ]
    return max(common) if common else None


# ----------------------------------------------------------------------
# Request-id multiplexing (docs/PROTOCOL.md section 8, protocol v2)
# ----------------------------------------------------------------------
def request_id_of(frame: dict) -> int:
    """The frame's ``request_id``, validated (v2 connections only).

    Raises:
        ProtocolError: when the id is missing, not an int, or negative.
    """
    request_id = frame.get("request_id")
    if (
        isinstance(request_id, bool)
        or not isinstance(request_id, int)
        or request_id < 0
    ):
        raise ProtocolError(
            f"protocol v2 frames require a non-negative integer "
            f"'request_id', got {request_id!r}"
        )
    return request_id


def split_streams(frames) -> dict[int, list[dict]]:
    """Demultiplex a v2 frame schedule into per-request streams.

    The defining v2 invariant (docs/PROTOCOL.md section 8): however
    replies from different requests interleave on the wire, the
    subsequence tagged with one ``request_id`` — in arrival order — IS
    that request's reply stream.  Both async endpoints route frames
    this way; the property tests drive this helper over arbitrary
    interleavings.

    Raises:
        ProtocolError: when any frame lacks a valid ``request_id``.
    """
    streams: dict[int, list[dict]] = {}
    for frame in frames:
        streams.setdefault(request_id_of(frame), []).append(frame)
    return streams


# ----------------------------------------------------------------------
# Description and row codecs (docs/PROTOCOL.md section 6)
# ----------------------------------------------------------------------
def encode_description(description: tuple | None) -> list | None:
    """JSON-encode PEP 249 7-tuples; type codes travel as DataType names."""
    if description is None:
        return None
    return [
        [entry[0], entry[1].name, *entry[2:]] for entry in description
    ]


def decode_description(entries: list | None) -> tuple | None:
    """Rebuild the description tuple; inverse of :func:`encode_description`.

    Raises:
        ProtocolError: on an unknown type-code name or malformed entry.
    """
    if entries is None:
        return None
    description = []
    try:
        for entry in entries:
            name, type_name, *rest = entry
            description.append((name, DataType[type_name], *rest))
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed description in execute_ok frame: {error}"
        ) from error
    return tuple(description)


def decode_rows(rows) -> list[tuple]:
    """Rebuild result tuples from a ROWS frame's JSON arrays.

    Raises:
        ProtocolError: when ``rows`` is not a list of arrays.
    """
    if not isinstance(rows, list):
        raise ProtocolError("rows frame must carry a list of row arrays")
    try:
        return [tuple(row) for row in rows]
    except TypeError as error:
        raise ProtocolError(f"malformed row in rows frame: {error}") from error


def error_payload(class_name: str, message: str) -> dict:
    """Build an ERROR frame payload (docs/PROTOCOL.md section 5)."""
    if class_name not in ERROR_CLASS_NAMES:
        class_name = "DatabaseError"
    return {
        "type": ERROR,
        "error": {"class": class_name, "message": message},
    }
