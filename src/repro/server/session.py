"""The transport-independent server session core (DESIGN.md section 12).

Both warehouse servers — the threaded :class:`~repro.server.tcp.
WarehouseServer` and the asyncio :class:`~repro.server.async_tcp.
AsyncWarehouseServer` — serve the same protocol over the same
warehouse; everything about a connection that is *not* socket I/O or
blocking strategy lives here, once.  A :class:`ServerSession` owns one
connection's server-side state: the HELLO version negotiation
(docs/PROTOCOL.md section 2), the statement registry mapping query ids
to handles, the per-connection admission queue and its pump (the
fairness layer of docs/ARCHITECTURE.md section 4), EXECUTE
parse/bind/submit with executemany atomicity, CANCEL/CLOSE semantics,
partial-mode FETCH, result paging, and the teardown guarantee that a
vanished client's slots free within one scan cycle.

What stays transport-specific is exactly the part the two servers
disagree on: how to *wait*.  The threaded server blocks its handler
thread on the handle with a poll; the async server parks a task on a
completion callback.  Neither strategy appears here — every method of
this class is non-blocking and must be called from a single thread (or
a single event loop): the connection's.
"""

from __future__ import annotations

from repro.client.cursor import describe
from repro.client.exceptions import InterfaceError, translated
from repro.cjoin.registry import QueryHandle
from repro.engine.submission import Submission, SubmissionQueue
from repro.errors import AdmissionError, IngestBackpressureError, ReproError
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.sql.parser import bind_parameters, bind_star_query, parse_select

#: Upper bound a FETCH frame may request for one page; also the cap on
#: one partial-mode snapshot (docs/PROTOCOL.md section 6).
MAX_PAGE_ROWS = 65536

#: Default per-connection bound on staged-but-unacked INGEST rows (the
#: write-side twin of ``max_in_flight_per_connection``); servers may
#: override it with a ``max_pending_ingest_rows_per_connection``
#: attribute (docs/PROTOCOL.md section 10).
DEFAULT_MAX_PENDING_INGEST_ROWS = 65536


class ServerQuery:
    """One statement's server-side state on one connection."""

    __slots__ = ("handle", "rows", "offset", "queued")

    def __init__(self, handle: QueryHandle, queued: bool) -> None:
        self.handle = handle
        #: canonical rows, cached after the first completed FETCH
        self.rows: list[tuple] | None = None
        self.offset = 0
        #: True while waiting in the connection's admission queue
        self.queued = queued


class CloseConnection(Exception):
    """Internal: the client sent a connection-level CLOSE."""


class ServerSession:
    """One connection's protocol state over a shared warehouse.

    Args:
        server: the owning server; only ``server.warehouse`` and
            ``server.max_in_flight_per_connection`` are read, so both
            server classes satisfy the contract.
    """

    def __init__(self, server) -> None:
        self.server = server
        #: EXECUTEs waiting for a per-connection slot; entries carry
        #: the caller-visible handle so queued statements stay
        #: cancellable in place (DESIGN.md section 10 semantics)
        self.pending = SubmissionQueue("remote")
        self.queries: dict[int, ServerQuery] = {}
        self._next_query_id = 1
        #: 0 until HELLO succeeds, then the negotiated version
        self.version = 0
        #: tickets of this connection's staged INGEST batches; pruned
        #: as they resolve, discarded wholesale at teardown
        self.ingest_tickets: list = []

    @property
    def greeted(self) -> bool:
        return self.version > 0

    # -- HELLO ---------------------------------------------------------
    def require_hello(self, kind: str) -> None:
        """Reject any pre-negotiation frame that is not HELLO.

        Raises:
            ProtocolError: docs/PROTOCOL.md section 2.
        """
        if kind != protocol.HELLO:
            raise ProtocolError(f"expected a hello frame first, got {kind!r}")

    def hello(self, frame: dict) -> dict:
        """Negotiate the protocol version; returns the HELLO_OK payload.

        Raises:
            ProtocolError: when no common version exists (fatal).
        """
        offered = frame.get("version")
        version = protocol.negotiate_version(offered)
        if version is None:
            raise ProtocolError(
                f"unsupported protocol version {offered!r}; this server "
                f"speaks versions {list(protocol.SUPPORTED_VERSIONS)}"
            )
        self.version = version
        from repro import __version__

        return {
            "type": protocol.HELLO_OK,
            "version": version,
            "server": f"repro/{__version__}",
            "page_rows": protocol.DEFAULT_PAGE_ROWS,
        }

    # -- EXECUTE -------------------------------------------------------
    def execute(self, frame: dict) -> dict:
        """Parse, bind, and submit one EXECUTE frame; EXECUTE_OK payload.

        Binds every parameter set before anything is submitted, so a
        bad statement or binding leaves no query behind — the same
        atomicity contract as ``Cursor.executemany``.
        """
        sql = frame.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("execute frame requires a string 'sql'")
        if "param_sets" in frame:
            param_sets = frame["param_sets"]
            if not isinstance(param_sets, list):
                raise ProtocolError(
                    "execute frame 'param_sets' must be a list"
                )
        else:
            param_sets = [frame.get("params")]
        warehouse = self.server.warehouse
        with translated():
            statement = parse_select(sql)
            star = warehouse.star
            queries = [
                bind_star_query(bind_parameters(statement, params), star)
                for params in param_sets
            ]
            description = (
                describe(statement, queries[0], star) if queries else None
            )
        query_ids: list[int] = []
        try:
            for query in queries:
                handle = QueryHandle(query)
                queued = self.submit(query, handle)
                query_id = self._next_query_id
                self._next_query_id += 1
                self.queries[query_id] = ServerQuery(handle, queued)
                query_ids.append(query_id)
        except BaseException:
            # a submission failure mid-fan-out cancels this frame's
            # earlier queries, mirroring Cursor.executemany
            for query_id in query_ids:
                state = self.queries.pop(query_id)
                if not state.handle.done:
                    state.handle.cancel()
            raise
        return {
            "type": protocol.EXECUTE_OK,
            "query_ids": query_ids,
            "description": protocol.encode_description(description),
        }

    def submit(self, query, handle: QueryHandle) -> bool:
        """Submit now if a per-connection slot is free, else queue.

        Returns True when the query was parked in the connection's
        admission FIFO (:meth:`pump` moves it into the warehouse later).
        """
        with translated():
            if len(self.pending) or (
                self.active_count()
                >= self.server.max_in_flight_per_connection
            ):
                self.pending.add(Submission(query, handle, "remote"))
                return True
            self.server.warehouse.submit(query, handle=handle)
            return False

    def active_count(self) -> int:
        return sum(
            1
            for state in self.queries.values()
            if not state.queued and not state.handle.done
        )

    def pump(self) -> None:
        """Move queued statements into the warehouse as slots free.

        Runs only on this connection's handler thread (or event loop),
        so it never races itself; cancellation of still-queued entries
        happens on the same thread (CANCEL frames) or during teardown.
        A full service queue puts the statement back for a later pump;
        any other submission failure completes its handle as cancelled
        so a blocked fetch wakes instead of hanging.
        """
        while len(self.pending):
            if (
                self.active_count()
                >= self.server.max_in_flight_per_connection
            ):
                return
            batch = self.pending.take()
            if not batch:
                return
            head, rest = batch[0], batch[1:]
            if rest:
                self.pending.restore(rest)
            if head.handle.cancelled:
                continue
            try:
                self.server.warehouse.submit(head.query, handle=head.handle)
            except AdmissionError:
                self.pending.restore([head])  # back-pressure: retry later
                return
            except ReproError:
                head.handle.mark_cancelled()
                head.handle.complete([])
                continue
            for state in self.queries.values():
                if state.handle is head.handle:
                    state.queued = False
                    break

    # -- FETCH ---------------------------------------------------------
    def lookup(self, frame: dict) -> tuple[int, ServerQuery]:
        query_id = frame.get("query_id")
        state = (
            self.queries.get(query_id)
            if isinstance(query_id, int) and not isinstance(query_id, bool)
            else None
        )
        if state is None:
            raise InterfaceError(f"unknown query id {query_id!r}")
        return query_id, state

    def validate_fetch(self, frame: dict) -> tuple[int, ServerQuery, int, float | None]:
        """Validate a blocking FETCH; ``(query_id, state, max_rows, timeout)``.

        Raises:
            ProtocolError: on out-of-bounds ``max_rows`` or a
                non-numeric ``timeout`` (docs/PROTOCOL.md section 7).
        """
        query_id, state = self.lookup(frame)
        max_rows = frame.get("max_rows", protocol.DEFAULT_PAGE_ROWS)
        if isinstance(max_rows, bool) or not isinstance(max_rows, int) or not (
            1 <= max_rows <= MAX_PAGE_ROWS
        ):
            raise ProtocolError(
                f"fetch max_rows must be an int in [1, {MAX_PAGE_ROWS}], "
                f"got {max_rows!r}"
            )
        timeout = frame.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
        ):
            raise ProtocolError("fetch timeout must be a number or null")
        return query_id, state, max_rows, timeout

    def partial_reply(self, frame: dict) -> dict:
        """A non-blocking partial-mode ROWS payload."""
        query_id, state = self.lookup(frame)
        with translated():
            rows = state.handle.rows_so_far()
        # partial snapshots are advisory and replaced wholesale, so a
        # bounded prefix keeps the frame under MAX_FRAME_BYTES instead
        # of killing the connection on a huge mid-scan state
        # (docs/PROTOCOL.md section 6)
        return {
            "type": protocol.ROWS,
            "query_id": query_id,
            "rows": rows[:MAX_PAGE_ROWS],
            "more": not state.handle.done,
        }

    def page_reply(self, query_id: int, state: ServerQuery, max_rows: int) -> dict:
        """One page of a *completed* query's canonical rows.

        The caller has already waited for completion (each server's
        own blocking strategy); this materializes and slices.
        """
        if state.rows is None:
            with translated():
                state.rows = state.handle.results()
        page = state.rows[state.offset:state.offset + max_rows]
        state.offset += len(page)
        return {
            "type": protocol.ROWS,
            "query_id": query_id,
            "rows": page,
            "more": state.offset < len(state.rows),
        }

    # -- STATS ---------------------------------------------------------
    def stats(self, frame: dict) -> dict:
        """Answer a STATS frame with the warehouse telemetry snapshot.

        Version-gated (docs/PROTOCOL.md section 9): a v1 peer that
        sends STATS anyway gets a clean ``NotSupportedError`` ERROR
        frame — the connection keeps serving.
        """
        if self.version < 2:
            from repro.client.exceptions import NotSupportedError

            raise NotSupportedError(
                "the stats frame requires protocol version 2; this "
                f"session negotiated version {self.version}"
            )
        with translated():
            snapshot = self.server.warehouse.stats()
        return {"type": protocol.STATS_OK, "stats": snapshot}

    # -- INGEST --------------------------------------------------------
    def ingest(self, frame: dict):
        """Validate and stage one INGEST write set; returns its ticket.

        Version-gated like STATS (docs/PROTOCOL.md section 10): a v1
        peer gets a clean ``NotSupportedError`` ERROR frame and the
        connection keeps serving.  The transport waits on the returned
        ticket with its own blocking strategy and acks with INGEST_OK
        only once the batch *applied* — an acked write is a visible
        write, and an unacked one is discardable at teardown.

        Write admission is per-connection: staged-but-unresolved rows
        from this session are bounded (the write-side twin of the
        statement fairness bound), so one firehose client cannot fill
        the shared staging buffer for everyone.
        """
        if self.version < 2:
            from repro.client.exceptions import NotSupportedError

            raise NotSupportedError(
                "the ingest frame requires protocol version 2; this "
                f"session negotiated version {self.version}"
            )
        fact_rows = frame.get("fact_rows") or []
        dim_upserts = frame.get("dim_upserts") or {}
        if not isinstance(fact_rows, list) or not all(
            isinstance(row, list) for row in fact_rows
        ):
            raise ProtocolError(
                "ingest frame 'fact_rows' must be a list of row arrays"
            )
        if not isinstance(dim_upserts, dict) or not all(
            isinstance(name, str)
            and isinstance(rows, list)
            and all(isinstance(row, list) for row in rows)
            for name, rows in dim_upserts.items()
        ):
            raise ProtocolError(
                "ingest frame 'dim_upserts' must map dimension names "
                "to lists of row arrays"
            )
        rows = len(fact_rows) + sum(len(v) for v in dim_upserts.values())
        bound = getattr(
            self.server,
            "max_pending_ingest_rows_per_connection",
            DEFAULT_MAX_PENDING_INGEST_ROWS,
        )
        self.ingest_tickets = [
            ticket for ticket in self.ingest_tickets if not ticket.done
        ]
        pending = sum(ticket.rows for ticket in self.ingest_tickets)
        with translated():
            if pending + rows > bound:
                raise IngestBackpressureError(
                    f"connection has {pending} unacked ingest rows "
                    f"staged (bound {bound}); wait for INGEST_OK acks "
                    f"before writing more"
                )
            ticket = self.server.warehouse.ingest(
                fact_rows=[tuple(row) for row in fact_rows],
                dim_upserts={
                    name: [tuple(row) for row in batch_rows]
                    for name, batch_rows in dim_upserts.items()
                },
                owner=self,
            )
        self.ingest_tickets.append(ticket)
        return ticket

    def ingest_reply(self, ticket) -> dict:
        """The INGEST_OK payload for a resolved ticket.

        Raises (through :func:`translated`) when the batch was
        rejected or its apply failed.
        """
        with translated():
            if ticket.error is not None:
                raise ticket.error
        return {
            "type": protocol.INGEST_OK,
            "rows": ticket.rows,
            "snapshot_id": ticket.snapshot_id,
            "generation": ticket.generation,
        }

    # -- CANCEL / CLOSE ------------------------------------------------
    def cancel(self, frame: dict) -> dict:
        _, state = self.lookup(frame)
        with translated():
            cancelled = state.handle.cancel()
        return {"type": protocol.CANCEL_OK, "cancelled": bool(cancelled)}

    def close(self, frame: dict) -> dict:
        """CLOSE a statement; raises CloseConnection for session CLOSE."""
        if "query_id" not in frame:
            raise CloseConnection()
        query_id, state = self.lookup(frame)
        del self.queries[query_id]
        if not state.handle.done:
            state.handle.cancel()
        return {"type": protocol.CLOSE_OK}

    # -- teardown ------------------------------------------------------
    def teardown(self) -> None:
        """Cancel everything this connection still owns.

        This is the slow-client guarantee (docs/PROTOCOL.md section 7):
        a vanished or misbehaving client's queued statements are
        dropped in place and its in-flight queries are deregistered
        mid-scan, so its slots free within one scan cycle instead of
        pinning the shared pipeline.
        """
        self.pending.cancel_all()
        for state in self.queries.values():
            if not state.handle.done:
                state.handle.cancel()
        self.queries.clear()
        # buffered-but-unacked writes die with the connection: batches
        # this session staged that have not been taken for apply are
        # discarded (already-applied ones simply lose their ack)
        self.server.warehouse.ingest_buffer.discard_owner(
            self, "connection closed before the batch was applied"
        )
        self.ingest_tickets.clear()
