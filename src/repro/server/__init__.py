"""The TCP service boundary (DESIGN.md section 11).

The paper frames CJOIN as the join operator inside an always-on
warehouse serving hundreds of concurrent clients (paper section 2.1);
this package is that service boundary.  Two servers share one
transport-independent session core (:mod:`repro.server.session`):
:class:`WarehouseServer` is thread-per-connection, and
:class:`AsyncWarehouseServer` multiplexes many in-flight statements
per connection on an event loop (protocol v2, DESIGN.md section 12).
Each owns one warehouse — one continuous scan — and serves many
concurrent socket connections; :mod:`repro.server.protocol` implements
the length-prefixed JSON wire protocol both endpoints speak, specified
normatively in docs/PROTOCOL.md.  The client side lives in
:mod:`repro.client.remote` (sync) and :mod:`repro.client.aio` (async),
behind ``repro.connect("tcp://host:port")`` and
``repro.connect_async(...)``.

Runnable entry point::

    PYTHONPATH=src python -m repro.server --scale-factor 0.001
"""

from repro.server.async_tcp import AsyncWarehouseServer, serve_async
from repro.server.protocol import (
    DEFAULT_PAGE_ROWS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
)
from repro.server.session import ServerSession
from repro.server.tcp import DEFAULT_PORT, WarehouseServer

__all__ = [
    "AsyncWarehouseServer",
    "DEFAULT_PAGE_ROWS",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SUPPORTED_VERSIONS",
    "ServerSession",
    "WarehouseServer",
    "serve_async",
]

#: Exports removed from ``__all__`` but still importable through
#: :func:`__getattr__`, mapped to their replacement.  The API checker
#: (scripts/check_public_api.py) reports these as "deprecated" notes
#: instead of "removed" failures.
__deprecated__ = {
    "DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION": (
        "repro.tuning.DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION"
    ),
}


def __getattr__(name: str):
    """Serve deprecated exports with a warning (PEP 562)."""
    if name in __deprecated__:
        import warnings

        warnings.warn(
            f"repro.server.{name} is deprecated; use "
            f"{__deprecated__[name]} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro import tuning

        return getattr(tuning, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
