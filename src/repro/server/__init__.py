"""The TCP service boundary (DESIGN.md section 11).

The paper frames CJOIN as the join operator inside an always-on
warehouse serving hundreds of concurrent clients (paper section 2.1);
this package is that service boundary.  :class:`WarehouseServer` owns
one warehouse — one continuous scan — and serves many concurrent
socket connections; :mod:`repro.server.protocol` implements the
length-prefixed JSON wire protocol both endpoints speak, specified
normatively in docs/PROTOCOL.md.  The client side lives in
:mod:`repro.client.remote`, behind ``repro.connect("tcp://host:port")``.

Runnable entry point::

    PYTHONPATH=src python -m repro.server --scale-factor 0.001
"""

from repro.server.protocol import (
    DEFAULT_PAGE_ROWS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.server.tcp import (
    DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION,
    DEFAULT_PORT,
    WarehouseServer,
)

__all__ = [
    "DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION",
    "DEFAULT_PAGE_ROWS",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WarehouseServer",
]
