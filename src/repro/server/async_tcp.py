"""The asyncio warehouse server: multiplexed serving on one thread.

:class:`AsyncWarehouseServer` serves the same wire protocol as the
threaded :class:`~repro.server.tcp.WarehouseServer` — same
:class:`~repro.server.session.ServerSession` core, same warehouse,
same admission bounds — but replaces thread-per-connection with an
event loop on one background thread.  That removes the scalability
wall ISSUE 6 targets: a thousand concurrent remote sessions cost a
thousand parked coroutines, not a thousand OS threads, so the
network layer stops being the reason Figure 6's flat-latency story
caps out (DESIGN.md section 12).

Concurrency model (docs/ARCHITECTURE.md section 3): per connection,
one reader task dispatches frames, one writer task drains the
connection's bounded outbox with ``drain()`` so a stalled client
throttles only its own replies, and each still-running v2 FETCH parks
a small waiter task on the query handle's completion callback —
bridged from the warehouse driver thread with
``call_soon_threadsafe`` — so waiting consumes no thread anywhere.
Backpressure is layered: each request holds one outbox slot at most
(the protocol's one-reply-per-request rule bounds every per-request
outbox at a single frame), the per-connection pending-FETCH budget
pauses the reader when exhausted (TCP flow control does the rest),
and the per-connection/per-server admission bounds are unchanged
because they live in the shared session core.

Protocol v2 lets replies interleave across request ids, so many
FETCHes proceed concurrently per connection; a v1 peer gets strict
request/reply order by dispatching its frames to completion serially,
which is exactly the threaded server's behavior.
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro.client.exceptions import (
    Error,
    InterfaceError,
    OperationalError,
    translated,
)
from repro.cjoin.registry import QueryHandle
from repro.engine.submission import ROUTE_BASELINE, ROUTE_PROCESS
from repro.ingest.buffer import IngestTicket
from repro.engine.warehouse import Warehouse
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.session import (
    DEFAULT_MAX_PENDING_INGEST_ROWS,
    CloseConnection,
    ServerSession,
)
from repro.server.tcp import DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION, _tag

#: Reply frames a connection's outbox may hold before the enqueuer
#: (reader or fetch task) waits; with single-frame replies this bounds
#: reply memory per connection, not throughput.
DEFAULT_OUTBOX_FRAMES = 64

#: Still-running FETCHes a v2 connection may park at once; beyond it
#: the reader stops reading frames until a waiter retires, pushing
#: backpressure onto the client's socket.
DEFAULT_MAX_PENDING_FETCHES = 1024

#: Waiters poll at this cadence only while offline routes need
#: driving; with the service driver running they sleep on completion
#: callbacks instead.
_FETCH_POLL_SECONDS = 0.02

#: Flush budget for the final reply frames of a closing connection.
_FLUSH_TIMEOUT_SECONDS = 5.0


class _AsyncConnection:
    """One client connection's tasks and queues on the loop."""

    __slots__ = (
        "session",
        "reader",
        "writer",
        "outbox",
        "fetch_slots",
        "fetch_tasks",
        "serve_task",
        "writer_task",
        "torn",
    )

    def __init__(
        self,
        server: "AsyncWarehouseServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.session = ServerSession(server)
        self.reader = reader
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue(
            maxsize=server.outbox_frames
        )
        self.fetch_slots = asyncio.Semaphore(server.max_pending_fetches)
        self.fetch_tasks: set[asyncio.Task] = set()
        self.serve_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        self.torn = False


class AsyncWarehouseServer:
    """An asyncio TCP server around one always-on warehouse.

    Drop-in lifecycle twin of :class:`~repro.server.tcp.
    WarehouseServer` — same constructor surface, same sync
    ``start()``/``stop()`` (the event loop runs on a background
    thread), same URL scheme — so launchers and tests treat the two
    interchangeably.

    Args:
        warehouse: the warehouse to serve.
        host: interface to bind (default loopback).
        port: TCP port; 0 picks a free ephemeral port.
        owns_warehouse: close the warehouse on :meth:`stop`.
        max_in_flight_per_connection: bound on one connection's
            concurrently submitted queries (the fairness layer, shared
            with the threaded server via the session core).
        outbox_frames: reply frames buffered per connection before
            enqueuers wait on the writer.
        max_pending_fetches: still-running FETCH waiters per
            connection before the reader pauses.
        max_pending_ingest_rows_per_connection: bound on one
            connection's unacknowledged INGEST rows (the write
            admission layer, shared with the threaded server via the
            session core).
    """

    def __init__(
        self,
        warehouse: Warehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        owns_warehouse: bool = False,
        max_in_flight_per_connection: int = (
            DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION
        ),
        outbox_frames: int = DEFAULT_OUTBOX_FRAMES,
        max_pending_fetches: int = DEFAULT_MAX_PENDING_FETCHES,
        max_pending_ingest_rows_per_connection: int = (
            DEFAULT_MAX_PENDING_INGEST_ROWS
        ),
    ) -> None:
        if max_in_flight_per_connection < 1:
            raise InterfaceError(
                f"max_in_flight_per_connection must be >= 1, got "
                f"{max_in_flight_per_connection}"
            )
        if outbox_frames < 1 or max_pending_fetches < 1:
            raise InterfaceError(
                "outbox_frames and max_pending_fetches must be >= 1"
            )
        if max_pending_ingest_rows_per_connection < 1:
            raise InterfaceError(
                f"max_pending_ingest_rows_per_connection must be >= 1, "
                f"got {max_pending_ingest_rows_per_connection}"
            )
        self.warehouse = warehouse
        self.max_in_flight_per_connection = max_in_flight_per_connection
        self.outbox_frames = outbox_frames
        self.max_pending_fetches = max_pending_fetches
        self.max_pending_ingest_rows_per_connection = (
            max_pending_ingest_rows_per_connection
        )
        self._requested = (host, port)
        self._owns_warehouse = owns_warehouse
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = threading.Event()
        self._closing_async: asyncio.Event | None = None
        self._connections: set[_AsyncConnection] = set()
        self._conn_lock = threading.Lock()
        #: serializes Warehouse.run() drains for offline-routed handles
        self._run_lock = threading.Lock()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._started_service = False
        self._address: tuple[str, int] | None = None
        #: tasks still pending when the loop shut down — always empty
        #: after a clean stop; the fault suite asserts on it
        self.leaked_tasks: list[str] = []

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the event-loop thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``.

        Raises:
            InterfaceError: before :meth:`start`.
        """
        if self._address is None:
            raise InterfaceError("server is not started")
        return self._address

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` URL clients pass to ``repro.connect``."""
        host, port = self.address
        return f"tcp://{host}:{port}"

    @property
    def connection_count(self) -> int:
        """Currently attached client connections."""
        with self._conn_lock:
            return len(self._connections)

    def start(self) -> "AsyncWarehouseServer":
        """Bind, start the loop thread, start the warehouse service.

        Returns self; raises the bind error on this thread when the
        requested address is unavailable.

        Raises:
            InterfaceError: when already running.
        """
        if self.running:
            raise InterfaceError("server is already running")
        self._closing.clear()
        self._started.clear()
        self._startup_error = None
        self.leaked_tasks = []
        # serial backends serve live (mid-scan admission); the process
        # backend admits at drain boundaries, driven from waiters
        if (
            self.warehouse.executor_config.backend == "serial"
            and not self.warehouse.service.running
        ):
            with translated():
                self.warehouse.start_service()
            self._started_service = True
        self._thread = threading.Thread(
            target=self._thread_main,
            name="warehouse-async-loop",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(30.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(10.0)
            self._thread = None
            if self._started_service:
                self.warehouse.stop_service()
                self._started_service = False
            raise error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down cleanly (idempotent): no leaked tasks or threads.

        Wakes the loop, which closes the listener, cancels every
        connection's tasks (their teardown cancels the queries their
        clients abandoned), and drains its executor; then stops the
        service driver this server started and closes the warehouse
        when it owns it.
        """
        self._closing.set()
        loop, closing = self._loop, self._closing_async
        if loop is not None and closing is not None:
            try:
                loop.call_soon_threadsafe(closing.set)
            except RuntimeError:
                pass  # loop already closed
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)
        self._loop = None
        if self._started_service:
            self.warehouse.stop_service()
            self._started_service = False
        if self._owns_warehouse and not self.warehouse.closed:
            self.warehouse.close()

    def swap_warehouse(self, shadow, **kwargs):
        """Blue-green cutover to ``shadow`` (DESIGN.md section 16).

        Safe from any thread: sessions resolve ``server.warehouse``
        per statement on the loop thread, and the attribute flip is
        atomic under the old pipeline's write barrier.  Returns the
        :class:`~repro.engine.swap.SwapReport`.
        """
        from repro.engine.swap import blue_green_swap

        return blue_green_swap(self, shadow, **kwargs)

    def __enter__(self) -> "AsyncWarehouseServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            # asyncio.run also joins the default executor's threads on
            # the way out, so drive() work cannot outlive stop()
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - defensive
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._closing_async = asyncio.Event()
        if self._closing.is_set():  # stop() raced start()
            self._closing_async.set()
        try:
            server = await asyncio.start_server(
                self._on_connect, *self._requested, backlog=512
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._closing_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            with self._conn_lock:
                serve_tasks = [
                    conn.serve_task
                    for conn in self._connections
                    if conn.serve_task is not None
                ]
            for task in serve_tasks:
                task.cancel()
            await asyncio.gather(*serve_tasks, return_exceptions=True)
            # belt and braces: no task may outlive the loop
            current = asyncio.current_task()
            leftovers = [
                task
                for task in asyncio.all_tasks()
                if task is not current
            ]
            for task in leftovers:
                task.cancel()
            await asyncio.gather(*leftovers, return_exceptions=True)
            self.leaked_tasks = [
                repr(task)
                for task in asyncio.all_tasks()
                if task is not current and not task.done()
            ]

    # -- connection serving --------------------------------------------
    async def _on_connect(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _AsyncConnection(self, reader, writer)
        conn.serve_task = asyncio.current_task()
        with self._conn_lock:
            if self._closing.is_set():
                writer.close()
                return
            self._connections.add(conn)
        conn.writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(conn)
        )
        try:
            await self._serve(conn)
        finally:
            await self._teardown(conn)

    async def _serve(self, conn: _AsyncConnection) -> None:
        try:
            while True:
                frame = await self._read_frame(conn.reader)
                if frame is None:
                    break
                request_id = None
                try:
                    if conn.session.version >= 2:
                        request_id = protocol.request_id_of(frame)
                    if await self._dispatch(conn, frame, request_id):
                        break
                except CloseConnection:
                    await conn.outbox.put(
                        _tag({"type": protocol.CLOSE_OK}, request_id)
                    )
                    break
                except ProtocolError as error:
                    await self._put_error(
                        conn, InterfaceError(str(error)), request_id
                    )
                    break
                except Error as error:
                    # statement-level failure: report it, keep serving
                    await self._put_error(conn, error, request_id)
                    continue
            await self._flush(conn)
        except ProtocolError as error:
            # framing violations are fatal: report best-effort, close
            await self._put_error(conn, InterfaceError(str(error)), None)
            await self._flush(conn)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # peer vanished / server shutting down

    async def _read_frame(self, reader: asyncio.StreamReader) -> dict | None:
        return await protocol.read_frame_async(reader)

    async def _dispatch(
        self, conn: _AsyncConnection, frame: dict, request_id: int | None
    ) -> bool:
        """Handle one frame; True means close the connection."""
        kind = frame["type"]
        session = conn.session
        if not session.greeted:
            session.require_hello(kind)
            await conn.outbox.put(_tag(session.hello(frame), request_id))
            return False
        # every frame is a pump opportunity, exactly as in the
        # threaded server; completions also pump via callbacks
        session.pump()
        if kind == protocol.EXECUTE:
            reply = session.execute(frame)
            self._watch_completions(conn, reply["query_ids"])
            await conn.outbox.put(_tag(reply, request_id))
            return False
        if kind == protocol.FETCH:
            await self._dispatch_fetch(conn, frame, request_id)
            return False
        if kind == protocol.CANCEL:
            await conn.outbox.put(_tag(session.cancel(frame), request_id))
            return False
        if kind == protocol.CLOSE:
            await conn.outbox.put(_tag(session.close(frame), request_id))
            return False
        if kind == protocol.STATS:
            await conn.outbox.put(_tag(session.stats(frame), request_id))
            return False
        if kind == protocol.INGEST:
            await self._dispatch_ingest(conn, frame, request_id)
            return False
        raise ProtocolError(f"unknown frame type {kind!r}")

    async def _dispatch_fetch(
        self, conn: _AsyncConnection, frame: dict, request_id: int | None
    ) -> None:
        session = conn.session
        if frame.get("mode") == "partial":
            await conn.outbox.put(
                _tag(session.partial_reply(frame), request_id)
            )
            return
        query_id, state, max_rows, timeout = session.validate_fetch(frame)
        if state.rows is not None or state.handle.done:
            await conn.outbox.put(
                _tag(
                    session.page_reply(query_id, state, max_rows),
                    request_id,
                )
            )
            return
        if session.version < 2:
            # v1 promises strict request/reply order: wait inline,
            # blocking only this connection's coroutine
            await self._await_done(conn, state.handle, timeout)
            await conn.outbox.put(
                _tag(
                    session.page_reply(query_id, state, max_rows),
                    request_id,
                )
            )
            return
        # v2: park a waiter task so other requests on this connection
        # keep dispatching; the budget pauses the reader when a client
        # floods FETCHes faster than queries complete
        await conn.fetch_slots.acquire()
        task = asyncio.get_running_loop().create_task(
            self._fetch_waiter(
                conn, request_id, query_id, state, max_rows, timeout
            )
        )
        conn.fetch_tasks.add(task)
        task.add_done_callback(conn.fetch_tasks.discard)

    async def _fetch_waiter(
        self, conn, request_id, query_id, state, max_rows, timeout
    ) -> None:
        try:
            try:
                await self._await_done(conn, state.handle, timeout)
                reply = conn.session.page_reply(query_id, state, max_rows)
            except Error as error:
                reply = protocol.error_payload(
                    type(error).__name__, str(error)
                )
            await conn.outbox.put(_tag(reply, request_id))
        finally:
            conn.fetch_slots.release()

    async def _dispatch_ingest(
        self, conn: _AsyncConnection, frame: dict, request_id: int | None
    ) -> None:
        """Stage a write set, park a waiter for its apply (section 10).

        ``session.ingest`` gates on protocol v2 — a v1 peer raises
        NotSupportedError before anything is staged — so every staged
        ticket belongs to a multiplexed connection and can park a
        waiter task exactly like a v2 FETCH, sharing the same parked-
        waiter budget.
        """
        ticket = conn.session.ingest(frame)
        timeout = frame.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
        ):
            raise ProtocolError("ingest timeout must be a number or null")
        await conn.fetch_slots.acquire()
        task = asyncio.get_running_loop().create_task(
            self._ingest_waiter(conn, request_id, ticket, timeout)
        )
        conn.fetch_tasks.add(task)
        task.add_done_callback(conn.fetch_tasks.discard)

    async def _ingest_waiter(
        self, conn, request_id, ticket: IngestTicket, timeout
    ) -> None:
        try:
            try:
                await self._await_ingest(ticket, timeout)
                reply = conn.session.ingest_reply(ticket)
            except Error as error:
                reply = protocol.error_payload(
                    type(error).__name__, str(error)
                )
            await conn.outbox.put(_tag(reply, request_id))
        finally:
            conn.fetch_slots.release()

    async def _await_ingest(
        self, ticket: IngestTicket, timeout: float | None
    ) -> None:
        """Park until the staged batch resolves — no thread consumed.

        The ticket's completion callback (fired on whichever thread
        applies the batch) sets an asyncio event via
        ``call_soon_threadsafe``; shutdown wakes every waiter through
        the server-wide closing event.  Only while no service driver
        runs (process-backend servers, stopped drivers) does the wait
        fall back to the poll cadence, pushing the scan-boundary
        ``apply_pending_ingest`` onto the default executor so the loop
        never blocks.
        """
        loop = asyncio.get_running_loop()
        deadline = (
            None if timeout is None else loop.time() + float(timeout)
        )
        event = asyncio.Event()

        def _notify(_ticket: IngestTicket) -> None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop closed first; the waiter was cancelled

        ticket.on_done(_notify)
        while not ticket.done:
            if self._closing.is_set():
                raise OperationalError("server is shutting down")
            if not self.warehouse.service.running:
                await loop.run_in_executor(
                    None, self._apply_ingest_blocking
                )
            if ticket.done:
                return
            remaining = (
                None if deadline is None else deadline - loop.time()
            )
            if remaining is not None and remaining <= 0:
                raise OperationalError(
                    f"ingest batch was not applied within {timeout} "
                    f"seconds"
                )
            wait_slice = remaining
            if not self.warehouse.service.running:
                wait_slice = (
                    _FETCH_POLL_SECONDS
                    if wait_slice is None
                    else min(wait_slice, _FETCH_POLL_SECONDS)
                )
            await self._sleep_until(event, wait_slice)

    def _apply_ingest_blocking(self) -> None:
        with self._run_lock:
            with translated():
                self.warehouse.apply_pending_ingest()

    async def _await_done(
        self,
        conn: _AsyncConnection,
        handle: QueryHandle,
        timeout: float | None,
    ) -> None:
        """Park until the handle completes — no thread consumed.

        The handle's completion callback (fired on the warehouse
        driver thread) sets an asyncio event via
        ``call_soon_threadsafe``; shutdown wakes every waiter through
        the server-wide closing event.  Only while offline routes need
        driving does the wait fall back to the threaded server's poll
        cadence, pushing ``Warehouse.run()`` drains onto the default
        executor so the loop never blocks.
        """
        loop = asyncio.get_running_loop()
        deadline = (
            None if timeout is None else loop.time() + float(timeout)
        )
        event = asyncio.Event()

        def _notify(_handle: QueryHandle) -> None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop closed first; the waiter was cancelled

        handle.on_complete(_notify)
        while not handle.done:
            if self._closing.is_set():
                raise OperationalError("server is shutting down")
            conn.session.pump()
            await self._drive(handle)
            if handle.done:
                return
            remaining = (
                None if deadline is None else deadline - loop.time()
            )
            if remaining is not None and remaining <= 0:
                raise OperationalError(
                    f"query did not complete within {timeout} seconds"
                )
            wait_slice = remaining
            if self._needs_driving():
                wait_slice = (
                    _FETCH_POLL_SECONDS
                    if wait_slice is None
                    else min(wait_slice, _FETCH_POLL_SECONDS)
                )
            await self._sleep_until(event, wait_slice)

    async def _sleep_until(
        self, event: asyncio.Event, timeout: float | None
    ) -> None:
        """Wait for completion, shutdown, or the drive cadence."""
        waiters = [
            asyncio.ensure_future(event.wait()),
            asyncio.ensure_future(self._closing_async.wait()),
        ]
        try:
            await asyncio.wait(
                waiters,
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for waiter in waiters:
                waiter.cancel()
            await asyncio.gather(*waiters, return_exceptions=True)

    def _needs_driving(self) -> bool:
        warehouse = self.warehouse
        return bool(
            warehouse.pending_submissions(ROUTE_PROCESS)
            or warehouse.pending_submissions(ROUTE_BASELINE)
            or not warehouse.service.running
        )

    async def _drive(self, handle: QueryHandle) -> None:
        """Push offline-routed handles forward off the event loop."""
        if handle.done or not self._needs_driving():
            return
        await asyncio.get_running_loop().run_in_executor(
            None, self._drive_blocking, handle
        )

    def _drive_blocking(self, handle: QueryHandle) -> None:
        if handle.done:
            return
        with self._run_lock:
            if not handle.done:
                with translated():
                    self.warehouse.run()

    def _watch_completions(
        self, conn: _AsyncConnection, query_ids: list[int]
    ) -> None:
        """Pump the connection's admission FIFO on every completion.

        The threaded server pumps from its blocking fetch poll; here a
        completion on the driver thread schedules a pump on the loop,
        so queued statements advance even when no frame is in flight.
        """
        for query_id in query_ids:
            state = conn.session.queries.get(query_id)
            if state is None:
                continue

            def _done(_handle: QueryHandle, conn=conn) -> None:
                try:
                    self._loop.call_soon_threadsafe(self._pump_now, conn)
                except (RuntimeError, AttributeError):
                    pass  # loop closed first; teardown pumps nothing

            state.handle.on_complete(_done)

    def _pump_now(self, conn: _AsyncConnection) -> None:
        if conn.torn or self._closing.is_set():
            return
        try:
            conn.session.pump()
        except Error:
            # a dying warehouse fails the submit; the affected handles
            # surface it to their own fetch waiters
            pass

    # -- replies and teardown ------------------------------------------
    async def _put_error(
        self,
        conn: _AsyncConnection,
        error: Exception,
        request_id: int | None,
    ) -> None:
        await conn.outbox.put(
            _tag(
                protocol.error_payload(type(error).__name__, str(error)),
                request_id,
            )
        )

    async def _flush(self, conn: _AsyncConnection) -> None:
        """Give queued replies a bounded chance to reach the peer."""
        try:
            await asyncio.wait_for(
                conn.outbox.join(), _FLUSH_TIMEOUT_SECONDS
            )
        except (asyncio.TimeoutError, TimeoutError):
            pass

    async def _write_loop(self, conn: _AsyncConnection) -> None:
        """Drain the outbox; ``drain()`` throttles on a slow peer.

        A write failure marks the stream broken but keeps consuming so
        enqueuers (and :meth:`_flush`) never wedge on a full queue.
        """
        broken = False
        while True:
            payload = await conn.outbox.get()
            try:
                if not broken:
                    conn.writer.write(protocol.encode_frame(payload))
                    await conn.writer.drain()
            except (ConnectionError, OSError, ProtocolError):
                broken = True  # reader notices the dead peer
            finally:
                conn.outbox.task_done()

    async def _teardown(self, conn: _AsyncConnection) -> None:
        """Cancel the connection's work; frees slots within one cycle."""
        conn.torn = True
        self._forget(conn)
        conn.session.teardown()
        tasks = list(conn.fetch_tasks)
        if conn.writer_task is not None:
            tasks.append(conn.writer_task)
        for task in tasks:
            task.cancel()
        if tasks:
            # shield: this coroutine may itself be mid-cancellation,
            # but the children must finish before the loop closes
            try:
                await asyncio.shield(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            except asyncio.CancelledError:
                pass
        conn.writer.close()
        try:
            await conn.writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def _forget(self, conn: _AsyncConnection) -> None:
        with self._conn_lock:
            self._connections.discard(conn)


def serve_async(
    warehouse: Warehouse, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> AsyncWarehouseServer:
    """Start an :class:`AsyncWarehouseServer` (convenience twin of the
    threaded launcher path)."""
    return AsyncWarehouseServer(warehouse, host, port, **kwargs).start()
