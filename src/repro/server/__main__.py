"""Run a warehouse server from the command line.

Loads a Star Schema Benchmark instance, starts the always-on service,
and listens for clients speaking the docs/PROTOCOL.md wire protocol::

    PYTHONPATH=src python -m repro.server --scale-factor 0.001 --port 5477

then, from any other process::

    import repro
    with repro.connect("tcp://127.0.0.1:5477") as connection:
        print(connection.execute(
            "SELECT COUNT(*) FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey"
        ).fetchall())

Stops cleanly on Ctrl-C / SIGTERM.
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.engine.warehouse import Warehouse
from repro.server.tcp import DEFAULT_PORT, WarehouseServer
from repro.storage.persist import has_snapshot
from repro.tuning import DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION, TuningConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--scale-factor",
        type=float,
        default=0.001,
        help="SSB scale factor to load (default 0.001)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--execution",
        choices=("tuple", "batched"),
        default="batched",
        help="CJOIN execution granularity (default batched)",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="service bound on concurrently registered queries",
    )
    parser.add_argument(
        "--max-per-connection",
        type=int,
        default=DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION,
        help="per-connection admission bound (fairness across clients)",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="enable the adaptive right-sizing controller "
        "(DESIGN.md section 13); decisions are auditable through "
        "connection.stats()",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="durable storage directory (DESIGN.md section 16): when "
        "it holds a snapshot the server cold-starts from disk with "
        "zero regeneration (replaying any WAL tail) and --scale-factor"
        "/--seed are ignored; otherwise SSB is generated once and "
        "persisted there",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tuning = TuningConfig()
    if args.max_in_flight is not None:
        tuning = tuning.replace(max_in_flight=args.max_in_flight)
    if args.data_dir is not None and has_snapshot(args.data_dir):
        print(f"cold-starting from {args.data_dir} (zero regeneration)...")
        warehouse = Warehouse.open(
            args.data_dir, execution=args.execution, tuning=tuning
        )
        replay = warehouse.last_replay
        print(
            f"loaded snapshot generation {replay.snapshot_generation}, "
            f"replayed {replay.wal_records} WAL record(s) "
            f"({replay.wal_rows} rows)"
        )
    else:
        print(
            f"loading SSB at scale factor {args.scale_factor} "
            f"(seed {args.seed}, execution={args.execution})..."
        )
        warehouse = Warehouse.from_ssb(
            scale_factor=args.scale_factor,
            seed=args.seed,
            execution=args.execution,
            tuning=tuning,
            data_dir=args.data_dir,
        )
        if args.data_dir is not None:
            print(f"dataset persisted to {args.data_dir}")
    if args.autotune:
        warehouse.enable_autotuning()
        print("adaptive right-sizing controller enabled")
    server = WarehouseServer(
        warehouse,
        host=args.host,
        port=args.port,
        owns_warehouse=True,
        max_in_flight_per_connection=args.max_per_connection,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    try:
        print(f"serving on {server.url} — connect with "
              f"repro.connect({server.url!r}); Ctrl-C to stop")
        stop.wait()
    finally:
        print("stopping...")
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
