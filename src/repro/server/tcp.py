"""The threaded TCP warehouse server (docs/ARCHITECTURE.md section 4).

:class:`WarehouseServer` puts the always-on warehouse behind a network
boundary: one process owns one
:class:`~repro.engine.warehouse.Warehouse` (and therefore one
continuous scan) and serves many concurrent client connections, each
speaking the length-prefixed JSON protocol of docs/PROTOCOL.md.  The
remote peer is :class:`~repro.client.remote.RemoteConnection`, reached
through ``repro.connect("tcp://host:port")``.

Threading model: an accept-loop thread plus one handler thread per
connection.  Handler threads only parse frames, submit queries, and
block on handles — the actual query work happens on the warehouse
service's driver thread, so a connection that stalls mid-fetch holds
nothing but its own socket.

Per-connection admission (the fairness layer): each connection may
hold at most ``max_in_flight_per_connection`` queries inside the
warehouse at once.  Further EXECUTEs wait in a per-connection
:class:`~repro.engine.submission.SubmissionQueue` — the same FIFO (and
the same cancellation semantics) the offline routes use — and are
pumped into :meth:`Warehouse.submit` as earlier queries complete.  One
client fanning out hundreds of statements therefore cannot occupy
every in-flight slot of the shared scan; other connections keep
admitting mid-scan.  A torn-down connection cancels everything it
still owns, so a vanished client's slots free within one scan cycle.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.client.cursor import describe
from repro.client.exceptions import (
    Error,
    InterfaceError,
    OperationalError,
    translated,
)
from repro.cjoin.registry import QueryHandle
from repro.engine.submission import (
    ROUTE_BASELINE,
    ROUTE_PROCESS,
    Submission,
    SubmissionQueue,
)
from repro.engine.warehouse import Warehouse
from repro.errors import AdmissionError, ReproError
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.sql.parser import bind_parameters, bind_star_query, parse_select

#: Default TCP port of ``python -m repro.server``.
DEFAULT_PORT = 5477

#: Default bound on one connection's queries inside the warehouse.
DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION = 16

#: Handler threads poll completion/shutdown at this cadence while a
#: FETCH blocks, so ``stop()`` never waits for a client timeout.
_FETCH_POLL_SECONDS = 0.02

#: The accept loop wakes at this cadence to notice ``stop()``.
_ACCEPT_POLL_SECONDS = 0.1

#: Upper bound a FETCH frame may request for one page.
_MAX_PAGE_ROWS = 65536


class _ServerQuery:
    """One statement's server-side state on one connection."""

    __slots__ = ("handle", "rows", "offset", "queued")

    def __init__(self, handle: QueryHandle, queued: bool) -> None:
        self.handle = handle
        #: canonical rows, cached after the first completed FETCH
        self.rows: list[tuple] | None = None
        self.offset = 0
        #: True while waiting in the connection's admission queue
        self.queued = queued


class _CloseConnection(Exception):
    """Internal: the client sent a connection-level CLOSE."""


class _Connection:
    """One client connection: socket, handler thread, query registry."""

    def __init__(self, server: "WarehouseServer", sock: socket.socket) -> None:
        self.server = server
        self.sock = sock
        self.thread = threading.Thread(
            target=self._serve,
            name=f"warehouse-conn-{sock.fileno()}",
            daemon=True,
        )
        self._reader = sock.makefile("rb")
        #: EXECUTEs waiting for a per-connection slot; entries carry
        #: the caller-visible handle so queued statements stay
        #: cancellable in place (DESIGN.md section 10 semantics)
        self._pending = SubmissionQueue("remote")
        self._queries: dict[int, _ServerQuery] = {}
        self._next_query_id = 1
        self._greeted = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.thread.start()

    def shut_down(self) -> None:
        """Unblock the handler thread (called from ``server.stop()``)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _serve(self) -> None:
        try:
            while True:
                frame = protocol.read_frame(self._reader)
                if frame is None:
                    break
                try:
                    response = self._dispatch(frame)
                except _CloseConnection:
                    self._send({"type": protocol.CLOSE_OK})
                    break
                except Error as error:
                    # statement-level failure: report it, keep serving
                    self._send_error(error)
                    continue
                self.sock.sendall(protocol.encode_frame(response))
        except ProtocolError as error:
            # framing violations are fatal: report best-effort, close
            self._send_error(InterfaceError(str(error)))
        except OSError:
            pass  # peer vanished / server shutting down
        finally:
            self._teardown()

    def _send(self, payload: dict) -> None:
        try:
            self.sock.sendall(protocol.encode_frame(payload))
        except OSError:
            pass

    def _send_error(self, error: Exception) -> None:
        self._send(
            protocol.error_payload(type(error).__name__, str(error))
        )

    def _teardown(self) -> None:
        """Cancel everything this connection still owns, then close.

        This is the slow-client guarantee: a vanished or misbehaving
        client's queued statements are dropped in place and its
        in-flight queries are deregistered mid-scan, so its slots free
        within one scan cycle instead of pinning the shared pipeline.
        """
        self._pending.cancel_all()
        for state in self._queries.values():
            if not state.handle.done:
                state.handle.cancel()
        self._queries.clear()
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, frame: dict) -> dict:
        kind = frame["type"]
        if not self._greeted:
            if kind != protocol.HELLO:
                raise ProtocolError(
                    f"expected a hello frame first, got {kind!r}"
                )
            return self._handle_hello(frame)
        # every frame is a pump opportunity: a client that only polls
        # partial-mode FETCH (or cancels) must still see its queued
        # statements admitted as completions free connection slots
        self._pump()
        if kind == protocol.EXECUTE:
            return self._handle_execute(frame)
        if kind == protocol.FETCH:
            return self._handle_fetch(frame)
        if kind == protocol.CANCEL:
            return self._handle_cancel(frame)
        if kind == protocol.CLOSE:
            return self._handle_close(frame)
        raise ProtocolError(f"unknown frame type {kind!r}")

    def _handle_hello(self, frame: dict) -> dict:
        version = frame.get("version")
        if version != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version!r}; this server "
                f"speaks version {protocol.PROTOCOL_VERSION}"
            )
        self._greeted = True
        from repro import __version__

        return {
            "type": protocol.HELLO_OK,
            "version": protocol.PROTOCOL_VERSION,
            "server": f"repro/{__version__}",
            "page_rows": protocol.DEFAULT_PAGE_ROWS,
        }

    # -- EXECUTE -------------------------------------------------------
    def _handle_execute(self, frame: dict) -> dict:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("execute frame requires a string 'sql'")
        if "param_sets" in frame:
            param_sets = frame["param_sets"]
            if not isinstance(param_sets, list):
                raise ProtocolError(
                    "execute frame 'param_sets' must be a list"
                )
        else:
            param_sets = [frame.get("params")]
        warehouse = self.server.warehouse
        # parse and bind every set before anything is submitted, so a
        # bad statement or binding leaves no query behind — the same
        # atomicity contract as Cursor.executemany
        with translated():
            statement = parse_select(sql)
            star = warehouse.star
            queries = [
                bind_star_query(bind_parameters(statement, params), star)
                for params in param_sets
            ]
            description = (
                describe(statement, queries[0], star) if queries else None
            )
        query_ids: list[int] = []
        try:
            for query in queries:
                handle = QueryHandle(query)
                queued = self._submit(query, handle)
                query_id = self._next_query_id
                self._next_query_id += 1
                self._queries[query_id] = _ServerQuery(handle, queued)
                query_ids.append(query_id)
        except BaseException:
            # a submission failure mid-fan-out cancels this frame's
            # earlier queries, mirroring Cursor.executemany
            for query_id in query_ids:
                state = self._queries.pop(query_id)
                if not state.handle.done:
                    state.handle.cancel()
            raise
        return {
            "type": protocol.EXECUTE_OK,
            "query_ids": query_ids,
            "description": protocol.encode_description(description),
        }

    def _submit(self, query, handle: QueryHandle) -> bool:
        """Submit now if a per-connection slot is free, else queue.

        Returns True when the query was parked in the connection's
        admission FIFO (``_pump`` moves it into the warehouse later).
        """
        with translated():
            if len(self._pending) or (
                self._active_count() >= self.server.max_in_flight_per_connection
            ):
                self._pending.add(Submission(query, handle, "remote"))
                return True
            self.server.warehouse.submit(query, handle=handle)
            return False

    def _active_count(self) -> int:
        return sum(
            1
            for state in self._queries.values()
            if not state.queued and not state.handle.done
        )

    def _pump(self) -> None:
        """Move queued statements into the warehouse as slots free.

        Runs only on this connection's handler thread, so it never
        races itself; cancellation of still-queued entries happens on
        the same thread (CANCEL frames) or during teardown.  A full
        service queue puts the statement back for a later pump; any
        other submission failure completes its handle as cancelled so
        a blocked fetch wakes instead of hanging.
        """
        while len(self._pending):
            if self._active_count() >= self.server.max_in_flight_per_connection:
                return
            batch = self._pending.take()
            if not batch:
                return
            head, rest = batch[0], batch[1:]
            if rest:
                self._pending.restore(rest)
            if head.handle.cancelled:
                continue
            try:
                self.server.warehouse.submit(head.query, handle=head.handle)
            except AdmissionError:
                self._pending.restore([head])  # back-pressure: retry later
                return
            except ReproError:
                head.handle.mark_cancelled()
                head.handle.complete([])
                continue
            for state in self._queries.values():
                if state.handle is head.handle:
                    state.queued = False
                    break

    # -- FETCH ---------------------------------------------------------
    def _lookup(self, frame: dict) -> tuple[int, _ServerQuery]:
        query_id = frame.get("query_id")
        state = (
            self._queries.get(query_id)
            if isinstance(query_id, int)
            else None
        )
        if state is None:
            raise InterfaceError(f"unknown query id {query_id!r}")
        return query_id, state

    def _handle_fetch(self, frame: dict) -> dict:
        query_id, state = self._lookup(frame)
        if frame.get("mode") == "partial":
            with translated():
                rows = state.handle.rows_so_far()
            # partial snapshots are advisory and replaced wholesale, so
            # a bounded prefix keeps the frame under MAX_FRAME_BYTES
            # instead of killing the connection on a huge mid-scan
            # state (docs/PROTOCOL.md section 6)
            return {
                "type": protocol.ROWS,
                "query_id": query_id,
                "rows": rows[:_MAX_PAGE_ROWS],
                "more": not state.handle.done,
            }
        max_rows = frame.get("max_rows", protocol.DEFAULT_PAGE_ROWS)
        if not isinstance(max_rows, int) or not (
            1 <= max_rows <= _MAX_PAGE_ROWS
        ):
            raise ProtocolError(
                f"fetch max_rows must be an int in [1, {_MAX_PAGE_ROWS}], "
                f"got {max_rows!r}"
            )
        timeout = frame.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("fetch timeout must be a number or null")
        if state.rows is None:
            self._wait_done(state.handle, timeout)
            with translated():
                state.rows = state.handle.results()
        page = state.rows[state.offset:state.offset + max_rows]
        state.offset += len(page)
        return {
            "type": protocol.ROWS,
            "query_id": query_id,
            "rows": page,
            "more": state.offset < len(state.rows),
        }

    def _wait_done(self, handle: QueryHandle, timeout: float | None) -> None:
        """Block until the handle completes, pumping admissions.

        The wait polls so it can (a) move this connection's queued
        statements into slots freed by completions — a FETCH on a
        still-queued statement must make progress — and (b) abort
        promptly on server shutdown instead of stranding the handler
        thread until the client timeout.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while not handle.done:
            if self.server._closing.is_set():
                raise OperationalError("server is shutting down")
            self._pump()
            self.server._drive(handle)
            if deadline is not None and time.monotonic() >= deadline:
                raise OperationalError(
                    f"query did not complete within {timeout} seconds"
                )
            handle.wait(_FETCH_POLL_SECONDS)

    # -- CANCEL / CLOSE ------------------------------------------------
    def _handle_cancel(self, frame: dict) -> dict:
        _, state = self._lookup(frame)
        with translated():
            cancelled = state.handle.cancel()
        return {"type": protocol.CANCEL_OK, "cancelled": bool(cancelled)}

    def _handle_close(self, frame: dict) -> dict:
        if "query_id" not in frame:
            raise _CloseConnection()
        query_id, state = self._lookup(frame)
        del self._queries[query_id]
        if not state.handle.done:
            state.handle.cancel()
        return {"type": protocol.CLOSE_OK}


class WarehouseServer:
    """A threaded TCP server around one always-on warehouse.

    Args:
        warehouse: the warehouse to serve.
        host: interface to bind (default loopback).
        port: TCP port; 0 (the default) picks a free ephemeral port,
            readable from :attr:`address` / :attr:`url` after
            :meth:`start`.
        owns_warehouse: close the warehouse on :meth:`stop` (True when
            a launcher built it just for this server).
        max_in_flight_per_connection: bound on one connection's
            concurrently submitted queries; the per-connection
            admission queue holds the rest (fairness across clients).

    Usage::

        server = WarehouseServer(warehouse).start()
        ... # clients connect to repro.connect(server.url)
        server.stop()
    """

    def __init__(
        self,
        warehouse: Warehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        owns_warehouse: bool = False,
        max_in_flight_per_connection: int = (
            DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION
        ),
    ) -> None:
        if max_in_flight_per_connection < 1:
            raise InterfaceError(
                f"max_in_flight_per_connection must be >= 1, got "
                f"{max_in_flight_per_connection}"
            )
        self.warehouse = warehouse
        self.max_in_flight_per_connection = max_in_flight_per_connection
        self._requested = (host, port)
        self._owns_warehouse = owns_warehouse
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        #: serializes Warehouse.run() drains for offline-routed handles
        self._run_lock = threading.Lock()
        self._closing = threading.Event()
        self._started_service = False
        self._address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the accept loop is alive."""
        thread = self._accept_thread
        return thread is not None and thread.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``.

        Raises:
            InterfaceError: before :meth:`start`.
        """
        if self._address is None:
            raise InterfaceError("server is not started")
        return self._address

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` URL clients pass to ``repro.connect``."""
        host, port = self.address
        return f"tcp://{host}:{port}"

    def start(self) -> "WarehouseServer":
        """Bind, start the accept loop, and start the warehouse service.

        Returns self, so ``server = WarehouseServer(w).start()`` reads
        naturally.

        Raises:
            InterfaceError: when already running.
        """
        if self.running:
            raise InterfaceError("server is already running")
        self._closing.clear()
        # serial backends serve live (mid-scan admission); the process
        # backend admits at drain boundaries, driven from _drive()
        if (
            self.warehouse.executor_config.backend == "serial"
            and not self.warehouse.service.running
        ):
            with translated():
                self.warehouse.start_service()
            self._started_service = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self._requested)
            listener.listen(128)
            # closing a socket does not wake a thread blocked in
            # accept() on every platform; poll so stop() always joins
            listener.settimeout(_ACCEPT_POLL_SECONDS)
        except OSError:
            listener.close()
            if self._started_service:
                self.warehouse.stop_service()
                self._started_service = False
            raise
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(listener,),  # stop() nulls self._listener concurrently
            name="warehouse-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closing.is_set():
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue  # poll the closing flag
            except OSError:
                return  # listener closed by stop()
            sock.settimeout(None)  # handlers block on frames
            connection = _Connection(self, sock)
            with self._conn_lock:
                if self._closing.is_set():
                    sock.close()
                    return
                self._connections.add(connection)
            connection.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down cleanly (idempotent): no leaked threads or sockets.

        Closes the listener, unblocks and joins every handler thread
        (their teardown cancels the queries their clients abandoned),
        stops the service driver this server started, and closes the
        warehouse when it owns it.
        """
        self._closing.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.shut_down()
        for connection in connections:
            connection.thread.join(timeout)
        if self._started_service:
            self.warehouse.stop_service()
            self._started_service = False
        if self._owns_warehouse and not self.warehouse.closed:
            self.warehouse.close()

    def __enter__(self) -> "WarehouseServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    @property
    def connection_count(self) -> int:
        """Currently attached client connections."""
        with self._conn_lock:
            return len(self._connections)

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)

    def _drive(self, handle: QueryHandle) -> None:
        """Let an offline-routed handle finish (Connection._complete's

        server-side twin): with the background driver running and no
        offline submissions pending there is nothing to do; otherwise
        drain the warehouse on this handler thread, serialized so
        concurrent connections do not double-drive the offline routes.
        """
        if handle.done:
            return
        warehouse = self.warehouse
        offline_pending = warehouse.pending_submissions(
            ROUTE_PROCESS
        ) or warehouse.pending_submissions(ROUTE_BASELINE)
        if offline_pending or not warehouse.service.running:
            with self._run_lock:
                if not handle.done:
                    with translated():
                        warehouse.run()
