"""The threaded TCP warehouse server (docs/ARCHITECTURE.md section 4).

:class:`WarehouseServer` puts the always-on warehouse behind a network
boundary: one process owns one
:class:`~repro.engine.warehouse.Warehouse` (and therefore one
continuous scan) and serves many concurrent client connections, each
speaking the length-prefixed JSON protocol of docs/PROTOCOL.md.  The
remote peer is :class:`~repro.client.remote.RemoteConnection`, reached
through ``repro.connect("tcp://host:port")``.

Threading model: an accept-loop thread plus one handler thread per
connection.  Handler threads only parse frames, submit queries, and
block on handles — the actual query work happens on the warehouse
service's driver thread, so a connection that stalls mid-fetch holds
nothing but its own socket.

Per-connection admission (the fairness layer): each connection may
hold at most ``max_in_flight_per_connection`` queries inside the
warehouse at once.  Further EXECUTEs wait in a per-connection
:class:`~repro.engine.submission.SubmissionQueue` — the same FIFO (and
the same cancellation semantics) the offline routes use — and are
pumped into :meth:`Warehouse.submit` as earlier queries complete.  One
client fanning out hundreds of statements therefore cannot occupy
every in-flight slot of the shared scan; other connections keep
admitting mid-scan.  A torn-down connection cancels everything it
still owns, so a vanished client's slots free within one scan cycle.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.client.exceptions import (
    Error,
    InterfaceError,
    OperationalError,
    translated,
)
from repro.cjoin.registry import QueryHandle
from repro.engine.submission import ROUTE_BASELINE, ROUTE_PROCESS
from repro.engine.warehouse import Warehouse
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.session import (
    DEFAULT_MAX_PENDING_INGEST_ROWS,
    CloseConnection,
    ServerSession,
)

# the per-connection fairness bound lives with every other tuning
# constant now (repro.tuning); re-exported for existing importers
from repro.tuning import DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION  # noqa: F401

#: Default TCP port of ``python -m repro.server``.
DEFAULT_PORT = 5477

#: Handler threads poll completion/shutdown at this cadence while a
#: FETCH blocks, so ``stop()`` never waits for a client timeout.
_FETCH_POLL_SECONDS = 0.02

#: The accept loop wakes at this cadence to notice ``stop()``.
_ACCEPT_POLL_SECONDS = 0.1


class _Connection:
    """One client connection: socket, handler thread, session state.

    Protocol state (HELLO negotiation, the query registry, admission,
    EXECUTE/CANCEL/CLOSE semantics) lives in the shared
    :class:`~repro.server.session.ServerSession`; this class adds the
    threaded transport — a blocking reader, serial dispatch, and the
    poll-based FETCH wait.  On a v2 connection replies echo the
    request id of the frame they answer (docs/PROTOCOL.md section 8);
    dispatch stays serial, which v2 permits: interleaving is a server
    liberty, not an obligation.
    """

    def __init__(self, server: "WarehouseServer", sock: socket.socket) -> None:
        self.server = server
        self.sock = sock
        self.thread = threading.Thread(
            target=self._serve,
            name=f"warehouse-conn-{sock.fileno()}",
            daemon=True,
        )
        self._reader = sock.makefile("rb")
        self.session = ServerSession(server)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.thread.start()

    def shut_down(self) -> None:
        """Unblock the handler thread (called from ``server.stop()``)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _serve(self) -> None:
        try:
            while True:
                frame = protocol.read_frame(self._reader)
                if frame is None:
                    break
                request_id = None
                try:
                    if self.session.version >= 2:
                        request_id = protocol.request_id_of(frame)
                    response = self._dispatch(frame)
                except CloseConnection:
                    self._send(
                        _tag({"type": protocol.CLOSE_OK}, request_id)
                    )
                    break
                except ProtocolError as error:
                    # a violation inside a well-framed request still
                    # echoes its request id before the fatal close
                    self._send_error(InterfaceError(str(error)), request_id)
                    break
                except Error as error:
                    # statement-level failure: report it, keep serving
                    self._send_error(error, request_id)
                    continue
                self.sock.sendall(
                    protocol.encode_frame(_tag(response, request_id))
                )
        except ProtocolError as error:
            # framing violations are fatal: report best-effort, close
            self._send_error(InterfaceError(str(error)), None)
        except OSError:
            pass  # peer vanished / server shutting down
        finally:
            self._teardown()

    def _send(self, payload: dict) -> None:
        try:
            self.sock.sendall(protocol.encode_frame(payload))
        except OSError:
            pass

    def _send_error(
        self, error: Exception, request_id: int | None
    ) -> None:
        self._send(
            _tag(
                protocol.error_payload(type(error).__name__, str(error)),
                request_id,
            )
        )

    def _teardown(self) -> None:
        """Session teardown (cancel everything owned), then close."""
        self.session.teardown()
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, frame: dict) -> dict:
        kind = frame["type"]
        session = self.session
        if not session.greeted:
            session.require_hello(kind)
            return session.hello(frame)
        # every frame is a pump opportunity: a client that only polls
        # partial-mode FETCH (or cancels) must still see its queued
        # statements admitted as completions free connection slots
        session.pump()
        if kind == protocol.EXECUTE:
            return session.execute(frame)
        if kind == protocol.FETCH:
            return self._handle_fetch(frame)
        if kind == protocol.CANCEL:
            return session.cancel(frame)
        if kind == protocol.CLOSE:
            return session.close(frame)
        if kind == protocol.STATS:
            return session.stats(frame)
        if kind == protocol.INGEST:
            return self._handle_ingest(frame)
        raise ProtocolError(f"unknown frame type {kind!r}")

    def _handle_fetch(self, frame: dict) -> dict:
        if frame.get("mode") == "partial":
            return self.session.partial_reply(frame)
        query_id, state, max_rows, timeout = self.session.validate_fetch(
            frame
        )
        if state.rows is None:
            self._wait_done(state.handle, timeout)
        return self.session.page_reply(query_id, state, max_rows)

    def _handle_ingest(self, frame: dict) -> dict:
        """Stage, wait for the scan-boundary apply, ack (section 10)."""
        ticket = self.session.ingest(frame)
        timeout = frame.get("timeout")
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
        ):
            raise ProtocolError("ingest timeout must be a number or null")
        self._wait_ingest(ticket, timeout)
        return self.session.ingest_reply(ticket)

    def _wait_ingest(self, ticket, timeout: float | None) -> None:
        """Block until the staged batch resolves, driving the apply.

        With the service driver running, its cycle hook lands the
        batch; without one (process-backend servers, stopped drivers)
        this handler thread applies at the boundary itself.  Polls so
        it aborts promptly on server shutdown.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while not ticket.done:
            if self.server._closing.is_set():
                raise OperationalError("server is shutting down")
            if not self.server.warehouse.service.running:
                with translated():
                    self.server.warehouse.apply_pending_ingest()
            if deadline is not None and time.monotonic() >= deadline:
                raise OperationalError(
                    f"ingest batch was not applied within {timeout} seconds"
                )
            ticket.wait(_FETCH_POLL_SECONDS)

    def _wait_done(self, handle: QueryHandle, timeout: float | None) -> None:
        """Block until the handle completes, pumping admissions.

        The wait polls so it can (a) move this connection's queued
        statements into slots freed by completions — a FETCH on a
        still-queued statement must make progress — and (b) abort
        promptly on server shutdown instead of stranding the handler
        thread until the client timeout.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while not handle.done:
            if self.server._closing.is_set():
                raise OperationalError("server is shutting down")
            self.session.pump()
            self.server._drive(handle)
            if deadline is not None and time.monotonic() >= deadline:
                raise OperationalError(
                    f"query did not complete within {timeout} seconds"
                )
            handle.wait(_FETCH_POLL_SECONDS)


def _tag(payload: dict, request_id: int | None) -> dict:
    """Echo a v2 request id on a reply (no-op for v1 connections)."""
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


class WarehouseServer:
    """A threaded TCP server around one always-on warehouse.

    Args:
        warehouse: the warehouse to serve.
        host: interface to bind (default loopback).
        port: TCP port; 0 (the default) picks a free ephemeral port,
            readable from :attr:`address` / :attr:`url` after
            :meth:`start`.
        owns_warehouse: close the warehouse on :meth:`stop` (True when
            a launcher built it just for this server).
        max_in_flight_per_connection: bound on one connection's
            concurrently submitted queries; the per-connection
            admission queue holds the rest (fairness across clients).
        max_pending_ingest_rows_per_connection: bound on one
            connection's staged-but-unacked INGEST rows (the
            write-side fairness twin, docs/PROTOCOL.md section 10);
            beyond it the connection gets typed back-pressure.

    Usage::

        server = WarehouseServer(warehouse).start()
        ... # clients connect to repro.connect(server.url)
        server.stop()
    """

    def __init__(
        self,
        warehouse: Warehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        owns_warehouse: bool = False,
        max_in_flight_per_connection: int = (
            DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION
        ),
        max_pending_ingest_rows_per_connection: int = (
            DEFAULT_MAX_PENDING_INGEST_ROWS
        ),
    ) -> None:
        if max_in_flight_per_connection < 1:
            raise InterfaceError(
                f"max_in_flight_per_connection must be >= 1, got "
                f"{max_in_flight_per_connection}"
            )
        if max_pending_ingest_rows_per_connection < 1:
            raise InterfaceError(
                f"max_pending_ingest_rows_per_connection must be >= 1, "
                f"got {max_pending_ingest_rows_per_connection}"
            )
        self.warehouse = warehouse
        self.max_in_flight_per_connection = max_in_flight_per_connection
        self.max_pending_ingest_rows_per_connection = (
            max_pending_ingest_rows_per_connection
        )
        self._requested = (host, port)
        self._owns_warehouse = owns_warehouse
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        #: serializes Warehouse.run() drains for offline-routed handles
        self._run_lock = threading.Lock()
        self._closing = threading.Event()
        self._started_service = False
        self._address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the accept loop is alive."""
        thread = self._accept_thread
        return thread is not None and thread.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``.

        Raises:
            InterfaceError: before :meth:`start`.
        """
        if self._address is None:
            raise InterfaceError("server is not started")
        return self._address

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` URL clients pass to ``repro.connect``."""
        host, port = self.address
        return f"tcp://{host}:{port}"

    def start(self) -> "WarehouseServer":
        """Bind, start the accept loop, and start the warehouse service.

        Returns self, so ``server = WarehouseServer(w).start()`` reads
        naturally.

        Raises:
            InterfaceError: when already running.
        """
        if self.running:
            raise InterfaceError("server is already running")
        self._closing.clear()
        # serial backends serve live (mid-scan admission); the process
        # backend admits at drain boundaries, driven from _drive()
        if (
            self.warehouse.executor_config.backend == "serial"
            and not self.warehouse.service.running
        ):
            with translated():
                self.warehouse.start_service()
            self._started_service = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self._requested)
            listener.listen(128)
            # closing a socket does not wake a thread blocked in
            # accept() on every platform; poll so stop() always joins
            listener.settimeout(_ACCEPT_POLL_SECONDS)
        except OSError:
            listener.close()
            if self._started_service:
                self.warehouse.stop_service()
                self._started_service = False
            raise
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(listener,),  # stop() nulls self._listener concurrently
            name="warehouse-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closing.is_set():
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue  # poll the closing flag
            except OSError:
                return  # listener closed by stop()
            sock.settimeout(None)  # handlers block on frames
            connection = _Connection(self, sock)
            with self._conn_lock:
                if self._closing.is_set():
                    sock.close()
                    return
                self._connections.add(connection)
            connection.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down cleanly (idempotent): no leaked threads or sockets.

        Closes the listener, unblocks and joins every handler thread
        (their teardown cancels the queries their clients abandoned),
        stops the service driver this server started, and closes the
        warehouse when it owns it.
        """
        self._closing.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.shut_down()
        for connection in connections:
            connection.thread.join(timeout)
        if self._started_service:
            self.warehouse.stop_service()
            self._started_service = False
        if self._owns_warehouse and not self.warehouse.closed:
            self.warehouse.close()

    def swap_warehouse(self, shadow: Warehouse, **kwargs):
        """Blue-green cutover to ``shadow`` (DESIGN.md section 16).

        Sessions survive: they resolve ``server.warehouse`` per
        statement, so queries submitted after the flip run on the
        shadow while handles already streaming complete against the
        dataset version that admitted them.  Returns the
        :class:`~repro.engine.swap.SwapReport`; the old warehouse is
        drained and retired (kwargs forward to
        :func:`~repro.engine.swap.blue_green_swap`).
        """
        from repro.engine.swap import blue_green_swap

        return blue_green_swap(self, shadow, **kwargs)

    def __enter__(self) -> "WarehouseServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    @property
    def connection_count(self) -> int:
        """Currently attached client connections."""
        with self._conn_lock:
            return len(self._connections)

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)

    def _drive(self, handle: QueryHandle) -> None:
        """Let an offline-routed handle finish (Connection._complete's

        server-side twin): with the background driver running and no
        offline submissions pending there is nothing to do; otherwise
        drain the warehouse on this handler thread, serialized so
        concurrent connections do not double-drive the offline routes.
        """
        if handle.done:
            return
        warehouse = self.warehouse
        offline_pending = warehouse.pending_submissions(
            ROUTE_PROCESS
        ) or warehouse.pending_submissions(ROUTE_BASELINE)
        if offline_pending or not warehouse.service.running:
            with self._run_lock:
                if not handle.done:
                    with translated():
                        warehouse.run()
