"""Streaming ingestion: continuous updates racing the continuous scan.

The paper's §3.5 sketches mid-scan updates under snapshot isolation;
:mod:`repro.storage.mvcc` implements the visibility machinery.  This
package is the write *path* on top of it (DESIGN.md section 15): a
bounded in-memory WAL-style staging buffer (:class:`IngestBuffer`)
that accepts batched fact appends and dimension upserts from any
thread, and an apply step that lands every staged batch at a scan
boundary — on the service driver thread, under the Pipeline Manager's
admission lock and the Preprocessor's stall protocol — so in-flight
queries never observe a torn write.

Write side::

    with warehouse.writer() as writer:
        writer.append((1, 10, 2, 10))            # fact row
        writer.upsert("store", (3, "nice", 60))  # dimension row
    # the context exit flushes and blocks until applied

or one-shot::

    ticket = warehouse.ingest(fact_rows=[...])
    ticket.result(timeout=5.0)   # {'rows': ..., 'snapshot_id': ...}

A full buffer raises :class:`~repro.errors.IngestBackpressureError`
(typed back-pressure, same philosophy as admission queues); a closed
warehouse rejects still-pending batches deterministically with
:class:`~repro.errors.IngestError`.
"""

from repro.ingest.buffer import IngestBatch, IngestBuffer, IngestTicket
from repro.ingest.writer import IngestWriter

__all__ = [
    "IngestBatch",
    "IngestBuffer",
    "IngestTicket",
    "IngestWriter",
]
