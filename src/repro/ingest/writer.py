"""The batching writer over ``Warehouse.ingest()``.

:class:`IngestWriter` is the produce-side convenience: it accumulates
fact appends and dimension upserts locally, stages a batch whenever
``batch_rows`` accumulate (amortizing the staging lock the way the
read path amortizes per-tuple dispatch into batches), and tracks the
outstanding tickets so ``flush()`` gives the caller one durable ack
for everything written so far.
"""

from __future__ import annotations

from repro.errors import IngestError

#: Rows accumulated locally before a batch is staged automatically.
DEFAULT_WRITER_BATCH_ROWS = 1024


class IngestWriter:
    """Accumulate writes; stage in batches; flush for the ack.

    Single-threaded by design, like a cursor: one writer per producing
    thread, all sharing the warehouse's one staging buffer.  Usable as
    a context manager — the exit flushes (blocking until every staged
    batch applied) unless the body raised.
    """

    def __init__(
        self, warehouse, batch_rows: int = DEFAULT_WRITER_BATCH_ROWS
    ) -> None:
        if batch_rows < 1:
            raise IngestError(
                f"writer batch_rows must be >= 1, got {batch_rows}"
            )
        self.warehouse = warehouse
        self.batch_rows = batch_rows
        self._fact_rows: list[tuple] = []
        self._dim_upserts: dict[str, list[tuple]] = {}
        self._tickets: list = []
        self.rows_written = 0
        #: the receipt of the most recent flush() — how a context-
        #: manager caller reads the ack the implicit exit flush earned
        self.last_receipt: dict | None = None

    def append(self, row: tuple) -> None:
        """Buffer one fact-table append."""
        self._fact_rows.append(tuple(row))
        self._note_row()

    def upsert(self, dimension: str, row: tuple) -> None:
        """Buffer one dimension upsert (insert-or-replace by primary key)."""
        self._dim_upserts.setdefault(dimension, []).append(tuple(row))
        self._note_row()

    def _note_row(self) -> None:
        self.rows_written += 1
        if self._buffered_rows() >= self.batch_rows:
            self._stage()

    def _buffered_rows(self) -> int:
        return len(self._fact_rows) + sum(
            len(rows) for rows in self._dim_upserts.values()
        )

    def _stage(self) -> None:
        """Hand the local accumulation to the warehouse buffer.

        Raises:
            IngestBackpressureError: when the staging buffer is full;
                the local accumulation is kept, so the caller can back
                off and retry the triggering ``append``/``flush``.
        """
        if not self._buffered_rows():
            return
        ticket = self.warehouse.ingest(
            fact_rows=self._fact_rows, dim_upserts=self._dim_upserts
        )
        self._fact_rows = []
        self._dim_upserts = {}
        self._tickets.append(ticket)

    def flush(self, timeout: float | None = 30.0) -> dict:
        """Stage the remainder and block until every batch applied.

        Without a running service driver the apply is driven inline on
        this thread (the embedded/offline mode); with one, the driver
        lands the batches at its next scan boundary.

        Returns ``{'rows', 'batches', 'snapshot_id'}`` covering every
        batch this writer staged since the last flush.

        Raises:
            IngestError: when a batch was rejected/failed, or the
                driver did not apply within ``timeout``.
        """
        self._stage()
        tickets, self._tickets = self._tickets, []
        if tickets and not self.warehouse.service.running:
            self.warehouse.apply_pending_ingest()
        snapshot_id = None
        rows = 0
        for ticket in tickets:
            receipt = ticket.result(timeout)
            rows += receipt["rows"]
            snapshot_id = receipt["snapshot_id"]
        self.last_receipt = {
            "rows": rows,
            "batches": len(tickets),
            "snapshot_id": snapshot_id,
        }
        return self.last_receipt

    def __enter__(self) -> "IngestWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            self.flush()
