"""The bounded staging buffer between writers and the scan boundary.

Writers (local threads, server sessions) stage :class:`IngestBatch`
write sets here from any thread; the warehouse's apply hook takes the
whole pending queue at a scan boundary and lands it under the pipeline
locks.  The buffer owns the WAL-style lifecycle invariant: a staged
batch is at every instant either *pending* (still discardable, e.g.
when the connection that staged it dies) or *taken* for apply —
never half of each — because both transitions happen under one lock.

Telemetry (rows/sec applied, apply latency, depth, generation) lives
here too, feeding the ``ingest`` section of ``Warehouse.stats()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import IngestBackpressureError, IngestError

#: Default bound on staged-but-unapplied rows across all writers.
DEFAULT_BUFFER_ROWS = 65536

#: Apply-latency samples retained for the stats mean.
LATENCY_SAMPLES = 256


class IngestBatch:
    """One write set: fact appends plus per-dimension upserts."""

    __slots__ = ("fact_rows", "dim_upserts", "rows")

    def __init__(
        self,
        fact_rows: list[tuple] | None = None,
        dim_upserts: dict[str, list[tuple]] | None = None,
    ) -> None:
        self.fact_rows = [tuple(row) for row in (fact_rows or [])]
        self.dim_upserts = {
            name: [tuple(row) for row in rows]
            for name, rows in (dim_upserts or {}).items()
        }
        self.rows = len(self.fact_rows) + sum(
            len(rows) for rows in self.dim_upserts.values()
        )


class IngestTicket:
    """The caller's handle on one staged batch.

    Resolves exactly once: *applied* (carrying the commit snapshot id
    and the apply generation), *rejected* (discarded before apply —
    dead connection, warehouse close), or *failed* (the apply itself
    raised).  ``wait``/``result`` block; ``on_done`` registers a
    callback for event-loop transports, fired immediately when the
    ticket already resolved (mirroring ``QueryHandle.on_complete``).
    """

    def __init__(self, rows: int) -> None:
        self.rows = rows
        self.snapshot_id: int | None = None
        self.generation: int | None = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list = []
        self._error: IngestError | None = None

    @property
    def done(self) -> bool:
        """True once the ticket resolved (applied, rejected, or failed)."""
        return self._event.is_set()

    @property
    def applied(self) -> bool:
        """True iff the batch landed in the warehouse."""
        return self._event.is_set() and self._error is None

    @property
    def error(self) -> IngestError | None:
        """The rejection/failure, or None."""
        return self._error

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved; True iff resolved within ``timeout``."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> dict:
        """Block for the apply receipt.

        Returns ``{'rows', 'snapshot_id', 'generation'}``.

        Raises:
            IngestError: when the batch was rejected, the apply failed,
                or ``timeout`` expired first.
        """
        if not self._event.wait(timeout):
            raise IngestError(
                f"ingest batch ({self.rows} rows) not applied within "
                f"{timeout} seconds"
            )
        if self._error is not None:
            raise self._error
        return {
            "rows": self.rows,
            "snapshot_id": self.snapshot_id,
            "generation": self.generation,
        }

    def on_done(self, callback) -> None:
        """Run ``callback(ticket)`` at resolution (now, if resolved)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(
        self, error: IngestError | None, snapshot_id: int | None = None,
        generation: int | None = None,
    ) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self.snapshot_id = snapshot_id
            self.generation = generation
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback(self)


class IngestBuffer:
    """Bounded FIFO of staged batches awaiting the next scan boundary.

    Args:
        capacity_rows: bound on pending (staged-but-unapplied) rows
            summed over all batches; :meth:`offer` raises
            :class:`~repro.errors.IngestBackpressureError` beyond it.
    """

    def __init__(self, capacity_rows: int = DEFAULT_BUFFER_ROWS) -> None:
        if capacity_rows < 1:
            raise IngestError(
                f"ingest buffer capacity must be >= 1 row, got {capacity_rows}"
            )
        self.capacity_rows = capacity_rows
        self._lock = threading.Lock()
        self._pending: deque[tuple[IngestBatch, IngestTicket, object]] = deque()
        self._pending_rows = 0
        # telemetry, guarded by the same lock
        self._rows_applied = 0
        self._batches_applied = 0
        self._batches_rejected = 0
        self._generation = 0
        self._apply_seconds: deque[float] = deque(maxlen=LATENCY_SAMPLES)
        self._first_apply: float | None = None
        self._last_apply: float | None = None

    # ------------------------------------------------------------------
    # Staging (any thread)
    # ------------------------------------------------------------------
    def offer(self, batch: IngestBatch, owner: object = None) -> IngestTicket:
        """Stage ``batch``; returns its ticket.

        ``owner`` tags the batch so :meth:`discard_owner` can reject a
        dead connection's still-pending writes without touching anyone
        else's.

        Raises:
            IngestError: on an empty batch.
            IngestBackpressureError: when the buffer is full.
        """
        if batch.rows == 0:
            raise IngestError("ingest batch is empty: nothing to apply")
        ticket = IngestTicket(batch.rows)
        with self._lock:
            if self._pending_rows + batch.rows > self.capacity_rows:
                raise IngestBackpressureError(
                    f"ingest buffer is full ({self._pending_rows} rows "
                    f"pending, capacity {self.capacity_rows}); wait for "
                    f"the next scan-boundary apply or raise the capacity"
                )
            self._pending.append((batch, ticket, owner))
            self._pending_rows += batch.rows
        return ticket

    # ------------------------------------------------------------------
    # Apply side (the warehouse's scan-boundary hook)
    # ------------------------------------------------------------------
    def take_all(self) -> list[tuple[IngestBatch, IngestTicket]]:
        """Claim every pending batch for apply, FIFO order.

        Once taken, a batch is no longer discardable: the apply path
        resolves its ticket.
        """
        with self._lock:
            taken = [(batch, ticket) for batch, ticket, _ in self._pending]
            self._pending.clear()
            self._pending_rows = 0
        return taken

    def next_generation(self) -> int:
        """Claim the next apply generation (before the ack).

        The durable-apply path claims the generation *first* so the
        WAL record carries it, then acks through :meth:`record_apply`
        with the claimed value; a failed apply simply leaves a gap
        (generations are monotonic, not dense).
        """
        with self._lock:
            self._generation += 1
            return self._generation

    def restore_generation(self, generation: int) -> None:
        """Fast-forward the counter past recovered history.

        Called by ``Warehouse.open`` so tickets acked after a restart
        continue the pre-crash sequence instead of reissuing it.
        """
        with self._lock:
            self._generation = max(self._generation, int(generation))

    @property
    def generation(self) -> int:
        """Apply generations issued so far (monotonic)."""
        with self._lock:
            return self._generation

    def record_apply(
        self,
        ticket: IngestTicket,
        snapshot_id: int,
        seconds: float,
        generation: int | None = None,
    ) -> None:
        """Resolve one applied batch and fold it into the telemetry.

        ``generation`` carries a value pre-claimed via
        :meth:`next_generation` (the durable path); when omitted, the
        next generation is claimed here.
        """
        with self._lock:
            if generation is None:
                self._generation += 1
                generation = self._generation
            else:
                self._generation = max(self._generation, generation)
            self._rows_applied += ticket.rows
            self._batches_applied += 1
            self._apply_seconds.append(seconds)
            now = time.monotonic()
            if self._first_apply is None:
                self._first_apply = now
            self._last_apply = now
        ticket._resolve(None, snapshot_id=snapshot_id, generation=generation)

    def record_failure(self, ticket: IngestTicket, error: BaseException) -> None:
        """Resolve one taken batch whose apply raised."""
        with self._lock:
            self._batches_rejected += 1
        if not isinstance(error, IngestError):
            error = IngestError(f"ingest apply failed: {error}")
        ticket._resolve(error)

    # ------------------------------------------------------------------
    # Rejection (dead connections, warehouse close)
    # ------------------------------------------------------------------
    def discard_owner(self, owner: object, reason: str) -> int:
        """Reject ``owner``'s still-pending batches; returns rows dropped.

        Batches already taken for apply are untouched — they resolve
        through the apply path (the ack then simply has nowhere to go).
        """
        return self._discard(lambda entry: entry[2] is owner, reason)

    def reject_all(self, reason: str) -> int:
        """Reject every still-pending batch (the close() path)."""
        return self._discard(lambda entry: True, reason)

    def _discard(self, predicate, reason: str) -> int:
        with self._lock:
            kept, dropped = deque(), []
            for entry in self._pending:
                (dropped if predicate(entry) else kept).append(entry)
            self._pending = kept
            self._pending_rows = sum(batch.rows for batch, _, _ in kept)
            self._batches_rejected += len(dropped)
        rows = 0
        for batch, ticket, _ in dropped:
            rows += batch.rows
            ticket._resolve(IngestError(f"ingest batch discarded: {reason}"))
        return rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_rows(self) -> int:
        """Rows staged and not yet taken for apply."""
        with self._lock:
            return self._pending_rows

    @property
    def pending_batches(self) -> int:
        """Batches staged and not yet taken for apply."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict:
        """The ``ingest`` section of ``Warehouse.stats()`` (JSON-able)."""
        with self._lock:
            samples = list(self._apply_seconds)
            window = (
                (self._last_apply - self._first_apply)
                if self._first_apply is not None
                else 0.0
            )
            # over a sub-resolution window, charge the measured apply
            # cost itself so rows/sec stays meaningful for one burst
            denominator = max(window, sum(samples), 1e-9)
            return {
                "rows_applied": self._rows_applied,
                "batches_applied": self._batches_applied,
                "batches_rejected": self._batches_rejected,
                "rows_per_second": self._rows_applied / denominator,
                "apply_latency_last": samples[-1] if samples else 0.0,
                "apply_latency_mean": (
                    sum(samples) / len(samples) if samples else 0.0
                ),
                "buffer_rows": self._pending_rows,
                "buffer_batches": len(self._pending),
                "buffer_capacity": self.capacity_rows,
                "generation": self._generation,
            }
