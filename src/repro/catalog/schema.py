"""Relational schema model.

The warehouse model of the paper (section 2.1): a fact table ``F``
linked through key/foreign-key equi-joins to dimension tables
``D1..Dd`` (a *star* schema), generalized to several fact tables
sharing dimensions (a *galaxy* schema, section 5).

Schemas here are metadata only; rows live in :mod:`repro.storage`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Column types supported by the storage and query layers."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"  # stored as int yyyymmdd; kept distinct for readability

    def python_type(self) -> type:
        """Return the Python type used to hold values of this column."""
        if self is DataType.FLOAT:
            return float
        if self is DataType.STRING:
            return str
        return int


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A key/foreign-key link from a fact column to a dimension key."""

    column: str          # referencing column on the owning table
    referenced_table: str
    referenced_column: str


class TableSchema:
    """An ordered set of columns with an optional primary key.

    Column positions are fixed at construction; rows are stored as plain
    tuples indexed by those positions.
    """

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: str | None = None,
        foreign_keys: list[ForeignKey] | None = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns = list(columns)
        self._index_of = {column.name: i for i, column in enumerate(columns)}
        if len(self._index_of) != len(columns):
            raise SchemaError(f"duplicate column names in table {name!r}")
        if primary_key is not None and primary_key not in self._index_of:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of {name!r}"
            )
        self.primary_key = primary_key
        self.foreign_keys = list(foreign_keys or [])
        for fk in self.foreign_keys:
            if fk.column not in self._index_of:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {name!r}"
                )

    def without_primary_key(self) -> "TableSchema":
        """A copy of this schema with no primary key.

        Used wherever one logical table is split across several stored
        tables (range partitions, fact shards): the fragments share one
        key space, so per-fragment PK indexes would be misleading.
        Returns self when there is no primary key to strip.
        """
        if self.primary_key is None:
            return self
        return TableSchema(
            self.name,
            self.columns,
            primary_key=None,
            foreign_keys=self.foreign_keys,
        )

    def column_index(self, column_name: str) -> int:
        """Return the position of ``column_name`` in a row tuple."""
        try:
            return self._index_of[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def has_column(self, column_name: str) -> bool:
        """Return True iff this table defines ``column_name``."""
        return column_name in self._index_of

    def column(self, column_name: str) -> Column:
        """Return the :class:`Column` named ``column_name``."""
        return self.columns[self.column_index(column_name)]

    def column_names(self) -> list[str]:
        """Return column names in storage order."""
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def validate_row(self, row: tuple) -> None:
        """Check arity and value types of ``row`` against this schema.

        Raises:
            SchemaError: on arity or type mismatch.  ``None`` is allowed
                in any column (SQL NULL).
        """
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} != {self.arity} for table {self.name!r}"
            )
        for value, column in zip(row, self.columns):
            if value is None:
                continue
            expected = column.dtype.python_type()
            if expected is float and isinstance(value, int):
                continue  # ints are acceptable floats
            if not isinstance(value, expected):
                raise SchemaError(
                    f"column {self.name}.{column.name} expects "
                    f"{expected.__name__}, got {type(value).__name__}"
                )

    def foreign_key_to(self, dimension_name: str) -> ForeignKey:
        """Return the foreign key referencing ``dimension_name``.

        Raises:
            SchemaError: if no (or more than one) such key exists.
        """
        matches = [
            fk for fk in self.foreign_keys if fk.referenced_table == dimension_name
        ]
        if not matches:
            raise SchemaError(
                f"table {self.name!r} has no foreign key to {dimension_name!r}"
            )
        if len(matches) > 1:
            raise SchemaError(
                f"table {self.name!r} has multiple foreign keys to "
                f"{dimension_name!r}; name the column explicitly"
            )
        return matches[0]

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"


@dataclass
class StarSchema:
    """A fact table plus the dimension tables it references.

    The constructor checks the star topology: every dimension must be
    reachable from the fact table through exactly the declared foreign
    keys, and every foreign key must land on the dimension's primary key
    (the paper's key/foreign-key equi-join requirement).
    """

    fact: TableSchema
    dimensions: dict[str, TableSchema] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, dimension in self.dimensions.items():
            if name != dimension.name:
                raise SchemaError(
                    f"dimension registered as {name!r} but named {dimension.name!r}"
                )
            if dimension.primary_key is None:
                raise SchemaError(
                    f"dimension {name!r} must declare a primary key"
                )
            fk = self.fact.foreign_key_to(name)
            if fk.referenced_column != dimension.primary_key:
                raise SchemaError(
                    f"foreign key {self.fact.name}.{fk.column} must reference "
                    f"the primary key of {name!r}"
                )

    def dimension(self, name: str) -> TableSchema:
        """Return the dimension schema named ``name``."""
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(
                f"star schema on {self.fact.name!r} has no dimension {name!r}"
            ) from None

    def dimension_names(self) -> list[str]:
        """Return dimension names in registration order."""
        return list(self.dimensions)

    def fact_fk_index(self, dimension_name: str) -> int:
        """Return the fact-row position of the FK column to a dimension."""
        fk = self.fact.foreign_key_to(dimension_name)
        return self.fact.column_index(fk.column)

    def table(self, name: str) -> TableSchema:
        """Return the fact or dimension schema named ``name``."""
        if name == self.fact.name:
            return self.fact
        return self.dimension(name)

    def owner_of_column(self, column_name: str) -> TableSchema:
        """Resolve an unqualified column name to its owning table.

        Raises:
            SchemaError: if the name is missing or ambiguous.
        """
        owners = [
            table
            for table in [self.fact, *self.dimensions.values()]
            if table.has_column(column_name)
        ]
        if not owners:
            raise SchemaError(f"no table defines column {column_name!r}")
        if len(owners) > 1:
            names = ", ".join(table.name for table in owners)
            raise SchemaError(
                f"column {column_name!r} is ambiguous (defined by {names})"
            )
        return owners[0]


@dataclass
class GalaxySchema:
    """Several star schemas whose fact tables may join to each other.

    Section 5 of the paper ("Galaxy Schemata"): a query joining two fact
    tables is split at the fact-to-fact join into two star sub-queries,
    each evaluated by the CJOIN operator of its own star.
    """

    stars: dict[str, StarSchema] = field(default_factory=dict)
    fact_links: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, star in self.stars.items():
            if name != star.fact.name:
                raise SchemaError(
                    f"star registered as {name!r} but its fact is {star.fact.name!r}"
                )
        fact_names = set(self.stars)
        for link in self.fact_links:
            if link.referenced_table not in fact_names:
                raise SchemaError(
                    f"fact link references unknown fact table "
                    f"{link.referenced_table!r}"
                )

    def star(self, fact_name: str) -> StarSchema:
        """Return the star schema centered on ``fact_name``."""
        try:
            return self.stars[fact_name]
        except KeyError:
            raise SchemaError(f"galaxy has no star on {fact_name!r}") from None
