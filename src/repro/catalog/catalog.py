"""A registry mapping schema objects to their stored tables.

The :class:`Catalog` is the handle shared by the query engines: it
resolves table names to :class:`~repro.storage.table.Table` instances
and exposes the star/galaxy topology registered by the warehouse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.catalog.schema import GalaxySchema, StarSchema, TableSchema
from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.table import Table


class Catalog:
    """Name -> table registry plus star/galaxy schema bookkeeping."""

    def __init__(self) -> None:
        self._tables: dict[str, "Table"] = {}
        self._stars: dict[str, StarSchema] = {}
        self._galaxy: GalaxySchema | None = None
        self._dimension_views: list = []

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def register_table(self, table: "Table") -> None:
        """Add ``table`` to the catalog.

        Raises:
            SchemaError: if a table of the same name is already present.
        """
        name = table.schema.name
        if name in self._tables:
            raise SchemaError(f"table {name!r} is already registered")
        self._tables[name] = table

    def table(self, name: str) -> "Table":
        """Return the stored table named ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"catalog has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Return True iff a table named ``name`` is registered."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Return registered table names in registration order."""
        return list(self._tables)

    def schema(self, name: str) -> TableSchema:
        """Return the schema of the stored table named ``name``."""
        return self.table(name).schema

    # ------------------------------------------------------------------
    # Star / galaxy topology
    # ------------------------------------------------------------------
    def register_star(self, star: StarSchema) -> None:
        """Register a star schema; all member tables must exist already."""
        for table_name in [star.fact.name, *star.dimension_names()]:
            if table_name not in self._tables:
                raise SchemaError(
                    f"star schema references unregistered table {table_name!r}"
                )
        self._stars[star.fact.name] = star

    def star(self, fact_name: str) -> StarSchema:
        """Return the star schema centered on fact table ``fact_name``."""
        try:
            return self._stars[fact_name]
        except KeyError:
            raise SchemaError(
                f"no star schema registered on fact table {fact_name!r}"
            ) from None

    def star_names(self) -> list[str]:
        """Return the fact-table names of all registered stars."""
        return list(self._stars)

    def register_galaxy(self, galaxy: GalaxySchema) -> None:
        """Register a galaxy schema over already-registered stars."""
        for fact_name in galaxy.stars:
            if fact_name not in self._stars:
                raise SchemaError(
                    f"galaxy references unregistered star {fact_name!r}"
                )
        self._galaxy = galaxy

    @property
    def galaxy(self) -> GalaxySchema:
        """Return the registered galaxy schema.

        Raises:
            SchemaError: if none was registered.
        """
        if self._galaxy is None:
            raise SchemaError("no galaxy schema registered")
        return self._galaxy

    # ------------------------------------------------------------------
    # Dimension materialized views (paper section 5)
    # ------------------------------------------------------------------
    def register_dimension_view(self, view) -> None:
        """Register a :class:`~repro.storage.matview.DimensionView`.

        Raises:
            SchemaError: if the underlying dimension is unknown or a
                view of the same name exists.
        """
        if view.dimension_name not in self._tables:
            raise SchemaError(
                f"view {view.name!r} references unregistered table "
                f"{view.dimension_name!r}"
            )
        if any(v.name == view.name for v in self._dimension_views):
            raise SchemaError(f"view {view.name!r} is already registered")
        self._dimension_views.append(view)

    def find_dimension_view(self, dimension_name: str, predicate):
        """The first view answering ``predicate`` on a dimension, or None."""
        for view in self._dimension_views:
            if view.matches(dimension_name, predicate):
                return view
        return None

    def dimension_view_names(self) -> list[str]:
        """Registered view names, in registration order."""
        return [view.name for view in self._dimension_views]
