"""Schema catalog: tables, columns, foreign keys, star/galaxy topologies."""

from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    GalaxySchema,
    StarSchema,
    TableSchema,
)
from repro.catalog.catalog import Catalog

__all__ = [
    "Catalog",
    "Column",
    "DataType",
    "ForeignKey",
    "GalaxySchema",
    "StarSchema",
    "TableSchema",
]
