"""ASCII charts for experiment results.

`python -m repro.bench --chart` renders each figure's measured series
as a terminal plot, which makes the shapes (crossovers, peaks, flat
lines) directly visible next to the numeric tables.
"""

from __future__ import annotations

import math

from repro.bench.experiments import ExperimentResult

#: glyph per series, cycled in order
GLYPHS = "ox+*#@"


def render_chart(
    result: ExperimentResult,
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render the measured series of ``result`` as an ASCII chart.

    X positions use the rank of each x value (the sweeps are small and
    often logarithmic); Y is linear unless ``log_y``.
    """
    series = {
        name: [(x, value) for x, value in points if value is not None]
        for name, points in result.measured.items()
    }
    series = {name: points for name, points in series.items() if points}
    if not series:
        return f"{result.title}\n(no plottable series)"
    xs: list = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort(key=lambda value: (isinstance(value, str), value))
    values = [value for points in series.values() for _, value in points]
    top = max(values)
    bottom = min(values)
    if log_y:
        transform = lambda v: math.log10(max(v, 1e-9))  # noqa: E731
        top, bottom = transform(top), transform(bottom)
    else:
        transform = lambda v: v  # noqa: E731
    if top == bottom:
        top = bottom + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, points) in enumerate(series.items()):
        glyph = GLYPHS[series_index % len(GLYPHS)]
        for x, value in points:
            column = round(
                xs.index(x) / max(len(xs) - 1, 1) * (width - 1)
            )
            row = round(
                (transform(value) - bottom) / (top - bottom) * (height - 1)
            )
            grid[height - 1 - row][column] = glyph

    lines = [result.title]
    scale = " (log y)" if log_y else ""
    lines.append(
        f"y: {bottom if not log_y else 10 ** bottom:.3g} .. "
        f"{top if not log_y else 10 ** top:.3g}{scale}"
    )
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(f"x: {result.x_label}: {', '.join(str(x) for x in xs)}")
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
