"""Experiment harness: regenerates every table and figure of section 6.

Each experiment id (fig4..fig8, tab1..tab3) has a runner in
:mod:`repro.bench.experiments` producing the same rows/series the
paper reports, next to the digitized paper values from
:mod:`repro.bench.paper_data` for side-by-side comparison.
``benchmarks/`` wraps each runner in a pytest-benchmark target.
"""

from repro.bench.experiments import (
    EXPERIMENTS,
    run_experiment,
)
from repro.bench.reporting import format_comparison, format_series

__all__ = [
    "EXPERIMENTS",
    "format_comparison",
    "format_series",
    "run_experiment",
]
