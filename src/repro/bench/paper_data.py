"""Digitized values from the paper's evaluation section.

Tables 1-3 are printed verbatim in the paper; figure series are
digitized from the plots (approximate) or reconstructed from claims in
the running text (marked accordingly).  These are the ground truth the
benchmark harness compares against — with the standing caveat that the
reproduction asserts *shapes*, not absolute seconds (the assertion
policy is spelled out in EXPERIMENTS.md section 1).
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Table 1 — influence of concurrency on query submission time (s=1%,
# sf=100, template Q4.2); verbatim from the paper.
# ----------------------------------------------------------------------
TABLE1_CONCURRENCY = (32, 64, 128, 256)
TABLE1_SUBMISSION_SECONDS = (2.4, 2.4, 2.4, 2.3)
TABLE1_RESPONSE_SECONDS = (724.8, 723.1, 759.0, 861.2)

# ----------------------------------------------------------------------
# Table 2 — influence of predicate selectivity on submission time
# (n=128, sf=100); verbatim.
# ----------------------------------------------------------------------
TABLE2_SELECTIVITY = (0.001, 0.01, 0.1)
TABLE2_SUBMISSION_SECONDS = (1.6, 2.4, 11.6)
TABLE2_RESPONSE_SECONDS = (707.2, 759.0, 3418.0)

# ----------------------------------------------------------------------
# Table 3 — influence of data scale on submission overhead (s=1%,
# n=128); verbatim.
# ----------------------------------------------------------------------
TABLE3_SCALE_FACTOR = (1, 10, 100)
TABLE3_SUBMISSION_SECONDS = (0.4, 0.7, 2.4)
TABLE3_RESPONSE_SECONDS = (18.8, 105.1, 759.0)

# ----------------------------------------------------------------------
# Figure 4 — pipeline configuration (digitized, queries/hour).
# Horizontal config scales with threads; vertical stays flat.
# ----------------------------------------------------------------------
FIG4_THREADS = (1, 2, 3, 4, 5)
FIG4_HORIZONTAL_QPH = (260, 500, 740, 950, 1100)
FIG4_VERTICAL_QPH = (None, None, None, 420, 430)  # needs >= 4 threads

# ----------------------------------------------------------------------
# Figure 5 — throughput vs concurrency (sf=100, s=1%; digitized).
# ----------------------------------------------------------------------
FIG5_CONCURRENCY = (1, 32, 64, 128, 192, 256)
FIG5_CJOIN_QPH = (6, 180, 360, 700, 1000, 1400)
FIG5_SYSTEM_X_QPH = (4, 110, 105, 95, 80, 70)
FIG5_POSTGRESQL_QPH = (3, 70, 60, 45, 35, 30)

# ----------------------------------------------------------------------
# Figure 6 — Q4.2 response time vs concurrency (seconds; growth
# factors are verbatim from the text: CJOIN < 1.30x, X 19x, PG 66x).
# ----------------------------------------------------------------------
FIG6_CONCURRENCY = (1, 32, 64, 128, 192, 256)
FIG6_CJOIN_SECONDS = (660, 725, 723, 759, 800, 861)
FIG6_SYSTEM_X_SECONDS = (1300, 5000, 9000, 14000, 20000, 24700)
FIG6_POSTGRESQL_SECONDS = (455, 4500, 9500, 16000, 23000, 30000)
FIG6_GROWTH_CJOIN_MAX = 1.30
FIG6_GROWTH_SYSTEM_X = 19.0
FIG6_GROWTH_POSTGRESQL = 66.0

# ----------------------------------------------------------------------
# Figure 7 — throughput vs predicate selectivity (n=128, sf=100;
# digitized).  PostgreSQL's s=10% run was terminated by the authors.
# ----------------------------------------------------------------------
FIG7_SELECTIVITY = (0.001, 0.01, 0.1)
FIG7_CJOIN_QPH = (1050, 800, 210)
FIG7_SYSTEM_X_QPH = (160, 110, 45)
FIG7_POSTGRESQL_QPH = (60, 45, None)

# ----------------------------------------------------------------------
# Figure 8 — normalized throughput (queries/hour x sf, plotted as
# x10,000) vs scale factor (n=128, s=1%; digitized + text claims:
# CJOIN delivers 85% of X at sf=1, 6x X at sf=100; 2x PG at sf=1,
# 28x PG at sf=100).
# ----------------------------------------------------------------------
FIG8_SCALE_FACTOR = (1, 10, 30, 100)
FIG8_CJOIN_NORMALIZED = (2.0, 5.0, 8.0, 11.0)
FIG8_SYSTEM_X_NORMALIZED = (2.4, 1.6, 1.8, 1.8)
FIG8_POSTGRESQL_NORMALIZED = (1.0, 0.5, 0.4, 0.4)
FIG8_RATIO_X_SF1 = 0.85
FIG8_RATIO_X_SF100 = 6.0
FIG8_RATIO_PG_SF1 = 2.0
FIG8_RATIO_PG_SF100 = 28.0

# ----------------------------------------------------------------------
# Headline claims (abstract / section 6.2.2)
# ----------------------------------------------------------------------
CLAIM_SPEEDUP_AT_256_MIN = 10.0    # "a factor of 10 to 100"
CLAIM_SPEEDUP_AT_32_MAX = 5.0      # "up to 5x" at 32 queries
CLAIM_RESPONSE_GROWTH_MAX = 1.30   # CJOIN, 1 -> 256 queries
