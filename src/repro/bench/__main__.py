"""Command-line experiment runner.

Usage::

    python -m repro.bench                    # run all experiments
    python -m repro.bench fig5 tab2          # run selected ones
    python -m repro.bench --chart fig5 fig6  # add ASCII charts
    python -m repro.bench --chart --log fig6 # log-scale y axis

Prints each experiment's paper-vs-measured series plus its shape
checks; exits non-zero if any check fails.
"""

from __future__ import annotations

import sys

from repro.bench.charts import render_chart
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_comparison


def main(argv: list[str]) -> int:
    show_chart = "--chart" in argv
    log_y = "--log" in argv
    requested = [arg for arg in argv if not arg.startswith("--")]
    requested = requested or sorted(EXPERIMENTS)
    unknown = [eid for eid in requested if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    all_passed = True
    for experiment_id in requested:
        result = run_experiment(experiment_id)
        print(format_comparison(result))
        if show_chart:
            print()
            print(render_chart(result, log_y=log_y))
        print()
        all_passed = all_passed and result.all_checks_pass
    if not all_passed:
        print("SOME SHAPE CHECKS FAILED")
        return 1
    print(f"all shape checks passed across {len(requested)} experiment(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
