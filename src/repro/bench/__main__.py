"""Command-line experiment runner.

Usage::

    python -m repro.bench                    # run all experiments
    python -m repro.bench fig5 tab2          # run selected ones
    python -m repro.bench --chart fig5 fig6  # add ASCII charts
    python -m repro.bench --chart --log fig6 # log-scale y axis
    python -m repro.bench --smoke            # fast CI gate
    python -m repro.bench --profile          # cProfile a real drain

Prints each experiment's paper-vs-measured series plus its shape
checks; exits non-zero if any check fails.

``--smoke`` is the fast mode wired into the test suite (see
EXPERIMENTS.md): it runs every model-backed experiment's shape checks
without charts *plus* a real-pipeline sanity pass — a milli-scale SSB
workload executed through both the tuple-at-a-time and the batched
CJOIN paths, asserting identical results — in a couple of seconds.

``--profile`` is the hot-path measurement hook: it drains the kernel
bench's workload shape (32 concurrent queries, 1% selectivity) under
cProfile — profiling only ``run_until_drained``, so admission and
data generation stay out of the numbers — and prints drain time
grouped by pipeline stage plus the top functions by cumulative time.
Start here before touching the hot path (DESIGN.md section 14).
"""

from __future__ import annotations

import sys

from repro.bench.charts import render_chart
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_comparison


def run_smoke_pipeline() -> bool:
    """Real-execution sanity pass: tuple and batched paths agree.

    Returns True on success.  Deliberately tiny (milli-scale SSB,
    eight queries) so the smoke gate stays fast.
    """
    from repro.cjoin import CJoinOperator
    from repro.cjoin.executor import ExecutorConfig
    from repro.ssb.generator import load_ssb
    from repro.ssb.queries import ssb_workload_generator

    catalog, star = load_ssb(scale_factor=0.0005, seed=7)
    queries = ssb_workload_generator(seed=3, catalog=catalog).generate(
        8, selectivity=0.1
    )
    results = {}
    for execution in ("tuple", "batched"):
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(execution=execution),
        )
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        results[execution] = [handle.results() for handle in handles]
    matched = results["tuple"] == results["batched"]
    rows = sum(len(result) for result in results["tuple"])
    status = "ok" if matched else "MISMATCH"
    print(
        f"pipeline smoke: 8 queries, tuple vs batched execution -> "
        f"{status} ({rows} result rows)"
    )
    return matched


#: pipeline-stage buckets for the --profile breakdown: module basename
#: of each stage of the shared scan, in pipeline order
PROFILE_STAGES = (
    ("preprocessor", "Preprocessor (scan + batch build)"),
    ("filter", "Filter chain (probe + bit AND)"),
    ("kernels", "Batch kernels"),
    ("distributor", "Distributor (route + decode)"),
    ("aggregation", "Output operators (aggregate rows)"),
    ("batch", "FactBatch bookkeeping"),
    ("dimtable", "Dimension hash tables"),
)


def run_profile(top: int = 20) -> int:
    """Profile one batched drain of the kernel bench's workload shape.

    Only ``run_until_drained`` runs under the profiler — submissions
    (dimension scans, query registration) happen first, unprofiled, so
    the report shows exactly the steady-state scan cost that
    benchmarks/bench_kernel_cost.py measures.
    """
    import cProfile
    import pstats

    from repro.cjoin import CJoinOperator
    from repro.cjoin.executor import ExecutorConfig
    from repro.ssb.generator import load_ssb
    from repro.ssb.queries import ssb_workload_generator

    catalog, star = load_ssb(scale_factor=0.005, seed=23)
    queries = ssb_workload_generator(seed=4, catalog=catalog).generate(
        32, selectivity=0.01
    )
    operator = CJoinOperator(
        catalog,
        star,
        executor_config=ExecutorConfig(execution="batched", batch_size=512),
    )
    handles = [operator.submit(query) for query in queries]
    profiler = cProfile.Profile()
    profiler.enable()
    operator.run_until_drained()
    profiler.disable()
    for handle in handles:
        handle.results()

    stats = pstats.Stats(profiler)
    total = stats.total_tt
    tuples = operator.stats.tuples_scanned
    print(
        f"profiled drain: 32 queries, s=1%, sf=0.005, batch_size=512 -> "
        f"{total * 1e3:.1f} ms, {tuples} tuples scanned "
        f"({total / tuples * 1e9:.0f} ns/tuple)"
    )
    print("\nper-stage breakdown (own time, summed over stage module):")
    accounted = 0.0
    by_module: dict[str, float] = {}
    for (filename, _line, _name), stat in stats.stats.items():
        module = filename.rsplit("/", 1)[-1].removesuffix(".py")
        by_module[module] = by_module.get(module, 0.0) + stat[2]
    for module, label in PROFILE_STAGES:
        seconds = by_module.get(module, 0.0)
        accounted += seconds
        share = seconds / total * 100 if total else 0.0
        print(f"  {label:<42} {seconds * 1e3:8.1f} ms  {share:5.1f}%")
    other = total - accounted
    print(
        f"  {'everything else (builtins, executor, ...)':<42} "
        f"{other * 1e3:8.1f} ms  "
        f"{other / total * 100 if total else 0.0:5.1f}%"
    )
    print(f"\ntop {top} functions by cumulative time:")
    stats.sort_stats("cumulative").print_stats(top)
    return 0


def main(argv: list[str]) -> int:
    show_chart = "--chart" in argv
    log_y = "--log" in argv
    smoke = "--smoke" in argv
    if "--profile" in argv:
        return run_profile()
    requested = [arg for arg in argv if not arg.startswith("--")]
    requested = requested or sorted(EXPERIMENTS)
    unknown = [eid for eid in requested if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    all_passed = True
    for experiment_id in requested:
        result = run_experiment(experiment_id)
        if smoke:
            failed = [d for d, passed in result.checks if not passed]
            status = "ok" if not failed else f"FAILED {failed}"
            print(f"{experiment_id}: {status}")
            all_passed = all_passed and not failed
            continue
        print(format_comparison(result))
        if show_chart:
            print()
            print(render_chart(result, log_y=log_y))
        print()
        all_passed = all_passed and result.all_checks_pass
    if smoke:
        all_passed = run_smoke_pipeline() and all_passed
    if not all_passed:
        print("SOME SHAPE CHECKS FAILED")
        return 1
    print(f"all shape checks passed across {len(requested)} experiment(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
