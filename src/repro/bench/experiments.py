"""Runners for every table and figure of the paper's section 6.

Each runner returns an :class:`ExperimentResult`: named series of
(x, value) points for ours and for the paper's digitized data, plus
the shape assertions that must hold for the reproduction to count.
Absolute values are modeled (see DESIGN.md section 4); assertions
therefore check orderings, monotonicity, growth factors, and
crossovers (the EXPERIMENTS.md section 1 policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import paper_data
from repro.errors import BenchmarkError
from repro.sim.baseline_model import BaselinePerfModel, SystemProfile
from repro.sim.cjoin_model import CJoinPerfModel, StageLayout
from repro.sim.concurrency import ClosedLoopSimulator
from repro.sim.costs import WorkloadShape

#: operating point shared by most experiments (the paper's defaults)
DEFAULT_SF = 100
DEFAULT_SELECTIVITY = 0.01
DEFAULT_CONCURRENCY = 128


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    title: str
    x_label: str
    #: series name -> list of (x, measured value); None = not runnable
    measured: dict[str, list[tuple[object, float | None]]]
    #: series name -> list of (x, paper value); None = not reported
    paper: dict[str, list[tuple[object, float | None]]]
    #: human-readable shape checks with pass/fail
    checks: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        """True when every shape assertion held."""
        return all(passed for _, passed in self.checks)

    def check(self, description: str, passed: bool) -> None:
        """Record one shape assertion."""
        self.checks.append((description, bool(passed)))


def _models() -> tuple[CJoinPerfModel, BaselinePerfModel, BaselinePerfModel]:
    return (
        CJoinPerfModel(),
        BaselinePerfModel(SystemProfile.system_x()),
        BaselinePerfModel(SystemProfile.postgresql()),
    )


# ----------------------------------------------------------------------
# Figure 4 — pipeline configuration
# ----------------------------------------------------------------------
def run_fig4() -> ExperimentResult:
    """Horizontal vs vertical thread mapping (section 6.2.1).

    A hybrid (two filters per stage) series is included as the ablation
    DESIGN.md section 4 calls out; the paper discusses but does not
    plot it.
    """
    cjoin, _, _ = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    horizontal = []
    vertical = []
    hybrid = []
    for threads in paper_data.FIG4_THREADS:
        horizontal.append(
            (
                threads,
                cjoin.throughput_qph(
                    shape,
                    DEFAULT_CONCURRENCY,
                    DEFAULT_SELECTIVITY,
                    StageLayout.horizontal(threads),
                ),
            )
        )
        if threads >= cjoin.filter_count:
            vertical.append(
                (
                    threads,
                    cjoin.throughput_qph(
                        shape,
                        DEFAULT_CONCURRENCY,
                        DEFAULT_SELECTIVITY,
                        StageLayout.vertical(threads, cjoin.filter_count),
                    ),
                )
            )
        else:
            vertical.append((threads, None))
        if threads >= 2:
            hybrid.append(
                (
                    threads,
                    cjoin.throughput_qph(
                        shape,
                        DEFAULT_CONCURRENCY,
                        DEFAULT_SELECTIVITY,
                        StageLayout.hybrid(threads, (2, 2)),
                    ),
                )
            )
        else:
            hybrid.append((threads, None))
    result = ExperimentResult(
        "fig4",
        "Figure 4: effect of pipeline configuration on throughput",
        "stage threads",
        measured={
            "horizontal": horizontal,
            "vertical": vertical,
            "hybrid_2x2": hybrid,
        },
        paper={
            "horizontal": list(
                zip(paper_data.FIG4_THREADS, paper_data.FIG4_HORIZONTAL_QPH)
            ),
            "vertical": list(
                zip(paper_data.FIG4_THREADS, paper_data.FIG4_VERTICAL_QPH)
            ),
        },
    )
    h = dict(horizontal)
    v = dict(vertical)
    y = dict(hybrid)
    result.check(
        "horizontal with >1 thread beats vertical at equal threads",
        all(h[t] > v[t] for t in (4, 5)),
    )
    result.check(
        "horizontal throughput scales with threads",
        all(h[a] < h[b] for a, b in zip((1, 2, 3, 4), (2, 3, 4, 5))),
    )
    result.check(
        "vertical gains little from its fifth thread",
        v[5] < v[4] * 1.25,
    )
    result.check(
        "hybrid sits between vertical and horizontal at 4-5 threads",
        all(v[t] <= y[t] <= h[t] for t in (4, 5)),
    )
    return result


# ----------------------------------------------------------------------
# Figure 5 — throughput scale-up with concurrency
# ----------------------------------------------------------------------
def run_fig5() -> ExperimentResult:
    """Query throughput vs number of concurrent queries (section 6.2.2)."""
    cjoin, system_x, postgresql = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    xs = paper_data.FIG5_CONCURRENCY
    series = {
        "cjoin": [
            (n, cjoin.throughput_qph(shape, n, DEFAULT_SELECTIVITY)) for n in xs
        ],
        "system_x": [
            (n, system_x.throughput_qph(shape, n, DEFAULT_SELECTIVITY))
            for n in xs
        ],
        "postgresql": [
            (n, postgresql.throughput_qph(shape, n, DEFAULT_SELECTIVITY))
            for n in xs
        ],
    }
    result = ExperimentResult(
        "fig5",
        "Figure 5: query throughput scale-up with number of queries",
        "concurrent queries (n)",
        measured=series,
        paper={
            "cjoin": list(zip(xs, paper_data.FIG5_CJOIN_QPH)),
            "system_x": list(zip(xs, paper_data.FIG5_SYSTEM_X_QPH)),
            "postgresql": list(zip(xs, paper_data.FIG5_POSTGRESQL_QPH)),
        },
    )
    cj = dict(series["cjoin"])
    sx = dict(series["system_x"])
    pg = dict(series["postgresql"])
    result.check(
        "CJOIN outperforms both systems for n >= 32",
        all(cj[n] > sx[n] and cj[n] > pg[n] for n in xs if n >= 32),
    )
    result.check(
        "CJOIN reaches an order of magnitude over both at n=256",
        cj[256] >= paper_data.CLAIM_SPEEDUP_AT_256_MIN * max(sx[256], pg[256]),
    )
    result.check(
        "CJOIN advantage at n=32 is around 5x or less",
        cj[32] / max(sx[32], pg[32])
        <= paper_data.CLAIM_SPEEDUP_AT_32_MAX * 1.5,
    )
    result.check(
        "CJOIN scales linearly up to n=128 (within 10%)",
        abs(cj[128] / cj[1] - 128) / 128 < 0.10,
    )
    result.check(
        "CJOIN 128 -> 256 scale-up is sub-linear",
        cj[256] / cj[128] < 2.0,
    )
    result.check(
        "System X and PostgreSQL throughput decreases past n=32",
        sx[256] < sx[32] and pg[256] < pg[32],
    )
    return result


# ----------------------------------------------------------------------
# Figure 6 — predictability of response time
# ----------------------------------------------------------------------
def run_fig6() -> ExperimentResult:
    """Q4.2 response time vs concurrency (section 6.2.2)."""
    cjoin, system_x, postgresql = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    xs = paper_data.FIG6_CONCURRENCY
    simulator = ClosedLoopSimulator(cjoin, shape, DEFAULT_SELECTIVITY)
    cjoin_points = []
    stdev_ratio = 0.0
    for n in xs:
        records = simulator.run(n, total_queries=max(2 * n, 64), measure_from=n)
        mean = simulator.mean_response(records)
        stdev_ratio = max(
            stdev_ratio, simulator.stdev_response(records) / mean
        )
        cjoin_points.append((n, mean))
    series = {
        "cjoin": cjoin_points,
        "system_x": [
            (n, system_x.response_seconds(shape, n, DEFAULT_SELECTIVITY))
            for n in xs
        ],
        "postgresql": [
            (n, postgresql.response_seconds(shape, n, DEFAULT_SELECTIVITY))
            for n in xs
        ],
    }
    result = ExperimentResult(
        "fig6",
        "Figure 6: predictability of query response time (template Q4.2)",
        "concurrent queries (n)",
        measured=series,
        paper={
            "cjoin": list(zip(xs, paper_data.FIG6_CJOIN_SECONDS)),
            "system_x": list(zip(xs, paper_data.FIG6_SYSTEM_X_SECONDS)),
            "postgresql": list(zip(xs, paper_data.FIG6_POSTGRESQL_SECONDS)),
        },
    )
    cj = dict(series["cjoin"])
    sx = dict(series["system_x"])
    pg = dict(series["postgresql"])
    result.check(
        "CJOIN response grows < 30% from n=1 to n=256",
        cj[256] / cj[1] <= paper_data.FIG6_GROWTH_CJOIN_MAX,
    )
    result.check(
        "System X degrades by an order of magnitude (paper: 19x)",
        10.0 <= sx[256] / sx[1] <= 40.0,
    )
    result.check(
        "PostgreSQL degrades by roughly two orders (paper: 66x)",
        30.0 <= pg[256] / pg[1] <= 130.0,
    )
    result.check(
        "CJOIN response-time deviation stays within ~0.5% of the mean",
        stdev_ratio <= 0.01,
    )
    return result


# ----------------------------------------------------------------------
# Table 1 — submission time vs concurrency
# ----------------------------------------------------------------------
def run_tab1() -> ExperimentResult:
    """Query submission overhead vs n (section 6.2.2, Table 1)."""
    cjoin, _, _ = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    xs = paper_data.TABLE1_CONCURRENCY
    submission = [
        (n, cjoin.submission_seconds(shape, DEFAULT_SELECTIVITY)) for n in xs
    ]
    response = [
        (n, cjoin.response_seconds(shape, n, DEFAULT_SELECTIVITY)) for n in xs
    ]
    result = ExperimentResult(
        "tab1",
        "Table 1: influence of concurrency on query submission time",
        "concurrent queries (n)",
        measured={"submission_s": submission, "response_s": response},
        paper={
            "submission_s": list(
                zip(xs, paper_data.TABLE1_SUBMISSION_SECONDS)
            ),
            "response_s": list(zip(xs, paper_data.TABLE1_RESPONSE_SECONDS)),
        },
    )
    values = [value for _, value in submission]
    result.check(
        "submission time does not depend on n",
        max(values) - min(values) < 1e-9,
    )
    result.check(
        "submission time is negligible vs response time (< 2%)",
        all(
            sub / resp < 0.02
            for (_, sub), (_, resp) in zip(submission, response)
        ),
    )
    result.check(
        "submission time within 50% of the paper's 2.4s",
        abs(values[0] - 2.4) / 2.4 < 0.5,
    )
    return result


# ----------------------------------------------------------------------
# Figure 7 — influence of predicate selectivity
# ----------------------------------------------------------------------
def run_fig7() -> ExperimentResult:
    """Throughput vs selectivity s (section 6.2.3)."""
    cjoin, system_x, postgresql = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    xs = paper_data.FIG7_SELECTIVITY
    n = DEFAULT_CONCURRENCY

    def pg_throughput(s: float) -> float | None:
        # the paper terminated PostgreSQL's s=10% run; we report the
        # modeled number only when the system is not thrashing hopelessly
        if postgresql.memory_overcommit(shape, n, s) > 1.0:
            return None
        return postgresql.throughput_qph(shape, n, s)

    series = {
        "cjoin": [(s, cjoin.throughput_qph(shape, n, s)) for s in xs],
        "system_x": [(s, system_x.throughput_qph(shape, n, s)) for s in xs],
        "postgresql": [(s, pg_throughput(s)) for s in xs],
    }
    result = ExperimentResult(
        "fig7",
        "Figure 7: influence of query selectivity on throughput",
        "predicate selectivity s",
        measured=series,
        paper={
            "cjoin": list(zip(xs, paper_data.FIG7_CJOIN_QPH)),
            "system_x": list(zip(xs, paper_data.FIG7_SYSTEM_X_QPH)),
            "postgresql": list(zip(xs, paper_data.FIG7_POSTGRESQL_QPH)),
        },
    )
    cj = dict(series["cjoin"])
    sx = dict(series["system_x"])
    result.check(
        "CJOIN outperforms System X at every selectivity",
        all(cj[s] > sx[s] for s in xs),
    )
    result.check(
        "throughput decreases with s for CJOIN and System X",
        cj[0.001] >= cj[0.01] > cj[0.1] and sx[0.001] >= sx[0.01] > sx[0.1],
    )
    result.check(
        "the CJOIN advantage narrows at s=10%",
        cj[0.1] / sx[0.1] < cj[0.01] / sx[0.01],
    )
    return result


# ----------------------------------------------------------------------
# Table 2 — submission time vs selectivity
# ----------------------------------------------------------------------
def run_tab2() -> ExperimentResult:
    """Submission overhead vs selectivity (section 6.2.3, Table 2)."""
    cjoin, _, _ = _models()
    shape = WorkloadShape.from_scale_factor(DEFAULT_SF)
    xs = paper_data.TABLE2_SELECTIVITY
    submission = [(s, cjoin.submission_seconds(shape, s)) for s in xs]
    response = [
        (s, cjoin.response_seconds(shape, DEFAULT_CONCURRENCY, s)) for s in xs
    ]
    result = ExperimentResult(
        "tab2",
        "Table 2: influence of predicate selectivity on submission time",
        "predicate selectivity s",
        measured={"submission_s": submission, "response_s": response},
        paper={
            "submission_s": list(
                zip(xs, paper_data.TABLE2_SUBMISSION_SECONDS)
            ),
            "response_s": list(zip(xs, paper_data.TABLE2_RESPONSE_SECONDS)),
        },
    )
    sub = dict(submission)
    resp = dict(response)
    result.check(
        "submission grows with s and is dominated by s at 10%",
        sub[0.001] < sub[0.01] < sub[0.1] and sub[0.1] > 3 * sub[0.01],
    )
    result.check(
        "each submission time within 50% of the paper's",
        all(
            abs(sub[s] - p) / p < 0.5
            for s, p in zip(xs, paper_data.TABLE2_SUBMISSION_SECONDS)
        ),
    )
    result.check(
        "response time blows up at s=10% (cache overflow)",
        resp[0.1] > 2.5 * resp[0.01],
    )
    return result


# ----------------------------------------------------------------------
# Figure 8 — influence of data scale
# ----------------------------------------------------------------------
def run_fig8() -> ExperimentResult:
    """Normalized throughput vs scale factor (section 6.2.4)."""
    cjoin, system_x, postgresql = _models()
    xs = paper_data.FIG8_SCALE_FACTOR
    n, s = DEFAULT_CONCURRENCY, DEFAULT_SELECTIVITY

    def normalized(model_throughput, sf: float) -> float:
        shape = WorkloadShape.from_scale_factor(sf)
        return model_throughput(shape, n, s) * sf / 10000.0

    series = {
        "cjoin": [(sf, normalized(cjoin.throughput_qph, sf)) for sf in xs],
        "system_x": [
            (sf, normalized(system_x.throughput_qph, sf)) for sf in xs
        ],
        "postgresql": [
            (sf, normalized(postgresql.throughput_qph, sf)) for sf in xs
        ],
    }
    result = ExperimentResult(
        "fig8",
        "Figure 8: influence of data scale on normalized throughput",
        "scale factor (sf)",
        measured=series,
        paper={
            "cjoin": list(zip(xs, paper_data.FIG8_CJOIN_NORMALIZED)),
            "system_x": list(zip(xs, paper_data.FIG8_SYSTEM_X_NORMALIZED)),
            "postgresql": list(
                zip(xs, paper_data.FIG8_POSTGRESQL_NORMALIZED)
            ),
        },
    )
    cj = dict(series["cjoin"])
    sx = dict(series["system_x"])
    pg = dict(series["postgresql"])
    result.check(
        "System X wins at sf=1 (paper: CJOIN delivers ~85% of X)",
        0.5 <= cj[1] / sx[1] <= 1.0,
    )
    result.check(
        "CJOIN outperforms PostgreSQL at every sf (paper: 2x at sf=1)",
        all(cj[sf] > pg[sf] for sf in xs),
    )
    result.check(
        "CJOIN beats System X by a large factor at sf=100 (paper: 6x)",
        cj[100] / sx[100] >= 4.0,
    )
    result.check(
        "CJOIN normalized throughput increases with sf",
        cj[1] < cj[10] <= cj[100],
    )
    result.check(
        "comparators' normalized throughput decreases from sf=1 to 10",
        sx[10] < sx[1] and pg[10] < pg[1],
    )
    return result


# ----------------------------------------------------------------------
# Table 3 — submission overhead vs data scale
# ----------------------------------------------------------------------
def run_tab3() -> ExperimentResult:
    """Submission overhead vs scale factor (section 6.2.4, Table 3)."""
    cjoin, _, _ = _models()
    xs = paper_data.TABLE3_SCALE_FACTOR
    submission = []
    response = []
    for sf in xs:
        shape = WorkloadShape.from_scale_factor(sf)
        submission.append(
            (sf, cjoin.submission_seconds(shape, DEFAULT_SELECTIVITY))
        )
        response.append(
            (
                sf,
                cjoin.response_seconds(
                    shape, DEFAULT_CONCURRENCY, DEFAULT_SELECTIVITY
                ),
            )
        )
    result = ExperimentResult(
        "tab3",
        "Table 3: influence of data scale on query submission overhead",
        "scale factor (sf)",
        measured={"submission_s": submission, "response_s": response},
        paper={
            "submission_s": list(
                zip(xs, paper_data.TABLE3_SUBMISSION_SECONDS)
            ),
            "response_s": list(zip(xs, paper_data.TABLE3_RESPONSE_SECONDS)),
        },
    )
    sub = dict(submission)
    resp = dict(response)
    result.check(
        "submission grows sub-linearly with sf (dims grow slowly)",
        sub[100] / sub[1] < 10.0,
    )
    result.check(
        "submission/response ratio shrinks as sf grows",
        sub[1] / resp[1] > sub[100] / resp[100],
    )
    result.check(
        "each submission time within 50% of the paper's",
        all(
            abs(sub[sf] - p) / p < 0.5
            for sf, p in zip(xs, paper_data.TABLE3_SUBMISSION_SECONDS)
        ),
    )
    return result


#: experiment id -> runner
EXPERIMENTS = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "tab1": run_tab1,
    "tab2": run_tab2,
    "tab3": run_tab3,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id ('fig4'..'fig8', 'tab1'..'tab3')."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner()
