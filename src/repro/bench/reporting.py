"""Plain-text rendering of experiment results.

Every benchmark prints its series through these helpers so the
paper-vs-measured comparison is visible directly in the pytest output
(and gets copied into EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_series(result: ExperimentResult) -> str:
    """Render the measured series as an aligned table."""
    lines = [result.title, f"x = {result.x_label}"]
    names = list(result.measured)
    xs = [x for x, _ in next(iter(result.measured.values()))]
    header = ["x".rjust(10)] + [name.rjust(14) for name in names]
    lines.append(" ".join(header))
    for row_index, x in enumerate(xs):
        cells = [str(x).rjust(10)]
        for name in names:
            cells.append(
                _format_value(result.measured[name][row_index][1]).rjust(14)
            )
        lines.append(" ".join(cells))
    return "\n".join(lines)


def format_comparison(result: ExperimentResult) -> str:
    """Render measured-vs-paper side by side, plus shape checks."""
    lines = [result.title, f"x = {result.x_label}", ""]
    for name, measured_points in result.measured.items():
        paper_points = dict(result.paper.get(name, []))
        lines.append(f"series: {name}")
        lines.append(
            f"  {'x':>10} {'measured':>14} {'paper':>14}"
        )
        for x, measured_value in measured_points:
            lines.append(
                f"  {str(x):>10} {_format_value(measured_value):>14} "
                f"{_format_value(paper_points.get(x)):>14}"
            )
    lines.append("")
    lines.append("shape checks:")
    for description, passed in result.checks:
        status = "PASS" if passed else "FAIL"
        lines.append(f"  [{status}] {description}")
    return "\n".join(lines)
