"""The always-on warehouse service (DESIGN.md section 9).

The paper's operator never stops: the fact scan cycles indefinitely
and queries attach mid-cycle at whatever position the scan happens to
be.  :class:`WarehouseService` is that serving surface.  It owns a
background driver thread that keeps the CJOIN pipeline cycling
(idle-throttled when no query is registered), a bounded FIFO admission
queue in front of the Pipeline Manager, and the per-query latency
telemetry that backs the "predictable" half of the paper's title.

Usage, open-loop::

    service = warehouse.start_service()
    handle = warehouse.submit_sql("SELECT COUNT(*) FROM lineorder, date "
                                  "WHERE lo_orderdate = d_datekey")
    rows = handle.results(timeout=30.0)   # blocks; driver completes it
    print(service.latency_summary())      # p50/p95/p99 end-to-end
    warehouse.stop_service()

Admission protocol: ``submit()`` may be called from any thread at any
moment.  When an in-flight slot is free (fewer than ``max_in_flight``
registered queries) and no earlier submission is waiting, the query is
admitted *inline on the calling thread* through the Pipeline Manager's
stall protocol — ``admit()`` serializes against the driver's item
production on the preprocessor lock, so the scan pauses for exactly
the Algorithm-1 critical sections and nothing else.  Otherwise the
query joins the FIFO queue (bounded by ``admission_queue_depth``;
overflow raises :class:`~repro.errors.AdmissionError`) and the driver
thread admits it as completions free slots.  Either way the caller
immediately holds a :class:`~repro.cjoin.registry.QueryHandle` whose
``results(timeout=...)`` blocks until the continuous scan wraps.

Shutdown protocol: ``stop()`` sets the service's stop event, joins the
driver thread, and (for threaded executors) joins the stage threads.
Admitted-but-unfinished queries stay registered and resume on the next
``start()`` or ``drain()`` — stopping never corrupts pipeline state.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.cjoin.executor import SynchronousExecutor
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.errors import AdmissionError, PipelineError
from repro.query.star import StarQuery
from repro.tuning import (  # noqa: F401  (compatibility re-export)
    DEFAULT_ADMISSION_QUEUE_DEPTH,
    TuningConfig,
    resolve_tuning,
)


class WarehouseService:
    """Long-running serving surface over one CJOIN operator.

    Args:
        operator: the always-on operator to drive.
        tuning: the service's knobs as one validated
            :class:`~repro.tuning.TuningConfig` — ``max_in_flight``
            (bound on concurrently registered queries; None defaults
            to, and any value is capped by, the operator's
            ``maxConc``), ``idle_sleep`` (driver sleep between polls
            while idle), and ``admission_queue_depth`` (bound on
            submissions waiting for a slot; a full queue rejects with
            :class:`~repro.errors.AdmissionError` back-pressure).
            Runtime-mutable through :meth:`reconfigure`.

    The pre-redesign keywords (``max_in_flight``, ``idle_sleep``,
    ``admission_queue_depth``) are still accepted as deprecation shims
    that emit :class:`DeprecationWarning` and map onto ``tuning``.
    """

    def __init__(
        self,
        operator: CJoinOperator,
        tuning: TuningConfig | None = None,
        **deprecated,
    ) -> None:
        tuning = resolve_tuning(
            tuning,
            deprecated,
            allowed=("max_in_flight", "idle_sleep", "admission_queue_depth"),
            where="WarehouseService",
        )
        self.operator = operator
        self._cond = threading.Condition()
        self._apply_tuning(tuning)
        self._queue: deque[tuple[StarQuery, QueryHandle]] = deque()
        self._in_flight = 0
        #: True while the driver admits a submission it popped from the
        #: queue; inline admission must not overtake that query (FIFO)
        self._pumping = False
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._driver_error: BaseException | None = None
        #: optional scan-boundary callback, run on the driving thread
        #: right before each admission pump (so admissions stamped in
        #: the same boundary see its effects).  The warehouse installs
        #: its ingest apply here (DESIGN.md section 15); it fires on
        #: every drive path — background driver, drain(), and pump().
        self.cycle_hook = None

    def _apply_tuning(self, tuning: TuningConfig) -> None:
        """Install a (validated) tuning config under the service lock."""
        max_concurrent = self.operator.manager.allocator.max_concurrent
        requested = (
            tuning.max_in_flight
            if tuning.max_in_flight is not None
            else max_concurrent
        )
        with self._cond:
            self._tuning = tuning
            #: the operator can never register more than maxConc
            #: queries, so a larger request silently clamps rather than
            #: guaranteeing AdmissionError storms from the id allocator
            self.max_in_flight = min(requested, max_concurrent)
            self.idle_sleep = tuning.idle_sleep
            self.admission_queue_depth = tuning.admission_queue_depth
            self._cond.notify_all()

    @property
    def tuning(self) -> TuningConfig:
        """The service's current tuning config (immutable snapshot)."""
        with self._cond:
            return self._tuning

    def reconfigure(self, tuning: TuningConfig) -> None:
        """Apply new service bounds to a *running* service, thread-safe.

        Growing ``max_in_flight`` lets the driver's next admission pump
        (once per scan cycle) drain the FIFO into the new slots;
        shrinking stops further admissions until completions bring the
        in-flight count under the new bound — registered queries are
        never evicted.  Shrinking ``admission_queue_depth`` below the
        current queue length keeps the queued entries and only rejects
        new submissions.  ``idle_sleep`` reaches the live driver loop
        through the callable handed to ``run_forever``.
        """
        self._apply_tuning(tuning)

    def snapshot(self) -> dict:
        """A JSON-able view of the service's live admission state.

        The ``service`` section of ``Warehouse.stats()`` (DESIGN.md
        section 13): the *effective* bounds (post-clamp), occupancy,
        and queue depth at this instant.
        """
        with self._cond:
            return {
                "running": self.running,
                "in_flight": self._in_flight,
                "queued": len(self._queue),
                "max_in_flight": self.max_in_flight,
                "admission_queue_depth": self.admission_queue_depth,
                "idle_sleep": self.idle_sleep,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the background driver thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def in_flight(self) -> int:
        """Queries admitted and not yet completed."""
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        """Submissions waiting for an in-flight slot."""
        with self._cond:
            return len(self._queue)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 latency and admission-wait percentiles so far."""
        return self.operator.stats.latency_summary()

    @property
    def latency_records(self):
        """Per-query latency records, in completion order."""
        return list(self.operator.stats.latency_records)

    # ------------------------------------------------------------------
    # Submission (any thread, any time)
    # ------------------------------------------------------------------
    def submit(
        self, query: StarQuery, handle: QueryHandle | None = None
    ) -> QueryHandle:
        """Submit a star query; returns its handle immediately.

        Admits inline when a slot is free (mid-scan, via the manager's
        stall protocol); queues FIFO otherwise.

        Raises:
            AdmissionError: when the admission queue is full.
            QueryError: when the query does not fit the star schema
                (validated up front so queued submissions cannot fail
                late on the driver thread).
        """
        query.validate(self.operator.star)
        if handle is None:
            handle = QueryHandle(query)
        # the service owns cancellation while the query waits in the
        # FIFO; admission hands ownership to the Pipeline Manager
        handle._canceller = lambda: self._cancel(handle)
        with self._cond:
            # reserve a slot only; the admission itself runs outside
            # the service lock so the driver's scan (and completion
            # callbacks) never block behind a dimension subquery
            inline = (
                not self._queue
                and not self._pumping
                and self._in_flight < self.max_in_flight
            )
            if inline:
                self._in_flight += 1
            else:
                self._enqueue_locked(query, handle)
                return handle
        try:
            self.operator.submit(query, handle)
        except AdmissionError:
            # operator fuller than our count (direct operator.submit
            # callers bypass the service); fall back to the queue
            with self._cond:
                self._in_flight -= 1
                self._enqueue_locked(query, handle)
            return handle
        except BaseException:
            with self._cond:
                self._in_flight -= 1
                self._cond.notify_all()
            raise
        handle.on_complete(self._on_query_done)
        return handle

    def _enqueue_locked(self, query: StarQuery, handle: QueryHandle) -> None:
        """Append to the admission FIFO; reject when at depth."""
        if len(self._queue) >= self.admission_queue_depth:
            raise AdmissionError(
                f"admission queue is full "
                f"({self.admission_queue_depth} queries waiting); "
                f"retry later or raise admission_queue_depth"
            )
        self._queue.append((query, handle))
        self._cond.notify_all()

    def _on_query_done(self, handle: QueryHandle) -> None:
        """Completion callback: free the slot and wake waiters."""
        with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()

    def _cancel(self, handle: QueryHandle) -> bool:
        """Cancel a submission that may still be waiting in the FIFO.

        A queued submission is dropped in place (it never held a slot);
        one that made it into the pipeline is delegated to the
        manager's mid-scan deregistration.  Returns False on the narrow
        race where the driver popped the query but has not registered
        it yet — the caller may simply retry ``handle.cancel()``.
        """
        with self._cond:
            dequeued = False
            for position, entry in enumerate(self._queue):
                if entry[1] is handle:
                    del self._queue[position]
                    handle.mark_cancelled()
                    dequeued = True
                    self._cond.notify_all()
                    break
        if dequeued:
            handle.complete([])  # outside the lock: runs callbacks
            return True
        registration = handle.registration
        if registration is None:
            return False
        # pass the registration so a recycled query id can never tear
        # down a later query (manager.cancel verifies identity)
        return self.operator.manager.cancel(
            registration.query_id, registration
        )

    def _on_cycle(self) -> int:
        """The per-cycle driver callback: scan-boundary hook, then pump."""
        hook = self.cycle_hook
        if hook is not None:
            hook()
        return self._pump_admissions()

    def _pump_admissions(self) -> int:
        """Admit queued submissions while slots are free (FIFO).

        Called on the driver thread once per scan cycle, and by the
        synchronous drain loop.  Returns the number admitted.  Each
        admission runs outside the service lock (the ``_pumping`` flag
        keeps inline submissions from overtaking the popped query).
        """
        admitted = 0
        while True:
            with self._cond:
                if not self._queue or self._in_flight >= self.max_in_flight:
                    return admitted
                query, handle = self._queue.popleft()
                self._in_flight += 1
                self._pumping = True
            try:
                self.operator.submit(query, handle)
            except AdmissionError:
                # ids still held pending cleanup; retry next cycle
                with self._cond:
                    self._in_flight -= 1
                    self._queue.appendleft((query, handle))
                    self._pumping = False
                return admitted
            except BaseException:
                with self._cond:
                    self._in_flight -= 1
                    self._pumping = False
                    self._cond.notify_all()
                raise
            handle.on_complete(self._on_query_done)
            with self._cond:
                self._pumping = False
                self._cond.notify_all()
            admitted += 1

    # ------------------------------------------------------------------
    # Background driver lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WarehouseService":
        """Start the background continuous-scan driver.

        Returns self, so ``service = warehouse.start_service()`` reads
        naturally.  Restartable: ``start()`` after ``stop()`` spins up
        a fresh driver over the same pipeline state.

        Raises:
            PipelineError: if the driver is already running.
        """
        with self._cond:
            if self.running:
                raise PipelineError("service driver is already running")
            self._driver_error = None
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._drive, name="warehouse-service", daemon=True
            )
            self._thread.start()
        return self

    def _drive(self) -> None:
        try:
            self.operator.executor.run_forever(
                # a callable, so reconfigure() retunes the idle
                # throttle of the running driver (DESIGN.md section 13)
                idle_sleep=lambda: self.idle_sleep,
                on_cycle=self._on_cycle,
                stop_event=self._stop_event,
            )
        except BaseException as error:  # keep stop()/drain() informative
            self._driver_error = error
        finally:
            self.operator.manager.process_finished()
            with self._cond:
                self._cond.notify_all()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the driver down cleanly (idempotent).

        Joins the driver thread and, for threaded executors, the stage
        threads.  In-flight queries stay registered; they resume on the
        next ``start()`` or ``drain()``.

        Raises:
            PipelineError: if the driver does not stop within
                ``timeout`` seconds, or previously crashed.
        """
        thread = self._thread
        self._stop_event.set()
        with self._cond:
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                raise PipelineError(
                    f"service driver did not stop within {timeout} seconds"
                )
        self._thread = None
        self.operator.stop()  # joins stage threads for threaded executors
        self._raise_driver_error()

    def _raise_driver_error(self) -> None:
        if self._driver_error is not None:
            error, self._driver_error = self._driver_error, None
            raise PipelineError(
                "service driver crashed; pipeline state preserved"
            ) from error

    # ------------------------------------------------------------------
    # Draining (the Warehouse.run() compatibility path)
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Run every submitted query to completion.

        With the driver running, blocks until the queue empties and the
        last in-flight query completes.  Without it, drives the
        pipeline on the calling thread — the historical batch-drain
        behaviour ``Warehouse.run()`` is specified to keep.

        Raises:
            PipelineError: on ``timeout`` (running driver only), driver
                crash, or a non-synchronous executor with no driver.
        """
        if self.running:
            with self._cond:
                done = self._cond.wait_for(
                    lambda: (
                        (not self._queue and self._in_flight == 0)
                        or self._driver_error is not None
                    ),
                    timeout,
                )
            self._raise_driver_error()
            if not done:
                raise PipelineError(
                    f"service did not drain within {timeout} seconds"
                )
            return
        self._raise_driver_error()
        executor = self.operator.executor
        if not isinstance(executor, SynchronousExecutor):
            raise PipelineError(
                "drain() without a running driver requires the "
                "synchronous executor; call start() for threaded modes"
            )
        while True:
            self._on_cycle()
            executor.run_until_drained()
            self.operator.manager.process_finished()
            with self._cond:
                if not self._queue and self._in_flight == 0:
                    return

    def pump(self, batches: int = 1) -> int:
        """Deterministic single-thread drive: admissions + ``batches`` steps.

        The embedded-mode hook tests use to interleave submissions with
        scan progress at exact batch offsets (mid-scan admission
        equivalence).  Returns the number of items handled.

        Raises:
            PipelineError: when the background driver is running (the
                driver owns the pipeline then) or the executor is not
                synchronous.
        """
        if self.running:
            raise PipelineError(
                "pump() conflicts with the running driver; call stop() first"
            )
        executor = self.operator.executor
        if not isinstance(executor, SynchronousExecutor):
            raise PipelineError("pump() requires the synchronous executor")
        handled = 0
        for _ in range(batches):
            self._on_cycle()
            handled += executor.step()
        return handled
