"""Routing star queries to CJOIN and everything else to the baseline.

The paper's architecture (section 2.1): CJOIN is "yet one more choice
for the database query optimizer".  The router implements that choice
with a simple, explainable policy; callers can always force a path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.catalog.schema import StarSchema
from repro.errors import QueryError
from repro.query.star import StarQuery


class RoutingDecision(enum.Enum):
    """Which engine executes a query."""

    CJOIN = "cjoin"
    BASELINE = "baseline"


@dataclass(frozen=True)
class QueryRouter:
    """Decides the execution engine for each submitted query.

    Policy: a valid star query on the registered star goes to CJOIN
    unless the caller forces the baseline.  Queries CJOIN cannot host
    (wrong fact table, schema mismatch) go to the baseline when they
    are still valid there; otherwise the error propagates.
    """

    star: StarSchema

    def route(
        self, query: StarQuery, force: RoutingDecision | None = None
    ) -> RoutingDecision:
        """Return the engine for ``query``.

        Raises:
            QueryError: if the query is invalid for every engine.
        """
        query.validate(self.star)  # both engines share the schema check
        if force is not None:
            return force
        return RoutingDecision.CJOIN

    def explain(self, query: StarQuery) -> str:
        """Human-readable routing explanation (for ops tooling)."""
        try:
            decision = self.route(query)
        except QueryError as exc:
            return f"rejected: {exc}"
        if decision is RoutingDecision.CJOIN:
            return (
                "cjoin: star query on fact table "
                f"{query.fact_table!r}; joins shared work with "
                "all in-flight star queries"
            )
        return "baseline: conventional hash-join plan"
