"""Adaptive right-sizing: the telemetry-driven controller (DESIGN.md
section 13).

The paper's promise is predictable latency under arbitrary
concurrency, but the knobs that defend it — the service's admission
bound, the process backend's worker count — were static while
:meth:`~repro.cjoin.stats.PipelineStats.latency_summary` already
measures exactly what an autoscaler needs.  :class:`AutoTuner` closes
that loop natively inside the engine, in the observe → decide → apply
shape production autoscalers use:

* **observe** — each tick samples a :class:`TuningSample` from the
  warehouse's own telemetry: tail-window p95 end-to-end latency and
  p95 admission wait, live admission-queue depth, in-flight occupancy,
  and the offline process-route backlog;
* **decide** — pure rules over the sample (no I/O, so every rule is
  unit-testable with a fake clock and fake telemetry): grow the
  admission bound when submissions queue behind it, shrink it after
  sustained idleness, grow/shrink the process-backend worker pool
  against its drain backlog, all bounded by the policy's clamps and
  rate-limited by a cooldown;
* **apply** — actions go through ``Warehouse.reconfigure``, the same
  runtime path a human operator uses, so every knob lands at its safe
  boundary (scan cycle, batch, or drain) and results stay
  reference-equal across a resize.

Every tick that proposes an action — applied, clamped, or suppressed
by the cooldown — is recorded as a :class:`TuningDecision` in a
bounded ring buffer, queryable from any client through
``Connection.stats()`` (docs/PROTOCOL.md section 9): the audit trail
that makes an autonomic controller debuggable.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.cjoin.stats import percentile
from repro.errors import ConfigError, ReproError
from repro.tuning import (
    MAX_CONCURRENT_QUERIES,
    MAX_WORKERS,
    TuningConfig,
    _require_float,
    _require_int,
)

#: Default seconds between controller ticks.
DEFAULT_INTERVAL = 0.25

#: Default size of the decision-audit ring buffer.
DEFAULT_AUDIT_LIMIT = 256


def host_parallelism(cap: int = MAX_WORKERS) -> int:
    """The largest worker count worth growing to on this host."""
    import os

    return max(1, min(cap, os.cpu_count() or 1))


@dataclass(frozen=True)
class TuningSample:
    """One tick's observed signals (the controller's whole input)."""

    #: controller-clock timestamp (monotonic seconds)
    at: float
    #: p95 end-to-end latency over the tail window, seconds
    p95: float
    #: p95 admission wait over the tail window, seconds
    wait_p95: float
    #: completed queries covered by the two percentiles
    window_count: int
    #: submissions waiting in the service admission FIFO
    queued: int
    #: queries admitted and not yet completed
    in_flight: int
    #: the service's current (effective) admission bound
    max_in_flight: int
    #: the executor backend ('serial' or 'process')
    backend: str
    #: current process-backend worker count
    workers: int
    #: submissions parked on the offline process route
    pending_process: int


@dataclass(frozen=True)
class TuningDecision:
    """One audited controller decision: signals → rule → action → effect.

    ``applied`` is False when the rule fired but the action was
    suppressed (cooldown) or was a no-op (already at the bound);
    ``reason`` says which.  ``action`` records the knob, the value it
    moved from, the raw (pre-clamp) target, and the value actually
    requested, so a bounds clamp is visible in the audit.
    """

    at: float
    rule: str
    signals: dict
    action: dict
    applied: bool
    reason: str

    def as_dict(self) -> dict:
        """A JSON-able view (the wire shape of the stats audit)."""
        return {
            "at": self.at,
            "rule": self.rule,
            "signals": dict(self.signals),
            "action": dict(self.action),
            "applied": self.applied,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class TuningPolicy:
    """Bounds, thresholds, and cadence for the controller's rules.

    Attributes:
        min_in_flight / max_in_flight: clamp on the admission bound.
        min_workers / max_workers: clamp on the process worker pool;
            ``max_workers=None`` defaults to :func:`host_parallelism`.
        grow_factor / shrink_factor: multiplicative step sizes.
        queue_grow_fraction: grow the admission bound when the FIFO
            holds more than this fraction of it.
        idle_shrink_fraction: an "idle" sample has occupancy at or
            under this fraction of the bound (and an empty FIFO).
        shrink_patience: consecutive idle samples before shrinking
            (hysteresis, so one quiet tick never thrashes the pool).
        cooldown_seconds: minimum spacing between *applied* actions;
            rules that fire inside it are audited but suppressed.
        latency_window: completed-query records in the p95 tail window.
    """

    min_in_flight: int = 2
    max_in_flight: int = 1024
    min_workers: int = 1
    max_workers: int | None = None
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    queue_grow_fraction: float = 0.25
    idle_shrink_fraction: float = 0.25
    shrink_patience: int = 3
    cooldown_seconds: float = 1.0
    latency_window: int = 64

    def __post_init__(self) -> None:
        _require_int(
            "min_in_flight", self.min_in_flight, 1, MAX_CONCURRENT_QUERIES
        )
        _require_int(
            "max_in_flight", self.max_in_flight,
            self.min_in_flight, MAX_CONCURRENT_QUERIES,
        )
        _require_int("min_workers", self.min_workers, 1, MAX_WORKERS)
        if self.max_workers is not None:
            _require_int(
                "max_workers", self.max_workers,
                self.min_workers, MAX_WORKERS,
            )
        _require_float("grow_factor", self.grow_factor, 1.0, 64.0)
        _require_float("shrink_factor", self.shrink_factor, 0.0, 1.0)
        _require_float(
            "queue_grow_fraction", self.queue_grow_fraction, 0.0, 1.0
        )
        _require_float(
            "idle_shrink_fraction", self.idle_shrink_fraction, 0.0, 1.0
        )
        _require_int("shrink_patience", self.shrink_patience, 1, 1 << 16)
        _require_float(
            "cooldown_seconds", self.cooldown_seconds, 0.0, 3600.0
        )
        _require_int("latency_window", self.latency_window, 1, 1 << 20)

    def worker_ceiling(self) -> int:
        """The effective upper clamp on the worker pool."""
        if self.max_workers is not None:
            return self.max_workers
        return max(self.min_workers, host_parallelism())


class AutoTuner:
    """The controller thread: sample → rules → bounded resize actions.

    Args:
        warehouse: the live warehouse to observe and resize; only
            ``tuning``, ``reconfigure``, and (for the default probe)
            ``service`` / ``cjoin`` / ``pending_submissions`` /
            ``executor_config`` are touched, so tests drive the rules
            with a stub warehouse.
        policy: rule thresholds and clamps (default
            :class:`TuningPolicy`).
        interval: seconds between ticks of the background thread.
        clock: monotonic-seconds source, injectable so cooldown and
            timestamps are deterministic under test.
        probe: zero-argument callable returning a
            :class:`TuningSample`; ``None`` samples the warehouse's
            real telemetry.  Injectable for fake-telemetry tests.
        audit_limit: decisions retained in the audit ring buffer.
    """

    def __init__(
        self,
        warehouse,
        policy: TuningPolicy | None = None,
        interval: float = DEFAULT_INTERVAL,
        clock=time.monotonic,
        probe=None,
        audit_limit: int = DEFAULT_AUDIT_LIMIT,
    ) -> None:
        _require_float("interval", interval, 0.001, 3600.0)
        _require_int("audit_limit", audit_limit, 1, 1 << 20)
        self.warehouse = warehouse
        self.policy = policy if policy is not None else TuningPolicy()
        self.interval = interval
        self.clock = clock
        self.probe = probe
        self._decisions: deque[TuningDecision] = deque(maxlen=audit_limit)
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_action_at: float | None = None
        self._idle_streak = 0
        self._worker_idle_streak = 0
        self.last_sample: TuningSample | None = None
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------
    def sample(self) -> TuningSample:
        """One observation — the injected probe or the live warehouse."""
        if self.probe is not None:
            return self.probe()
        warehouse = self.warehouse
        service = warehouse.service.snapshot()
        # latency_records is append-only; a tail slice under the GIL is
        # a consistent-enough window for a controller
        records = warehouse.cjoin.stats.latency_records
        tail = records[-self.policy.latency_window:]
        from repro.engine.submission import ROUTE_PROCESS

        return TuningSample(
            at=self.clock(),
            p95=percentile([r.latency_seconds for r in tail], 0.95),
            wait_p95=percentile([r.wait_seconds for r in tail], 0.95),
            window_count=len(tail),
            queued=service["queued"],
            in_flight=service["in_flight"],
            max_in_flight=service["max_in_flight"],
            backend=warehouse.executor_config.backend,
            workers=warehouse.executor_config.workers,
            pending_process=warehouse.pending_submissions(ROUTE_PROCESS),
        )

    # ------------------------------------------------------------------
    # Decide (pure: sample + policy + streak state → decisions)
    # ------------------------------------------------------------------
    def _propose(self, sample: TuningSample) -> tuple[str, str, int, int] | None:
        """The first rule that wants to move a knob, or None.

        Returns ``(rule, knob, raw_target, current)``; priority favors
        growing under pressure over shrinking when idle.
        """
        policy = self.policy
        # grow_admission: submissions are queueing behind the bound
        if sample.queued > 0 and sample.queued >= max(
            1, int(policy.queue_grow_fraction * sample.max_in_flight)
        ):
            raw = max(
                sample.max_in_flight + 1,
                int(sample.max_in_flight * policy.grow_factor),
            )
            return ("grow_admission", "max_in_flight", raw, sample.max_in_flight)
        # grow_workers: the offline drain backlog outruns the pool
        if (
            sample.backend == "process"
            and sample.pending_process > sample.workers
        ):
            raw = max(
                sample.workers + 1,
                int(sample.workers * policy.grow_factor),
            )
            return ("grow_workers", "workers", raw, sample.workers)
        # shrink_admission: sustained low occupancy, nothing waiting
        admission_idle = (
            sample.queued == 0
            and sample.in_flight
            <= policy.idle_shrink_fraction * sample.max_in_flight
        )
        if (
            admission_idle
            and self._idle_streak >= policy.shrink_patience
            and sample.max_in_flight > policy.min_in_flight
        ):
            raw = int(sample.max_in_flight * policy.shrink_factor)
            return (
                "shrink_admission", "max_in_flight", raw, sample.max_in_flight
            )
        # shrink_workers: the process backlog has stayed empty
        if (
            sample.backend == "process"
            and sample.pending_process == 0
            and self._worker_idle_streak >= policy.shrink_patience
            and sample.workers > policy.min_workers
        ):
            raw = int(sample.workers * policy.shrink_factor)
            return ("shrink_workers", "workers", raw, sample.workers)
        return None

    def _clamp(self, knob: str, raw: int) -> int:
        policy = self.policy
        if knob == "max_in_flight":
            return min(max(raw, policy.min_in_flight), policy.max_in_flight)
        return min(max(raw, policy.min_workers), policy.worker_ceiling())

    def _advance_streaks(self, sample: TuningSample) -> None:
        admission_idle = (
            sample.queued == 0
            and sample.in_flight
            <= self.policy.idle_shrink_fraction * sample.max_in_flight
        )
        self._idle_streak = self._idle_streak + 1 if admission_idle else 0
        workers_idle = (
            sample.backend == "process" and sample.pending_process == 0
        )
        self._worker_idle_streak = (
            self._worker_idle_streak + 1 if workers_idle else 0
        )

    # ------------------------------------------------------------------
    # Tick: observe → decide → apply → audit
    # ------------------------------------------------------------------
    def tick(self) -> TuningDecision | None:
        """One control cycle; returns the decision taken, if any.

        Called by the background thread each interval; tests call it
        directly (with a fake clock/probe) for determinism.
        """
        sample = self.sample()
        self.last_sample = sample
        proposal = self._propose(sample)
        # streaks advance after proposing, so patience is measured in
        # *previous* consecutive idle samples
        self._advance_streaks(sample)
        if proposal is None:
            return None
        rule, knob, raw, current = proposal
        target = self._clamp(knob, raw)
        signals = {
            "p95": sample.p95,
            "wait_p95": sample.wait_p95,
            "queued": sample.queued,
            "in_flight": sample.in_flight,
            "max_in_flight": sample.max_in_flight,
            "workers": sample.workers,
            "pending_process": sample.pending_process,
        }
        action = {"knob": knob, "from": current, "raw_target": raw,
                  "to": target}
        if target == current:
            return self._record(
                sample.at, rule, signals, action, False,
                "bounds clamp: already at the policy limit",
            )
        if (
            self._last_action_at is not None
            and sample.at - self._last_action_at
            < self.policy.cooldown_seconds
        ):
            return self._record(
                sample.at, rule, signals, action, False,
                f"cooldown: last action "
                f"{sample.at - self._last_action_at:.3f}s ago",
            )
        reason = "applied"
        if target != raw:
            reason = "applied (clamped to the policy bound)"
        try:
            self.warehouse.reconfigure(
                self.warehouse.tuning.replace(**{knob: target})
            )
        except (ConfigError, ReproError) as error:
            return self._record(
                sample.at, rule, signals, action, False,
                f"apply failed: {error}",
            )
        self._last_action_at = sample.at
        # an applied action resets the relevant hysteresis
        if knob == "max_in_flight":
            self._idle_streak = 0
        else:
            self._worker_idle_streak = 0
        return self._record(sample.at, rule, signals, action, True, reason)

    def _record(
        self, at, rule, signals, action, applied, reason
    ) -> TuningDecision:
        decision = TuningDecision(
            at=at, rule=rule, signals=signals, action=action,
            applied=applied, reason=reason,
        )
        with self._lock:
            self._decisions.append(decision)
        return decision

    @property
    def decisions(self) -> list[TuningDecision]:
        """The audit ring's contents, oldest first (bounded copy)."""
        with self._lock:
            return list(self._decisions)

    # ------------------------------------------------------------------
    # Controller thread lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the controller thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "AutoTuner":
        """Start the background controller (restartable after stop)."""
        if self.running:
            return self
        self.last_error = None
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="warehouse-autotuner", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.tick()
            except Exception as error:  # keep the warehouse unharmed:
                # a controller crash must never take the service down
                self.last_error = error
                return

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the controller thread (idempotent); audit is retained."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None
