"""Warehouse facade: the system architecture of paper section 2.1.

Concurrent star queries are diverted to the specialized CJOIN
processor; anything else (or anything explicitly requested) runs on
conventional query-at-a-time infrastructure.  Updates flow through
snapshot isolation (section 3.5).  The always-on serving surface —
background continuous scan, mid-scan online admission, latency
telemetry — is :class:`~repro.engine.service.WarehouseService`
(DESIGN.md section 9).
"""

from repro.engine.autotune import AutoTuner, TuningDecision, TuningPolicy
from repro.engine.router import QueryRouter, RoutingDecision
from repro.engine.service import WarehouseService
from repro.engine.submission import Submission, SubmissionQueue
from repro.engine.swap import SwapReport, WarehouseHolder, blue_green_swap
from repro.engine.warehouse import Warehouse

__all__ = [
    "AutoTuner",
    "QueryRouter",
    "RoutingDecision",
    "Submission",
    "SubmissionQueue",
    "SwapReport",
    "TuningDecision",
    "TuningPolicy",
    "Warehouse",
    "WarehouseHolder",
    "WarehouseService",
    "blue_green_swap",
]
