"""The unified submission lifecycle (DESIGN.md section 10).

Every query entering the warehouse — whether it rides the always-on
CJOIN service, waits for the next process-parallel shard drain, or
falls back to the query-at-a-time baseline engine — is wrapped in one
:class:`Submission` with the same lifecycle: *submitted* (handle
created, timestamps running) → *admitted* (work started; queued
submissions can be cancelled for free until here) → *completed* or
*cancelled*.  Before this layer the three routes were three private
code paths with divergent telemetry; now the warehouse keeps one
submission log and every route reports the same
:class:`~repro.cjoin.stats.QueryLatencyRecord` fields.

:class:`SubmissionQueue` is the FIFO for the two offline routes
(process, baseline), which admit work at drain boundaries only.  It is
a first-class citizen of the cancellation protocol: a queued
submission's handle carries a canceller that drops the entry in place,
mirroring what the service's admission FIFO does for mid-scan routes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cjoin.registry import QueryHandle
from repro.query.star import StarQuery

#: The three submission routes a warehouse query can take.
ROUTE_SERVICE = "service"
ROUTE_PROCESS = "process"
ROUTE_BASELINE = "baseline"


@dataclass
class Submission:
    """One query's trip through the warehouse, on any route.

    Attributes:
        query: the validated star query.
        handle: the caller's handle; its timestamps (``submitted_at``,
            ``admitted_at``, ``completed_at``) are the single source of
            truth for this submission's latency telemetry.
        route: ``'service'``, ``'process'``, or ``'baseline'``.
        label: the query's label (telemetry convenience).
    """

    query: StarQuery
    handle: QueryHandle
    route: str
    label: str | None = field(default=None)
    #: concurrent submissions in the same drain batch (offline routes)
    admitted_with_in_flight: int = 0

    def __post_init__(self) -> None:
        if self.label is None:
            self.label = self.query.label

    @property
    def done(self) -> bool:
        """True once the handle completed (including cancellations)."""
        return self.handle.done

    @property
    def cancelled(self) -> bool:
        """True once the submission was cancelled."""
        return self.handle.cancelled

    @property
    def admitted(self) -> bool:
        """True once work started (the handle was stamped)."""
        return self.handle.admitted_at is not None

    def mark_admitted(self, in_flight: int = 0) -> None:
        """Stamp admission time for an offline drain (telemetry)."""
        self.handle.admitted_at = time.perf_counter()
        self.admitted_with_in_flight = in_flight

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self.cancelled
            else "done"
            if self.done
            else "admitted"
            if self.admitted
            else "queued"
        )
        return (
            f"Submission(route={self.route!r}, label={self.label!r}, "
            f"{state})"
        )


class SubmissionQueue:
    """FIFO of offline submissions awaiting the next drain boundary.

    Thread-safe; used by the warehouse for the process and baseline
    routes.  Cancellation drops a queued entry in place and completes
    its handle as cancelled — identical semantics to the service's
    admission FIFO, just at drain granularity.
    """

    def __init__(self, route: str) -> None:
        self.route = route
        self._lock = threading.Lock()
        self._entries: list[Submission] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, submission: Submission) -> None:
        """Enqueue and take cancellation ownership of the handle."""
        submission.handle._canceller = lambda: self.cancel(submission)
        with self._lock:
            self._entries.append(submission)

    def cancel(self, submission: Submission) -> bool:
        """Drop a queued submission; no-op once a drain claimed it."""
        with self._lock:
            try:
                self._entries.remove(submission)
            except ValueError:
                return False
            submission.handle.mark_cancelled()
        submission.handle.complete([])  # outside the lock: callbacks
        return True

    def cancel_all(self) -> int:
        """Cancel every queued submission (warehouse shutdown).

        Blocked waiters on the dropped handles wake with
        ``CancelledError`` instead of hanging forever.  Returns the
        number cancelled.
        """
        with self._lock:
            batch, self._entries = self._entries, []
        for submission in batch:
            submission.handle.mark_cancelled()
            submission.handle.complete([])
        return len(batch)

    def take(self) -> list[Submission]:
        """Claim every pending submission for a drain (FIFO order)."""
        with self._lock:
            batch, self._entries = self._entries, []
        return batch

    def restore(self, batch: list[Submission]) -> None:
        """Return a claimed batch after a failed drain (retryable).

        The handles' cancellers still point at this queue (``take()``
        never detaches them; a cancel during the failed drain was just
        a no-op), so re-queueing the entries makes them cancellable
        again with no further wiring.
        """
        with self._lock:
            self._entries = [*batch, *self._entries]
