"""Blue-green dataset swaps: replace a live warehouse without dropping
a session (DESIGN.md section 16).

The always-on serving layers (the threaded and async TCP servers, or
any object holding a ``warehouse`` attribute) resolve ``warehouse`` at
*call* time, never caching it per session — which makes a zero-downtime
dataset swap a pointer flip with careful sequencing:

1. load the new dataset version into a *shadow* :class:`Warehouse`
   (typically ``Warehouse.open`` on a freshly prepared data_dir, or a
   regenerated in-memory instance) — the expensive part happens
   entirely off the serving path;
2. start the shadow's service driver so its continuous scan is already
   warm when traffic arrives;
3. under the **old** pipeline's write barrier, flip
   ``holder.warehouse`` to the shadow — the barrier serializes the
   flip against in-progress admissions, so the cutover lands at a
   scan-cycle boundary: every query is admitted wholly to one
   warehouse or the other, never split;
4. drain the old warehouse — queries admitted before the flip finish
   on the scan (and the dataset version) they were admitted under, so
   in-flight cursors stream exactly the results their admission
   promised;
5. retire the old warehouse (stop its driver, close it) once empty.

Sessions never notice: their next statement routes to the shadow, the
handles they already hold complete against the old version first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigError, QueryError


@dataclass
class WarehouseHolder:
    """A minimal swap target for in-process (serverless) use."""

    warehouse: object


@dataclass(frozen=True)
class SwapReport:
    """What one :func:`blue_green_swap` observed."""

    #: queries still on the old scan at the instant of the flip
    old_in_flight: int
    #: queries waiting in the old admission queue at the flip
    old_queued: int
    #: True when the swap started the shadow's service driver itself
    shadow_started: bool
    #: seconds spent draining the old warehouse after the flip
    drain_seconds: float
    #: True when the old warehouse was closed by the swap
    retired: bool


def blue_green_swap(
    holder,
    shadow,
    *,
    drain_timeout: float | None = None,
    retire: bool = True,
) -> SwapReport:
    """Cut ``holder`` (a server or :class:`WarehouseHolder`) over to
    ``shadow``; returns a :class:`SwapReport`.

    ``holder`` is anything exposing a settable ``warehouse``
    attribute that its sessions re-read per call — both TCP servers
    and :class:`WarehouseHolder` qualify.  The shadow must be open and
    schema-compatible with the live warehouse (statements parsed
    against one star must validate against the other); dataset
    *contents* may differ arbitrarily — that is the point.

    With ``retire=False`` the old warehouse is drained but left open
    (e.g. to roll back by swapping again); otherwise it is closed,
    which also checkpoints it when it is durable.

    Raises:
        ConfigError: when ``holder`` has no warehouse, or the shadow
            *is* the live warehouse.
        QueryError: when the live or shadow warehouse is closed.
        PipelineError: when the old service misses ``drain_timeout``.
    """
    old = getattr(holder, "warehouse", None)
    if old is None:
        raise ConfigError(
            "swap holder has no 'warehouse' attribute to cut over"
        )
    if shadow is old:
        raise ConfigError("shadow warehouse is already the live one")
    if shadow.closed:
        raise QueryError("shadow warehouse is closed; open the new version first")
    if old.closed:
        raise QueryError("live warehouse is closed; nothing to swap from")
    shadow_started = False
    if old.service.running and not shadow.service.running:
        # warm the shadow's scan before any traffic can reach it
        shadow.start_service()
        shadow_started = True
    with old.cjoin.manager.write_barrier():
        holder.warehouse = shadow
        old_in_flight = old.service.in_flight
        old_queued = old.service.queued
    started = time.monotonic()
    # queries admitted before the flip complete against the version
    # they were admitted under; run() also drains the offline routes
    if old.service.running:
        old.service.drain(timeout=drain_timeout)
    old.run()
    drain_seconds = time.monotonic() - started
    if retire:
        old.close()
    return SwapReport(
        old_in_flight=old_in_flight,
        old_queued=old_queued,
        shadow_started=shadow_started,
        drain_seconds=drain_seconds,
        retired=retire,
    )
