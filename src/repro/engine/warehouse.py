"""The Warehouse facade: load data, submit queries (SQL or objects),

mix in updates under snapshot isolation, and run everything.

Typical use::

    warehouse = Warehouse.from_ssb(scale_factor=0.001)
    handle = warehouse.submit_sql(
        "SELECT d_year, SUM(lo_revenue) AS revenue "
        "FROM lineorder, date "
        "WHERE lo_orderdate = d_datekey AND d_year >= 1992 "
        "GROUP BY d_year"
    )
    warehouse.run()
    for row in handle.results():
        print(row)
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque

from repro.baseline.engine import EngineProfile, QueryAtATimeEngine
from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.executor import (
    MAX_CONCURRENT_QUERIES,
    ExecutorConfig,
    _require_int,
)
from repro.cjoin.operator import CJoinOperator
from repro.cjoin.registry import QueryHandle
from repro.cjoin.stats import QueryLatencyRecord
from repro.engine.router import QueryRouter, RoutingDecision
from repro.engine.service import WarehouseService
from repro.tuning import TuningConfig, resolve_tuning
from repro.engine.submission import (
    ROUTE_BASELINE,
    ROUTE_PROCESS,
    ROUTE_SERVICE,
    Submission,
    SubmissionQueue,
)
from repro.errors import ConfigError, QueryError, SchemaError
from repro.ingest.buffer import (
    DEFAULT_BUFFER_ROWS,
    IngestBatch,
    IngestBuffer,
    IngestTicket,
)
from repro.ingest.writer import DEFAULT_WRITER_BATCH_ROWS, IngestWriter
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.mvcc import TransactionManager, VersionedTable

#: Default buffer pool size for a warehouse instance.
DEFAULT_POOL_PAGES = 2048

#: Submissions retained for introspection; older entries fall off so a
#: long-running service does not leak handles (and their result rows).
SUBMISSION_LOG_LIMIT = 4096


class Warehouse:
    """One star-schema warehouse with a CJOIN path and a baseline path."""

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema,
        buffer_pool_pages: int = DEFAULT_POOL_PAGES,
        max_concurrent: int = 256,
        enable_updates: bool = False,
        execution: str | None = None,
        backend: str = "serial",
        tuning: TuningConfig | None = None,
        ingest_buffer_rows: int = DEFAULT_BUFFER_ROWS,
        data_dir: str | None = None,
        **deprecated,
    ) -> None:
        """Args:
            execution: CJOIN execution granularity — 'tuple' for the
                reference tuple-at-a-time path, 'batched' for the
                vectorized fast path (DESIGN.md section 5).  Results
                are identical; 'batched' trades per-tuple dispatch for
                per-batch columnar loops.  Defaults to 'tuple' for the
                serial backend and 'batched' for the process backend
                (which requires it).
            backend: 'serial' for the always-on in-process operator, or
                'process' to drain CJOIN queries over fact shards in
                worker processes (DESIGN.md section 8).  The process
                backend admits queries at drain boundaries only and is
                incompatible with ``enable_updates``.
            tuning: every runtime-tunable knob as one validated
                :class:`~repro.tuning.TuningConfig` — the service
                bounds (``max_in_flight``, ``admission_queue_depth``,
                ``idle_sleep``, DESIGN.md section 9) plus the executor
                knobs (``workers`` for backend='process',
                ``batch_size``).  Mutable at runtime through
                :meth:`reconfigure` (DESIGN.md section 13).
            ingest_buffer_rows: bound on staged-but-unapplied streaming
                writes (DESIGN.md section 15); a full buffer rejects
                :meth:`ingest` with
                :class:`~repro.errors.IngestBackpressureError`.
            data_dir: when set, the warehouse is durable (DESIGN.md
                section 16): the constructor publishes an initial
                snapshot of the dataset it was given (a *new
                generation* when the directory already holds one —
                the blue-green reload path), every acked ingest batch
                is WAL-logged before its ticket resolves, and
                :meth:`close` checkpoints a final snapshot.  Use
                :meth:`open` to cold-start from the directory without
                regenerating anything.

        The pre-redesign keywords (``workers``, ``max_in_flight``,
        ``idle_sleep``, ``admission_queue_depth``, ``batch_size``) are
        still accepted as deprecation shims that emit
        :class:`DeprecationWarning` and map onto ``tuning``.
        """
        tuning = resolve_tuning(
            tuning,
            deprecated,
            allowed=(
                "workers",
                "max_in_flight",
                "idle_sleep",
                "admission_queue_depth",
                "batch_size",
            ),
            where="Warehouse",
        )
        _require_int(
            "max_concurrent", max_concurrent, 1, MAX_CONCURRENT_QUERIES
        )
        if execution is None:
            execution = "batched" if backend == "process" else "tuple"
        self.executor_config = ExecutorConfig(
            execution=execution, backend=backend, tuning=tuning
        )
        if backend == "process" and enable_updates:
            raise ConfigError(
                "backend='process' does not support enable_updates: "
                "shard workers cannot see the coordinator's MVCC "
                "snapshots; use backend='serial' for update workloads"
            )
        self.catalog = catalog
        self.star = star
        self.io_stats = IOStats()
        self.buffer_pool = BufferPool(buffer_pool_pages, self.io_stats)
        self.router = QueryRouter(star)
        self.transactions: TransactionManager | None = None
        self.versioned_fact: VersionedTable | None = None
        if enable_updates:
            self.transactions = TransactionManager()
            self.versioned_fact = VersionedTable(catalog.table(star.fact.name))
        self.max_concurrent = max_concurrent
        # the always-on operator is serial even when the offline drain
        # is process-sharded, so its config takes batch_size only
        self.cjoin = CJoinOperator(
            catalog,
            star,
            buffer_pool=self.buffer_pool,
            max_concurrent=max_concurrent,
            versioned_fact=self.versioned_fact,
            executor_config=ExecutorConfig(
                execution=execution, batch_size=tuning.batch_size
            ),
        )
        self.baseline = QueryAtATimeEngine(
            catalog,
            star,
            self.buffer_pool,
            EngineProfile.system_x(),
            versioned_fact=self.versioned_fact,
        )
        #: the always-on serving surface (DESIGN.md section 9): owns
        #: the CJOIN admission queue; submit() delegates to it and
        #: run() drains through it
        self.service = WarehouseService(self.cjoin, tuning=tuning)
        #: streaming-write staging (DESIGN.md section 15): batches wait
        #: here until the scan-boundary hook lands them atomically
        self.ingest_buffer = IngestBuffer(ingest_buffer_rows)
        #: serializes apply rounds against each other (close() vs the
        #: driver's hook); the pipeline locks are taken inside it
        self._ingest_apply_lock = threading.Lock()
        self.service.cycle_hook = self.apply_pending_ingest
        self._tuning = tuning
        #: serializes reconfigure() against itself; each layer's apply
        #: is internally thread-safe, the lock keeps the composite
        #: (service + executors + self._tuning) atomic per caller
        self._tuning_lock = threading.Lock()
        #: the adaptive controller, when enabled (DESIGN.md section 13)
        self.autotuner = None
        #: offline-route FIFOs: submissions waiting for the next drain
        #: boundary, with the same cancellation semantics as the
        #: service's admission queue (DESIGN.md section 10)
        self._offline_queues = {
            ROUTE_PROCESS: SubmissionQueue(ROUTE_PROCESS),
            ROUTE_BASELINE: SubmissionQueue(ROUTE_BASELINE),
        }
        #: recent submissions in arrival order, bounded so an always-on
        #: service does not pin every query's results forever
        self._submission_log: deque[Submission] = deque(
            maxlen=SUBMISSION_LOG_LIMIT
        )
        self._closed = False
        #: durable storage (DESIGN.md section 16); None = in-memory only
        self.durability = None
        #: the ReplayReport of the open() that built this warehouse
        self.last_replay = None
        if data_dir is not None:
            from repro.storage.persist import DurabilityManager

            self.durability = DurabilityManager(data_dir)
            self.save()

    @classmethod
    def from_ssb(
        cls,
        scale_factor: float = 0.001,
        seed: int = 42,
        **kwargs,
    ) -> "Warehouse":
        """Create a warehouse loaded with an SSB instance."""
        from repro.ssb.generator import load_ssb

        catalog, star = load_ssb(scale_factor, seed)
        return cls(catalog, star, **kwargs)

    @classmethod
    def open(cls, data_dir: str, **kwargs) -> "Warehouse":
        """Cold-start a warehouse from an on-disk snapshot.

        Zero regeneration: the catalog, star topology, and every
        table's rows come back from the active snapshot in
        ``data_dir`` (checksum-verified), then any WAL tail past that
        snapshot's generation replays on top — so every ingest batch
        that was acked before the previous process died is visible
        again.  The ingest generation counter and the MVCC snapshot
        counter both continue from the recovered high-water mark.

        ``kwargs`` are the constructor's runtime knobs (``execution``,
        ``tuning``, ``enable_updates``, ...); the dataset itself comes
        from disk.

        Raises:
            PersistenceError: when ``data_dir`` has no snapshot, or
                the snapshot fails its checksums.
        """
        from repro.storage.persist import DurabilityManager

        kwargs.pop("data_dir", None)
        manager = DurabilityManager(data_dir)
        catalog, star, replay = manager.load()
        warehouse = cls(catalog, star, **kwargs)
        warehouse.durability = manager
        warehouse.ingest_buffer.restore_generation(replay.generation)
        if warehouse.transactions is not None:
            warehouse.transactions.restore(replay.snapshot_id)
        warehouse.last_replay = replay
        return warehouse

    def save(self):
        """Publish a new on-disk snapshot generation; returns its info.

        Staged ingest lands first, then the snapshot is written under
        the ingest-apply lock and the pipeline's write barrier — the
        image is a scan-cycle-consistent cut, never a half-applied
        batch.  The publication itself is atomic (the ``CURRENT``
        pointer flips last), and a fresh WAL epoch starts with the new
        snapshot.

        Raises:
            PersistenceError: when the warehouse has no ``data_dir``.
            QueryError: when the warehouse has been closed.
        """
        from repro.errors import PersistenceError

        if self.durability is None:
            raise PersistenceError(
                "warehouse has no data_dir: pass data_dir= at "
                "construction (or use Warehouse.open) to enable saves"
            )
        self._require_open()
        self.apply_pending_ingest()
        return self._checkpoint()

    def _checkpoint(self):
        """Write a snapshot of the current catalog (durable path only)."""
        with self._ingest_apply_lock, self.cjoin.manager.write_barrier():
            return self.durability.save_snapshot(
                self.catalog,
                self.star,
                ingest_generation=self.ingest_buffer.generation,
                snapshot_id=self.current_snapshot_id,
            )

    # ------------------------------------------------------------------
    # Query submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: StarQuery,
        force: RoutingDecision | None = None,
        handle: QueryHandle | None = None,
    ) -> QueryHandle:
        """Submit a star query; returns a handle for its results.

        Every route flows through one :class:`Submission` lifecycle
        (DESIGN.md section 10).  CJOIN-routed queries go to the
        always-on service: admitted mid-scan immediately when an
        in-flight slot is free, queued FIFO otherwise.  Process- and
        baseline-routed queries join their offline FIFO and admit at
        the next :meth:`run` drain boundary.  Either way the caller
        holds one uniform handle — blocking results, streaming,
        ``cancel()``, and latency telemetry behave the same.

        ``handle`` lets a layer that queued the query *before* the
        warehouse (the TCP server's per-connection admission queue,
        docs/ARCHITECTURE.md section 4) keep the handle it already
        gave its caller: submission timestamps survive the wait and
        cancellation follows the handle across layers.

        Raises:
            QueryError: when the warehouse has been closed.
        """
        self._require_open()
        query = self._stamp_snapshot(query)
        decision = self.router.route(query, force)
        if decision is RoutingDecision.CJOIN:
            if self.executor_config.backend == "process":
                submission = self._enqueue_offline(ROUTE_PROCESS, query, handle)
            else:
                handle = self.service.submit(query, handle)
                submission = Submission(query, handle, ROUTE_SERVICE)
                self._submission_log.append(submission)
        else:
            submission = self._enqueue_offline(ROUTE_BASELINE, query, handle)
        return submission.handle

    def _enqueue_offline(
        self,
        route: str,
        query: StarQuery,
        handle: QueryHandle | None = None,
    ) -> Submission:
        """Queue a submission for the next drain of an offline route."""
        query.validate(self.star)
        submission = Submission(query, handle or QueryHandle(query), route)
        self._offline_queues[route].add(submission)
        self._submission_log.append(submission)
        return submission

    def _require_open(self) -> None:
        if self._closed:
            raise QueryError(
                "warehouse is closed; create a new Warehouse (or use "
                "'with Warehouse(...) as warehouse:' scoping)"
            )

    def submit_sql(
        self,
        sql: str,
        force: RoutingDecision | None = None,
        params=None,
    ) -> QueryHandle:
        """Parse and submit a star query written in SQL.

        ``params`` binds ``?`` / ``:name`` placeholders (a sequence or
        mapping respectively); parsing and binding both complete before
        the pipeline is touched, so a malformed statement or mismatched
        parameters leave no state behind.
        """
        from repro.sql.parser import parse_star_query

        query = parse_star_query(sql, self.star, params)
        return self.submit(query, force)

    def execute_sql(self, sql: str, params=None) -> list[tuple]:
        """Convenience: parse, submit, run, return rows.

        Parse/bind errors raise before anything is submitted — a bad
        statement never strands a queued query in the pipeline.
        """
        from repro.sql.parser import parse_star_query

        query = parse_star_query(sql, self.star, params)
        handle = self.submit(query)
        self.run()
        return handle.results()

    def explain_sql(self, sql: str) -> str:
        """EXPLAIN-style report: routing, per-dimension selectivities,

        and the work-sharing the query would get right now.
        """
        from repro.query.predicate import estimate_selectivity
        from repro.sql.parser import parse_star_query

        query = parse_star_query(sql, self.star)
        lines = [f"star query on {query.fact_table!r}"]
        lines.append(f"routing: {self.router.explain(query)}")
        for name in query.referenced_dimensions():
            dimension = self.catalog.table(name)
            fraction = estimate_selectivity(
                query.predicate_on(name),
                dimension.all_rows(),
                dimension.schema,
            )
            lines.append(
                f"dimension {name}: selects {fraction:.1%} of "
                f"{dimension.row_count} rows"
            )
        if query.fact_predicate is not None:
            lines.append("fact predicate evaluated in the Preprocessor")
        in_flight = self.cjoin.active_query_count
        if in_flight:
            lines.append(
                f"would share the continuous scan with {in_flight} "
                f"in-flight quer{'y' if in_flight == 1 else 'ies'} "
                f"(filter order {self.cjoin.filter_order()})"
            )
        else:
            lines.append("pipeline idle: this query would start a new scan cycle")
        return "\n".join(lines)

    def _stamp_snapshot(self, query: StarQuery) -> StarQuery:
        """Tag the query with the current snapshot when updates are on."""
        if self.transactions is None or query.snapshot_id is not None:
            return query
        return dataclasses.replace(
            query, snapshot_id=self.transactions.current_snapshot().snapshot_id
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start_service(self) -> WarehouseService:
        """Start the always-on background driver; returns the service.

        Afterwards, CJOIN-routed submissions are admitted mid-scan and
        complete in the background — read them with
        ``handle.results(timeout=...)``.  Baseline-routed queries still
        drain inside :meth:`run`.
        """
        return self.service.start()

    def stop_service(self) -> None:
        """Stop the background driver cleanly (idempotent)."""
        self.service.stop()

    # ------------------------------------------------------------------
    # Runtime tuning (DESIGN.md section 13)
    # ------------------------------------------------------------------
    @property
    def tuning(self) -> TuningConfig:
        """The warehouse's current tuning config (immutable snapshot)."""
        with self._tuning_lock:
            return self._tuning

    def reconfigure(self, tuning: TuningConfig) -> TuningConfig:
        """Apply a new tuning config to the *live* warehouse.

        Thread-safe, and safe mid-scan: each knob lands at its natural
        boundary, so results stay reference-equal across a resize —

        * service bounds (``max_in_flight``, ``admission_queue_depth``,
          ``idle_sleep``) apply immediately; queued/registered queries
          are never evicted, the driver's admission pump just sees the
          new limits on its next scan cycle;
        * ``batch_size`` reaches the serial executor at its next batch
          boundary (the immutable-config swap);
        * ``workers`` takes effect at the next process-backend drain —
          shard pools are built per drain, so workers "join/retire" at
          drain boundaries and the worker-count-independent merge
          protocol keeps results identical.

        Returns the applied config.  Raises
        :class:`~repro.errors.ConfigError` before touching anything
        when the config cannot fit this warehouse (e.g. ``workers > 1``
        on the serial backend).
        """
        self._require_open()
        with self._tuning_lock:
            # validates workers-vs-backend up front; only then mutate
            self.executor_config = ExecutorConfig(
                execution=self.executor_config.execution,
                backend=self.executor_config.backend,
                tuning=tuning,
            )
            self.service.reconfigure(tuning)
            self.cjoin.executor.reconfigure(tuning)
            self._tuning = tuning
        return tuning

    def stats(self) -> dict:
        """One JSON-able telemetry + decision-audit snapshot.

        The canonical schema served identically over every transport
        (the local ``Connection.stats()``, the wire STATS frame of
        docs/PROTOCOL.md section 9, and the async client): latency
        percentiles over all routes, pipeline counters, the service's
        live admission state, the current tuning config, and the
        adaptive controller's decision audit when one is enabled.
        """
        pipeline = self.cjoin.stats
        with self._tuning_lock:
            tuning = self._tuning.as_dict()
            autotuner = self.autotuner
        return {
            "latency": self.latency_summary(),
            "pipeline": {
                "tuples_scanned": pipeline.tuples_scanned,
                "tuples_distributed": pipeline.tuples_distributed,
                "probes_total": pipeline.probes_total,
                "queries_admitted": pipeline.queries_admitted,
                "queries_completed": pipeline.queries_completed,
                "queries_cancelled": pipeline.queries_cancelled,
                "reoptimizations": pipeline.reoptimizations,
            },
            "service": self.service.snapshot(),
            "ingest": {
                **self.ingest_buffer.stats(),
                "snapshot_id": self.current_snapshot_id,
            },
            "tuning": tuning,
            "backend": {
                "backend": self.executor_config.backend,
                "execution": self.executor_config.execution,
                "workers": self.executor_config.workers,
                "batch_size": self.executor_config.batch_size,
                "pending_process": self.pending_submissions(ROUTE_PROCESS),
                "pending_baseline": self.pending_submissions(ROUTE_BASELINE),
            },
            "autotune": {
                "enabled": autotuner is not None and autotuner.running,
                "decisions": (
                    [d.as_dict() for d in autotuner.decisions]
                    if autotuner is not None
                    else []
                ),
            },
        }

    def enable_autotuning(
        self, policy=None, interval: float = 0.25, **tuner_kwargs
    ):
        """Start the adaptive right-sizing controller (DESIGN.md §13).

        Spawns the ``warehouse-autotuner`` thread sampling this
        warehouse's own telemetry every ``interval`` seconds and
        applying bounded resize actions through :meth:`reconfigure`.
        Returns the :class:`~repro.engine.autotune.AutoTuner`; every
        decision it takes lands in the audit ring served by
        :meth:`stats`.  Idempotent while running.

        Raises:
            QueryError: when the warehouse has been closed.
        """
        from repro.engine.autotune import AutoTuner

        self._require_open()
        if self.autotuner is not None and self.autotuner.running:
            return self.autotuner
        self.autotuner = AutoTuner(
            self, policy=policy, interval=interval, **tuner_kwargs
        )
        self.autotuner.start()
        return self.autotuner

    def disable_autotuning(self) -> None:
        """Stop the controller thread (idempotent); audit is retained."""
        if self.autotuner is not None:
            self.autotuner.stop()

    def run(self, max_in_flight_baseline: int | None = None) -> None:
        """Run all submitted queries to completion.

        Compatibility wrapper over the service: without a running
        driver this drives the pipeline on the calling thread exactly
        as before; with one, it blocks until the service drains.  The
        offline routes (process shards, baseline engine) drain here at
        their batch boundaries, with the same admission/latency
        telemetry the service records (DESIGN.md section 10).

        Raises:
            QueryError: when the warehouse has been closed (close()
                guarantees queued offline submissions never complete).
        """
        self._require_open()
        # staged writes land first, so offline drains (and the service
        # boundary below, via its cycle hook) query the freshest data
        self.apply_pending_ingest()
        self._drain_offline(
            ROUTE_PROCESS,
            lambda queries: self._execute_process(queries),
        )
        self.service.drain()
        self._drain_offline(
            ROUTE_BASELINE,
            lambda queries: self.baseline.execute_concurrent(
                queries, max_in_flight_baseline
            ),
        )

    def _execute_process(self, queries: list[StarQuery]) -> list[list[tuple]]:
        from repro.cjoin.parallel import execute_process_parallel

        return execute_process_parallel(
            self.catalog,
            self.star,
            queries,
            workers=self.executor_config.workers,
            batch_size=self.executor_config.batch_size,
            max_concurrent=self.max_concurrent,
            kernel=self.executor_config.kernel,
        )

    def _drain_offline(self, route: str, executor) -> None:
        """Drain one offline FIFO through ``executor`` with telemetry.

        The batch is claimed up front (cancelled entries are already
        gone); on failure it is restored intact, so an interrupted
        :meth:`run` can simply be retried with the queries still
        queued.  Each completed submission is stamped and reported as a
        :class:`~repro.cjoin.stats.QueryLatencyRecord` on the shared
        pipeline stats, so :meth:`latency_summary` covers every route.
        """
        queue = self._offline_queues[route]
        batch = queue.take()
        if not batch:
            return
        try:
            for submission in batch:
                submission.mark_admitted(in_flight=len(batch) - 1)
            results = executor([submission.query for submission in batch])
        except BaseException:
            queue.restore(batch)
            raise
        for submission, rows in zip(batch, results):
            submission.handle.complete(rows)
            self._record_offline_latency(submission)

    def _record_offline_latency(self, submission: Submission) -> None:
        """Report an offline completion like a service completion.

        ``query_id`` is 0 (never pipeline-registered) and
        ``scan_cycles`` is 1.0 for the process route (one sharded pass
        over the fact table) or 0.0 for the baseline engine (private
        plans, not the continuous scan).
        """
        handle = submission.handle
        if handle.cancelled or handle.admitted_at is None:
            return
        self.cjoin.stats.record_latency(
            QueryLatencyRecord(
                query_id=0,
                label=submission.label,
                wait_seconds=handle.admitted_at - handle.submitted_at,
                scan_cycles=1.0 if submission.route == ROUTE_PROCESS else 0.0,
                latency_seconds=handle.completed_at - handle.submitted_at,
                admitted_with_in_flight=submission.admitted_with_in_flight,
                scan_position_at_admission=0,
                route=submission.route,
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle and telemetry introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the warehouse down (idempotent).

        Stops the service driver, joins its threads, rejects further
        submissions, and cancels queued offline submissions — so a
        thread blocked iterating one of their handles wakes with
        :class:`~repro.errors.CancelledError` instead of hanging.
        In-flight CJOIN state is preserved exactly as
        :meth:`stop_service` leaves it.
        """
        if self._closed:
            return
        self._closed = True
        self.disable_autotuning()
        self.service.stop()
        # the ingest buffer drains deterministically: everything that
        # can land at this boundary is applied, the remainder (e.g.
        # non-MVCC batches stuck behind still-registered queries) is
        # rejected with a typed IngestError — no write is silently
        # dropped after a clean close() returns
        self.apply_pending_ingest()
        self.ingest_buffer.reject_all(
            "warehouse closed before the batch could be applied"
        )
        for queue in self._offline_queues.values():
            queue.cancel_all()
        if self.durability is not None:
            # a clean shutdown checkpoints: the WAL tail compacts into
            # a fresh snapshot generation, so the next open() loads one
            # image instead of replaying history
            try:
                self._checkpoint()
            finally:
                self.durability.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def submissions(self) -> list[Submission]:
        """Recent accepted submissions, in arrival order (all routes).

        Bounded to the last ``SUBMISSION_LOG_LIMIT`` entries so the
        always-on service never pins unbounded history.
        """
        return list(self._submission_log)

    def pending_submissions(self, route: str) -> int:
        """Queued-but-undrained submissions on an offline route."""
        return len(self._offline_queues[route])

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 latency over completions on *all* routes."""
        return self.cjoin.stats.latency_summary()

    @property
    def latency_records(self):
        """Per-query latency records (service, process, and baseline)."""
        return list(self.cjoin.stats.latency_records)

    # ------------------------------------------------------------------
    # Updates (snapshot isolation, section 3.5)
    # ------------------------------------------------------------------
    def apply_update(
        self,
        inserts: list[tuple] | None = None,
        deletes: list[int] | None = None,
    ) -> int:
        """Commit a fact-table write set; returns the new snapshot id.

        Raises:
            QueryError: when the warehouse was built without updates.
        """
        if self.transactions is None or self.versioned_fact is None:
            raise QueryError(
                "warehouse was created with enable_updates=False"
            )
        snapshot = self.transactions.commit(
            self.versioned_fact, inserts=inserts, deletes=deletes
        )
        return snapshot.snapshot_id

    @property
    def current_snapshot_id(self) -> int:
        """The latest committed snapshot id (0 when updates disabled)."""
        if self.transactions is None:
            return 0
        return self.transactions.current_snapshot().snapshot_id

    # ------------------------------------------------------------------
    # Streaming ingest (DESIGN.md section 15)
    # ------------------------------------------------------------------
    def ingest(
        self,
        fact_rows: list[tuple] | None = None,
        dim_upserts: dict[str, list[tuple]] | None = None,
        owner: object = None,
    ) -> IngestTicket:
        """Stage one write set; returns its ticket immediately.

        ``fact_rows`` append to the fact table; ``dim_upserts`` maps
        dimension names to rows inserted-or-replaced by primary key.
        The whole batch is validated here (so a bad row never fails
        late on the driver thread), staged in the bounded buffer, and
        applied atomically at the next scan boundary — on the service
        driver when one runs, inside :meth:`run` /
        :meth:`apply_pending_ingest` otherwise.  ``owner`` tags the
        batch for connection-scoped discard (server teardown).

        Raises:
            QueryError: when the warehouse has been closed.
            SchemaError: on a row that does not fit its schema, an
                unknown dimension, or an upsert against an unkeyed
                table.
            IngestError: on an empty batch.
            IngestBackpressureError: when the staging buffer is full.
        """
        self._require_open()
        batch = IngestBatch(fact_rows, dim_upserts)
        self._validate_ingest(batch)
        return self.ingest_buffer.offer(batch, owner=owner)

    def writer(self, batch_rows: int = DEFAULT_WRITER_BATCH_ROWS) -> IngestWriter:
        """A batching :class:`~repro.ingest.writer.IngestWriter`.

        One writer per producing thread; ``batch_rows`` sets how many
        rows accumulate locally before a batch is staged.
        """
        self._require_open()
        return IngestWriter(self, batch_rows)

    def _validate_ingest(self, batch: IngestBatch) -> None:
        fact_schema = self.star.fact
        for row in batch.fact_rows:
            fact_schema.validate_row(row)
        for name, rows in batch.dim_upserts.items():
            dimension = self.star.dimensions.get(name)
            if dimension is None:
                raise SchemaError(
                    f"unknown dimension {name!r}; this star joins "
                    f"{sorted(self.star.dimensions)}"
                )
            if dimension.primary_key is None:
                raise SchemaError(
                    f"dimension {name!r} has no primary key to upsert by"
                )
            for row in rows:
                dimension.validate_row(row)

    def apply_pending_ingest(self) -> int:
        """Land every staged batch at this scan boundary; returns rows.

        The scan-boundary hook (installed as the service's
        ``cycle_hook``, also run by :meth:`run` and writer flushes).
        The apply holds the Pipeline Manager's write barrier — so it is
        atomic against admissions and their dimension reads — and
        stalls the Preprocessor around the mutations, so the scan never
        observes a half-written row/version pair.  Under MVCC
        (``enable_updates=True``) fact appends commit through the
        transaction manager and stay invisible to already-stamped
        queries; without MVCC there is no visibility predicate to hide
        new rows behind, so batches wait for a boundary with no
        registered query (drain-boundary semantics).
        """
        buffer = self.ingest_buffer
        if buffer.pending_batches == 0:
            return 0
        manager = self.cjoin.manager
        preprocessor = self.cjoin.preprocessor
        applied_rows = 0
        with self._ingest_apply_lock, manager.write_barrier():
            if (
                self.versioned_fact is None
                and manager.active_query_count > 0
            ):
                return 0
            taken = buffer.take_all()
            if not taken:
                return 0
            preprocessor.stall()
            durability = self.durability
            try:
                for batch, ticket in taken:
                    started = time.perf_counter()
                    try:
                        snapshot_id = self._apply_ingest_batch(batch)
                        generation = buffer.next_generation()
                        if durability is not None:
                            # WAL-append + fsync BEFORE the ack resolves:
                            # once the producer sees applied, the batch
                            # survives any crash (DESIGN.md section 16);
                            # a failed append fails the ticket instead
                            # of acking a write the disk never saw
                            durability.log_batch(
                                batch,
                                generation=generation,
                                snapshot_id=snapshot_id,
                            )
                    except BaseException as error:
                        buffer.record_failure(ticket, error)
                        continue
                    buffer.record_apply(
                        ticket,
                        snapshot_id,
                        time.perf_counter() - started,
                        generation=generation,
                    )
                    applied_rows += ticket.rows
            finally:
                preprocessor.resume()
        return applied_rows

    def _apply_ingest_batch(self, batch: IngestBatch) -> int:
        """Apply one validated batch; returns the commit snapshot id.

        Dimension upserts land first (in-place by primary key, so scan
        order never changes); queries admitted after this boundary see
        the whole write set, in-flight queries keep the dimension hash
        tables they materialized at admission.
        """
        for name, rows in batch.dim_upserts.items():
            table = self.catalog.table(name)
            for row in rows:
                table.upsert(row)
        if batch.fact_rows:
            if self.versioned_fact is not None:
                snapshot = self.transactions.commit(
                    self.versioned_fact, inserts=batch.fact_rows
                )
                return snapshot.snapshot_id
            fact_table = self.catalog.table(self.star.fact.name)
            for row in batch.fact_rows:
                fact_table.insert(row)
        return self.current_snapshot_id
