"""A left-deep hash-join pipeline for one star query.

The plan shape the paper verified in both comparison systems: the
fact table is the outer (probe) relation; each referenced dimension
contributes one in-memory hash table built from its selected tuples.
A fact tuple survives iff every referenced dimension has a matching,
predicate-satisfying build row.

The probe loop reuses CJOIN's output operators by presenting the same
duck-typed surface (``row`` + ``dim_rows``), so result normalization
is identical across engines.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.cjoin.aggregation import make_output_operator
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.mvcc import Snapshot, VersionedTable
from repro.storage.scan import TableScan


class _JoinedTuple:
    """Duck-typed fact tuple carrier matching FactTuple's surface."""

    __slots__ = ("row", "dim_rows")

    def __init__(self, row: tuple) -> None:
        self.row = row
        self.dim_rows: dict[str, tuple] = {}


class HashJoinPipeline:
    """Build-then-probe evaluation of one star query."""

    def __init__(
        self,
        query: StarQuery,
        catalog: Catalog,
        star: StarSchema,
        buffer_pool: BufferPool,
        dimension_order: list[str] | None = None,
        versioned_fact: VersionedTable | None = None,
    ) -> None:
        query.validate(star)
        self.query = query
        self.catalog = catalog
        self.star = star
        self.buffer_pool = buffer_pool
        self.versioned_fact = versioned_fact
        self.dimension_order = (
            list(dimension_order)
            if dimension_order is not None
            else query.referenced_dimensions()
        )
        self._built = False
        self._hash_tables: dict[str, dict] = {}
        self._fk_indexes: dict[str, int] = {}
        #: build-side sizes, exposed for memory accounting
        self.build_rows = 0

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Scan each referenced dimension, hash its selected tuples."""
        for name in self.dimension_order:
            dimension = self.catalog.table(name)
            matcher = self.query.predicate_on(name).bind(dimension.schema)
            key_index = dimension.schema.column_index(
                dimension.schema.primary_key
            )
            table: dict = {}
            for row in TableScan(dimension, self.buffer_pool):
                if matcher(row):
                    table[row[key_index]] = row
            self._hash_tables[name] = table
            self._fk_indexes[name] = self.star.fact_fk_index(name)
            self.build_rows += len(table)
        self._built = True

    # ------------------------------------------------------------------
    # Probe phase
    # ------------------------------------------------------------------
    def probe_pages(self, start_page: int = 0) -> Iterator[int]:
        """Drive the fact scan one page at a time, yielding after each.

        Yielding per page lets the engine interleave several plans over
        one buffer pool — the concurrency model whose I/O pattern the
        experiments measure.  Callers must exhaust the iterator.

        Args:
            start_page: first page to read; the scan wraps circularly
                and still covers every page exactly once.  Hash
                aggregation is order-insensitive, so results are
                unaffected.  Non-zero starts model PostgreSQL's
                synchronized scans, where a new scan attaches at the
                reported position of one already underway.
        """
        if not self._built:
            self.build()
        query = self.query
        star = self.star
        operator = make_output_operator(query, star)
        self._operator = operator
        fact_matcher = None
        if query.fact_predicate is not None:
            fact_matcher = query.fact_predicate.bind(star.fact)
        snapshot = None
        if query.snapshot_id is not None and self.versioned_fact is not None:
            snapshot = Snapshot(query.snapshot_id)
        fact = self.catalog.table(query.fact_table)
        heap = fact.heap
        rows_per_page = heap.rows_per_page
        probes = [
            (name, self._fk_indexes[name], self._hash_tables[name])
            for name in self.dimension_order
        ]
        page_count = heap.page_count
        start_page = start_page % page_count if page_count else 0
        page_order = [
            (start_page + offset) % page_count for offset in range(page_count)
        ]
        for page_id in page_order:
            page = self.buffer_pool.fetch(heap, page_id)
            for slot_id, row in enumerate(page.rows):
                if snapshot is not None:
                    position = page_id * rows_per_page + slot_id
                    if not snapshot.can_see(
                        self.versioned_fact.version_at(position)
                    ):
                        continue
                if fact_matcher is not None and not fact_matcher(row):
                    continue
                joined = _JoinedTuple(row)
                survived = True
                for name, fk_index, hash_table in probes:
                    dim_row = hash_table.get(row[fk_index])
                    if dim_row is None:
                        survived = False
                        break
                    joined.dim_rows[name] = dim_row
                if survived:
                    operator.consume(joined)
            yield page_id

    def execute(self) -> list[tuple]:
        """Run the full plan to completion; return canonical results."""
        for _ in self.probe_pages():
            pass
        return self._operator.results()

    def results(self) -> list[tuple]:
        """Results after :meth:`probe_pages` is exhausted."""
        return self._operator.results()
