"""The query-at-a-time engine: one private plan per query.

Concurrency model: ``execute_concurrent`` keeps up to ``n`` plans in
flight and round-robins the shared buffer pool between their fact
scans, one page per turn.  This is the mutually-unaware interleaving
the paper blames for random I/O: with several scans at different
offsets, consecutive disk reads alternate between distant pages, which
:class:`~repro.storage.iostats.IOStats` classifies as random.

Profiles:

* ``system_x`` — private scans only (a commercial row store);
* ``postgresql`` — ``shared_scans=True``: plans arriving while a scan
  is underway attach to the *leader's* cursor (synchronized scans), so
  their page requests coincide and stay sequential; work above the
  scan (hash tables, probing) is still duplicated per query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.hashjoin import HashJoinPipeline
from repro.baseline.optimizer import order_dimensions_by_selectivity
from repro.catalog.catalog import Catalog
from repro.catalog.schema import StarSchema
from repro.errors import QueryError
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.mvcc import VersionedTable


@dataclass(frozen=True)
class EngineProfile:
    """Tuning knobs distinguishing the two comparison systems."""

    name: str
    shared_scans: bool

    @classmethod
    def system_x(cls) -> "EngineProfile":
        """The commercial row store profile (private scans)."""
        return cls(name="system_x", shared_scans=False)

    @classmethod
    def postgresql(cls) -> "EngineProfile":
        """PostgreSQL with synchronized (shared) scans enabled."""
        return cls(name="postgresql", shared_scans=True)


class QueryAtATimeEngine:
    """Executes star queries with one conventional plan each."""

    def __init__(
        self,
        catalog: Catalog,
        star: StarSchema,
        buffer_pool: BufferPool,
        profile: EngineProfile | None = None,
        versioned_fact: VersionedTable | None = None,
    ) -> None:
        self.catalog = catalog
        self.star = star
        self.buffer_pool = buffer_pool
        self.profile = profile if profile is not None else EngineProfile.system_x()
        self.versioned_fact = versioned_fact
        #: total fact pages fetched across all executed plans
        self.fact_pages_fetched = 0
        #: last fact page any plan fetched (synchronized-scan cursor)
        self._scan_position = 0

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------
    def make_plan(self, query: StarQuery) -> HashJoinPipeline:
        """Build (but do not run) the plan for one query."""
        order = order_dimensions_by_selectivity(query, self.catalog)
        return HashJoinPipeline(
            query,
            self.catalog,
            self.star,
            self.buffer_pool,
            dimension_order=order,
            versioned_fact=self.versioned_fact,
        )

    def execute(self, query: StarQuery) -> list[tuple]:
        """Run one query to completion."""
        plan = self.make_plan(query)
        results = plan.execute()
        self.fact_pages_fetched += self.catalog.table(query.fact_table).page_count
        return results

    # ------------------------------------------------------------------
    # Concurrent execution
    # ------------------------------------------------------------------
    def execute_concurrent(
        self, queries: list[StarQuery], max_in_flight: int | None = None
    ) -> list[list[tuple]]:
        """Run ``queries`` with up to ``max_in_flight`` interleaved plans.

        Results are returned in submission order.  The closed-loop
        admission mirrors the paper's methodology: the first ``n``
        queries start together; each completion admits the next.
        """
        if not queries:
            return []
        n = max_in_flight if max_in_flight is not None else len(queries)
        if n < 1:
            raise QueryError("max_in_flight must be >= 1")
        results: list[list[tuple] | None] = [None] * len(queries)
        next_index = 0
        in_flight: list[tuple[int, object]] = []  # (query index, page iterator)

        def admit() -> None:
            nonlocal next_index
            while next_index < len(queries) and len(in_flight) < n:
                plan = self.make_plan(queries[next_index])
                plan.build()
                iterator = self._page_iterator(plan)
                in_flight.append((next_index, (plan, iterator)))
                next_index += 1

        admit()
        while in_flight:
            finished: list[int] = []
            for slot, (query_index, (plan, iterator)) in enumerate(in_flight):
                # Plans progress at different rates in real systems
                # (different predicates, CPU share, OS scheduling); a
                # deterministic unequal quantum reproduces the cursor
                # drift that turns concurrent scans into random I/O.
                quantum = 1 + query_index % 3
                try:
                    for _ in range(quantum):
                        self._scan_position = next(iterator)
                        self.fact_pages_fetched += 1
                except StopIteration:
                    results[query_index] = plan.results()
                    finished.append(slot)
            for slot in reversed(finished):
                in_flight.pop(slot)
            admit()
        return results

    def _page_iterator(self, plan: HashJoinPipeline):
        if not self.profile.shared_scans:
            return plan.probe_pages(start_page=0)
        # Synchronized scans: a new plan attaches at the position an
        # existing scan last reported and wraps around, so concurrent
        # cursors cluster and followers ride the leader's buffer pages.
        return plan.probe_pages(start_page=self._scan_position)
