"""Join-order selection for the baseline engine.

The classical static heuristic: probe the most selective dimension
first, so fact tuples die as early as possible.  Selectivity is
measured exactly over the (small) dimension tables — the stand-in for
the optimizer statistics the paper's comparison systems were tuned
with (section 6.1.1).
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.query.predicate import estimate_selectivity
from repro.query.star import StarQuery


def order_dimensions_by_selectivity(
    query: StarQuery, catalog: Catalog
) -> list[str]:
    """Referenced dimensions ordered most-selective-first."""
    selectivities = []
    for name in query.referenced_dimensions():
        dimension = catalog.table(name)
        fraction = estimate_selectivity(
            query.predicate_on(name),
            dimension.all_rows(),
            dimension.schema,
        )
        selectivities.append((fraction, name))
    selectivities.sort()
    return [name for _, name in selectivities]
