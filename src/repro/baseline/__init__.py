"""The query-at-a-time baseline engine.

The conventional architecture CJOIN is evaluated against (paper
section 6.1.1): each star query gets its own physical plan — a
pipeline of hash joins filtering a private scan of the fact table —
with no work sharing beyond what the buffer pool provides.  Both
commercial "System X" and PostgreSQL used exactly this plan shape in
the paper's experiments; the engine's ``shared_scans`` flag models
PostgreSQL's synchronized-scan feature.
"""

from repro.baseline.engine import EngineProfile, QueryAtATimeEngine
from repro.baseline.hashjoin import HashJoinPipeline
from repro.baseline.optimizer import order_dimensions_by_selectivity

__all__ = [
    "EngineProfile",
    "HashJoinPipeline",
    "QueryAtATimeEngine",
    "order_dimensions_by_selectivity",
]
