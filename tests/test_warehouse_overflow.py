"""Admission overflow queueing in the Warehouse."""

from repro.engine import Warehouse
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[AggregateSpec("count")],
    )


def test_queries_beyond_maxconc_queue_and_complete(tiny_star):
    catalog, star = tiny_star
    warehouse = Warehouse(catalog, star, max_concurrent=2)
    cities = ["lyon", "paris", "nice", "lyon", "paris", "nice", "lyon"]
    handles = [warehouse.submit(city_query(city)) for city in cities]
    # only two slots exist; five queries are waiting
    assert warehouse.cjoin.active_query_count == 2
    warehouse.run()
    for city, handle in zip(cities, handles):
        assert handle.done
        assert handle.results() == evaluate_star_query(
            city_query(city), catalog
        )


def test_overflow_preserves_submission_order_semantics(tiny_star):
    catalog, star = tiny_star
    warehouse = Warehouse(catalog, star, max_concurrent=1, enable_updates=True)
    before = warehouse.submit_sql("SELECT COUNT(*) FROM sales")   # admitted
    queued = warehouse.submit_sql("SELECT COUNT(*) FROM sales")   # queued
    warehouse.apply_update(inserts=[(1, 10, 1, 5)])
    after = warehouse.submit_sql("SELECT COUNT(*) FROM sales")    # queued
    warehouse.run()
    # snapshots were stamped at SUBMISSION time, not admission time
    assert before.results() == [(12,)]
    assert queued.results() == [(12,)]
    assert after.results() == [(13,)]


def test_no_overflow_when_capacity_suffices(tiny_star):
    catalog, star = tiny_star
    warehouse = Warehouse(catalog, star, max_concurrent=8)
    handles = [warehouse.submit(city_query("lyon")) for _ in range(4)]
    assert warehouse.cjoin.active_query_count == 4
    warehouse.run()
    assert all(handle.done for handle in handles)
