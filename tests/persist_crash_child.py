"""Subprocess half of the crash matrix (not a pytest module).

``test_persistence.py`` launches this script with ``sys.executable``
to die — via ``os._exit`` through ``persist.CRASH_HOOK`` — at an
exact checkpoint inside a WAL append or a snapshot save, simulating
power loss at every ordering-sensitive point.  The parent then
reopens the data directory and asserts the durability contract: every
batch this script reported ``ACKED`` must be visible after recovery,
and no batch may ever be half-applied.

Usage::

    python tests/persist_crash_child.py ingest <data_dir> <crash_point> <n_ok>
    python tests/persist_crash_child.py snapshot <data_dir> <crash_point>

``ingest`` opens the warehouse, applies ``n_ok`` single-row batches
(printing ``ACKED <marker>`` for each durable ack), then installs the
crash hook and stages one more batch whose apply dies at
``crash_point``.  ``snapshot`` applies two acked batches, then dies at
``crash_point`` inside ``Warehouse.save()``.

Exit code 137 signals the intended crash; anything else is a bug in
the harness or the library.
"""

from __future__ import annotations

import os
import sys

#: Markers (f_total values) for batches acked before the crash.
OK_MARKERS = [1001, 1002, 1003, 1004]

#: Marker of the batch in flight when the process dies.
CRASH_MARKER = 1999


def fact_row(marker: int) -> tuple:
    # tiny star fact: (f_store, f_product, f_qty, f_total)
    return (1, 10, 1, marker)


def install_hook(crash_point: str) -> None:
    from repro.storage import persist

    def hook(point: str) -> None:
        if point == crash_point:
            sys.stdout.flush()
            os._exit(137)

    persist.CRASH_HOOK = hook


def apply_one(warehouse, marker: int) -> None:
    ticket = warehouse.ingest(fact_rows=[fact_row(marker)])
    warehouse.apply_pending_ingest()
    ticket.result(timeout=5)
    print(f"ACKED {marker}", flush=True)


def main() -> int:
    mode, data_dir, crash_point = sys.argv[1], sys.argv[2], sys.argv[3]
    from repro import Warehouse

    warehouse = Warehouse.open(data_dir)
    if mode == "ingest":
        n_ok = int(sys.argv[4])
        for marker in OK_MARKERS[:n_ok]:
            apply_one(warehouse, marker)
        install_hook(crash_point)
        apply_one(warehouse, CRASH_MARKER)
    elif mode == "snapshot":
        for marker in OK_MARKERS[:2]:
            apply_one(warehouse, marker)
        install_hook(crash_point)
        warehouse.save()
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    # reaching here means the crash point never fired
    print("NO_CRASH", flush=True)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
