"""Tests for SQL rendering, including the render->parse round trip."""

import pytest
from hypothesis import given, settings

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison, InList, Not, Or
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.sql.parser import parse_star_query
from repro.sql.render import render_star_query
from repro.ssb.queries import ALL_QUERY_NAMES, ssb_query
from repro.ssb.schema import ssb_star_schema
from tests.test_properties import star_queries, warehouses


class TestRenderBasics:
    def test_simple_query(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_city", "=", "lyon")},
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("sum", "sales", "f_total", alias="t")],
        )
        sql = render_star_query(query, star)
        assert "SELECT store.s_city, SUM(sales.f_total) AS t" in sql
        assert "sales.f_store = store.s_id" in sql
        assert "store.s_city = 'lyon'" in sql
        assert sql.endswith("GROUP BY store.s_city")

    def test_string_escaping(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Comparison("s_city", "=", "l'yon")
            },
            aggregates=[AggregateSpec("count")],
        )
        sql = render_star_query(query, star)
        assert "'l''yon'" in sql
        parse_star_query(sql, star)  # must lex back

    def test_negative_literals_round_trip(self, tiny_star):
        catalog, star = tiny_star
        query = StarQuery.build(
            "sales",
            fact_predicate=Comparison("f_qty", ">", -5),
            aggregates=[AggregateSpec("count")],
        )
        sql = render_star_query(query, star)
        reparsed = parse_star_query(sql, star)
        assert evaluate_star_query(reparsed, catalog) == evaluate_star_query(
            query, catalog
        )

    def test_compound_predicates_parenthesized(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Or(
                    Comparison("s_city", "=", "lyon"),
                    Not(Comparison("s_size", ">", 100)),
                )
            },
            aggregates=[AggregateSpec("count")],
        )
        sql = render_star_query(query, star)
        assert "(store.s_city = 'lyon' OR NOT store.s_size > 100)" in sql

    def test_in_list_rendering(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "product": InList("p_category", frozenset(["food", "toys"]))
            },
            aggregates=[AggregateSpec("count")],
        )
        sql = render_star_query(query, star)
        assert "product.p_category IN ('food', 'toys')" in sql

    def test_empty_select_list_rejected(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales", select=[]
        )
        with pytest.raises(QueryError):
            render_star_query(query, star)


class TestSSBQueriesRoundTrip:
    @pytest.mark.parametrize("name", ALL_QUERY_NAMES)
    def test_all_thirteen_render_and_reparse(self, name):
        star = ssb_star_schema()
        query = ssb_query(name)
        sql = render_star_query(query, star)
        reparsed = parse_star_query(sql, star)
        assert set(reparsed.referenced_dimensions()) == set(
            query.referenced_dimensions()
        )
        assert reparsed.group_by == query.group_by
        assert len(reparsed.aggregates) == len(query.aggregates)

    def test_round_trip_preserves_results(self, ssb_small):
        catalog, star = ssb_small
        for name in ("Q1.1", "Q2.1", "Q3.2", "Q4.2"):
            query = ssb_query(name)
            reparsed = parse_star_query(render_star_query(query, star), star)
            assert evaluate_star_query(reparsed, catalog) == (
                evaluate_star_query(query, catalog)
            ), name


@settings(max_examples=60, deadline=None)
@given(warehouse=warehouses(), query=star_queries())
def test_render_parse_round_trip_preserves_results(warehouse, query):
    """Property: rendering then parsing never changes query results."""
    catalog, star = warehouse
    if not query.select and not query.aggregates:
        return  # unrenderable degenerate shape
    sql = render_star_query(query, star)
    reparsed = parse_star_query(sql, star)
    assert evaluate_star_query(reparsed, catalog) == evaluate_star_query(
        query, catalog
    )
