"""Fault injection against both warehouse servers (ISSUE 6 satellite).

Every :mod:`tests.netchaos` scenario runs against the threaded
:class:`~repro.server.tcp.WarehouseServer` AND the asyncio
:class:`~repro.server.async_tcp.AsyncWarehouseServer`, and every run
asserts the same postconditions:

- the connection's handler thread / task set is reclaimed (no leaks,
  checked via ``threading.enumerate`` and the async server's
  ``leaked_tasks`` ledger);
- the warehouse slots the faulty client held are freed — each of its
  submissions ends done or cancelled within one scan cycle;
- the server still serves: a well-behaved client completes a query
  end to end after the chaos.

Plus the ISSUE 6 client-side regression: a server dying mid-stream
surfaces a typed ``OperationalError`` from cursor pages and
``rows_so_far()``, never a raw ``ConnectionResetError`` or a hang.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.client import OperationalError
from repro.engine import Warehouse
from repro.server import AsyncWarehouseServer, WarehouseServer

import netchaos
from tests.conftest import make_tiny_star

SERVER_CLASSES = {
    "threaded": WarehouseServer,
    "async": AsyncWarehouseServer,
}


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture(params=sorted(SERVER_CLASSES))
def chaos_server(request, tiny_star):
    """One server of each flavor, with leak bookkeeping around it."""
    catalog, star = tiny_star
    before = set(threading.enumerate())
    server_class = SERVER_CLASSES[request.param]
    server = server_class(
        Warehouse(catalog, star), owns_warehouse=True
    ).start()
    yield server
    server.stop()
    # the invariant every scenario shares: nothing leaked
    assert wait_until(
        lambda: set(threading.enumerate()) - before == set()
    ), f"leaked threads: {set(threading.enumerate()) - before}"
    if isinstance(server, AsyncWarehouseServer):
        assert server.leaked_tasks == []


@pytest.mark.parametrize("scenario", sorted(netchaos.SCENARIOS))
def test_scenario_leaves_no_leaks(chaos_server, scenario):
    """Chaos, then: connections reclaimed, slots freed, still serving."""
    netchaos.SCENARIOS[scenario](chaos_server.address)
    # the faulty connection tears down completely
    assert wait_until(lambda: chaos_server.connection_count == 0)
    # every submission the faulty client managed to place is not
    # holding a slot: done or cancelled within one scan cycle
    warehouse = chaos_server.warehouse
    assert wait_until(
        lambda: all(
            submission.done or submission.cancelled
            for submission in warehouse.submissions
        )
    )
    # the server still serves a polite client end to end
    with repro.connect(chaos_server.url) as conn:
        assert conn.execute(netchaos.COUNT_SQL).fetchall() == [(12,)]
    assert wait_until(lambda: chaos_server.connection_count == 0)


def test_chaos_does_not_disturb_a_live_neighbor(chaos_server):
    """A victim connection mid-session sees none of the chaos."""
    with repro.connect(chaos_server.url) as victim:
        cursor = victim.execute(netchaos.COUNT_SQL)
        netchaos.torn_body(chaos_server.address)
        netchaos.garbage_after_hello(chaos_server.address)
        netchaos.disconnect_mid_execute(chaos_server.address)
        assert cursor.fetchall() == [(12,)]
        # and the victim can keep going afterwards
        assert victim.execute(netchaos.COUNT_SQL).fetchall() == [(12,)]


class TestServerDiesMidStream:
    """ISSUE 6 fix: typed OperationalError, promptly, not a raw
    ConnectionResetError or a hang, when the server vanishes."""

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_fetch_surfaces_operational_error(self, tiny_star, flavor):
        catalog, star = tiny_star
        server = SERVER_CLASSES[flavor](
            Warehouse(catalog, star), owns_warehouse=True
        ).start()
        conn = repro.connect(server.url)
        cursor = conn.execute(netchaos.COUNT_SQL)
        server.stop()
        started = time.monotonic()
        with pytest.raises(OperationalError):
            cursor.fetchall()
        # fail-fast, not a fetch_timeout hang
        assert time.monotonic() - started < 30.0
        # every later page/partial fails the same typed way
        with pytest.raises(OperationalError):
            cursor.fetchall()
        with pytest.raises(OperationalError):
            cursor.rows_so_far()
        conn.close()  # teardown is best-effort, never raises

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_rows_so_far_surfaces_operational_error(
        self, tiny_star, flavor
    ):
        catalog, star = tiny_star
        server = SERVER_CLASSES[flavor](
            Warehouse(catalog, star), owns_warehouse=True
        ).start()
        conn = repro.connect(server.url)
        cursor = conn.execute(netchaos.COUNT_SQL)
        assert cursor.rows_so_far() is not None  # transport healthy
        server.stop()
        with pytest.raises(OperationalError):
            cursor.rows_so_far()
        conn.close()


class TestServerRestartMidSession:
    """ISSUE 10 satellite: kill and restart both server flavors
    against the same durable ``data_dir``.  Reconnecting clients see
    every acked pre-restart ingest; clients holding dead sessions fail
    with the typed mid-stream error; nothing leaks across the
    restart — threads, tasks, or warehouse slots."""

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_restart_preserves_acked_ingest(self, tmp_path, flavor):
        server_class = SERVER_CLASSES[flavor]
        before = set(threading.enumerate())
        data_dir = str(tmp_path / "wh")
        catalog, star = make_tiny_star()
        server = server_class(
            Warehouse(catalog, star, data_dir=data_dir),
            owns_warehouse=True,
        ).start()
        new_server = None
        try:
            # a client mid-session when the server goes down
            stranded = repro.connect(server.url)
            assert (
                stranded.execute(netchaos.COUNT_SQL).fetchall() == [(12,)]
            )
            receipt = stranded.ingest(fact_rows=[(1, 10, 1, 4242)])
            assert receipt["rows"] == 1
            in_flight = stranded.execute(netchaos.COUNT_SQL)

            def restart():
                nonlocal new_server
                # graceful stop: Warehouse.close() checkpoints, so the
                # acked batch is on disk either via the WAL (fsynced
                # before the ack) or the close-time snapshot.  The
                # crash-crash variants live in tests/test_persistence.py.
                server.stop()
                new_server = server_class(
                    Warehouse.open(data_dir), owns_warehouse=True
                ).start()
                return new_server.address

            observation = netchaos.server_restart_mid_session(
                server.address, restart=restart
            )
            assert observation["old_socket_dead"]
            assert observation["rows_before"] in ([[12]], [[13]])
            assert observation["rows_after"] == [[13]]

            # the stranded client fails the typed way, never raw/hung
            with pytest.raises(OperationalError):
                in_flight.fetchall()
            with pytest.raises(OperationalError):
                stranded.execute(netchaos.COUNT_SQL).fetchall()
            stranded.close()  # best-effort teardown, never raises

            # a reconnecting client sees the post-ingest dataset and a
            # generation at least as new as its last receipt
            with repro.connect(new_server.url) as conn:
                assert (
                    conn.execute(netchaos.COUNT_SQL).fetchall() == [(13,)]
                )
                assert conn.ingest_generation() >= receipt["generation"]
        finally:
            server.stop()
            if new_server is not None:
                new_server.stop()
        # nothing leaked across the restart, either server generation
        assert wait_until(
            lambda: set(threading.enumerate()) - before == set()
        ), f"leaked threads: {set(threading.enumerate()) - before}"
        for generation in (server, new_server):
            if isinstance(generation, AsyncWarehouseServer):
                assert generation.leaked_tasks == []


class TestAsyncClientFaults:
    """The async client fails typed too when its server vanishes."""

    def test_pending_requests_fail_typed(self, tiny_star):
        import asyncio

        catalog, star = tiny_star
        server = AsyncWarehouseServer(
            Warehouse(catalog, star), owns_warehouse=True
        ).start()

        async def scenario() -> None:
            pool = await repro.connect_async(server.url, pool_size=2)
            cursor = await pool.execute(netchaos.COUNT_SQL)
            assert await cursor.fetchall() == [(12,)]
            server.stop()
            with pytest.raises(OperationalError):
                await (await pool.cursor().execute(netchaos.COUNT_SQL)
                       ).fetchall()
            # the pool closes cleanly even over dead sockets
            await pool.close()

        asyncio.run(scenario())
        assert server.leaked_tasks == []
