"""Whole-system integration: all 13 SSB queries through the SQL path.

render(benchmark query) -> parse -> route -> CJOIN -> results must
equal the reference evaluator and the forced-baseline path, on a
shared warehouse, for every query the benchmark defines.
"""

import pytest

from repro.engine import RoutingDecision, Warehouse
from repro.query.reference import evaluate_star_query
from repro.sql.render import render_star_query
from repro.ssb.queries import ALL_QUERY_NAMES, ssb_query


@pytest.fixture(scope="module")
def warehouse():
    return Warehouse.from_ssb(scale_factor=0.0005, seed=11)


@pytest.mark.parametrize("name", ALL_QUERY_NAMES)
def test_every_ssb_query_through_sql_and_both_engines(warehouse, name):
    query = ssb_query(name)
    sql = render_star_query(query, warehouse.star)
    cjoin_handle = warehouse.submit_sql(sql)
    baseline_handle = warehouse.submit_sql(
        sql, force=RoutingDecision.BASELINE
    )
    warehouse.run()
    expected = evaluate_star_query(query, warehouse.catalog)
    assert cjoin_handle.results() == expected, name
    assert baseline_handle.results() == expected, name


def test_all_queries_in_one_shared_batch(warehouse):
    """All 13 queries concurrently on one scan, via SQL."""
    handles = {}
    for name in ALL_QUERY_NAMES:
        sql = render_star_query(ssb_query(name), warehouse.star)
        handles[name] = warehouse.submit_sql(sql)
    scanned_before = warehouse.cjoin.stats.tuples_scanned
    warehouse.run()
    scanned = warehouse.cjoin.stats.tuples_scanned - scanned_before
    fact_rows = warehouse.catalog.table("lineorder").row_count
    # 13 queries, at most ~one extra partial cycle of shared scanning
    assert scanned <= 2 * fact_rows + 1
    for name, handle in handles.items():
        expected = evaluate_star_query(ssb_query(name), warehouse.catalog)
        assert handle.results() == expected, name
