"""Shared fixtures: a hand-written tiny star and a milli-scale SSB."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator
from repro.storage.table import Table

INT = DataType.INT
STRING = DataType.STRING
FLOAT = DataType.FLOAT


def make_tiny_star() -> tuple[Catalog, StarSchema]:
    """A small retail star with hand-checkable data.

    sales(fact): 12 rows over store (3 rows) and product (4 rows);
    rows_per_page=4 so the fact spans multiple pages.
    """
    store = TableSchema(
        "store",
        [
            Column("s_id", INT),
            Column("s_city", STRING),
            Column("s_size", INT),
        ],
        primary_key="s_id",
    )
    product = TableSchema(
        "product",
        [
            Column("p_id", INT),
            Column("p_category", STRING),
            Column("p_price", INT),
        ],
        primary_key="p_id",
    )
    sales = TableSchema(
        "sales",
        [
            Column("f_store", INT),
            Column("f_product", INT),
            Column("f_qty", INT),
            Column("f_total", INT),
        ],
        foreign_keys=[
            ForeignKey("f_store", "store", "s_id"),
            ForeignKey("f_product", "product", "p_id"),
        ],
    )
    star = StarSchema(
        fact=sales, dimensions={"store": store, "product": product}
    )
    catalog = Catalog()
    catalog.register_table(
        Table.from_rows(
            store,
            [
                (1, "lyon", 100),
                (2, "paris", 250),
                (3, "nice", 50),
            ],
            rows_per_page=4,
        )
    )
    catalog.register_table(
        Table.from_rows(
            product,
            [
                (10, "food", 5),
                (20, "toys", 30),
                (30, "food", 8),
                (40, "books", 12),
            ],
            rows_per_page=4,
        )
    )
    catalog.register_table(
        Table.from_rows(
            sales,
            [
                (1, 10, 2, 10),
                (1, 20, 1, 30),
                (2, 10, 5, 25),
                (2, 30, 3, 24),
                (3, 40, 1, 12),
                (1, 30, 2, 16),
                (2, 20, 2, 60),
                (3, 10, 4, 20),
                (1, 40, 3, 36),
                (2, 40, 1, 12),
                (3, 30, 2, 16),
                (1, 10, 1, 5),
            ],
            rows_per_page=4,
        )
    )
    catalog.register_star(star)
    return catalog, star


@pytest.fixture
def tiny_star() -> tuple[Catalog, StarSchema]:
    """Fresh tiny retail star per test."""
    return make_tiny_star()


@pytest.fixture(scope="session")
def ssb_small() -> tuple[Catalog, StarSchema]:
    """A shared milli-scale SSB instance (~3000 fact rows).

    Session-scoped and treated as read-only by tests.
    """
    return load_ssb(scale_factor=0.0005, seed=11)


@pytest.fixture(scope="session")
def ssb_workload(ssb_small):
    """A deterministic 12-query workload over the shared instance."""
    catalog, _ = ssb_small
    generator = ssb_workload_generator(seed=2, catalog=catalog)
    return generator.generate(12, selectivity=0.1)
