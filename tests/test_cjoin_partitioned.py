"""Tests for CJOIN over a range-partitioned fact table (section 5)."""


from repro.catalog.catalog import Catalog
from repro.cjoin.partitioned import (
    PartitionedCJoinOperator,
    PartitionedContinuousScan,
    as_catalog_table,
)
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between, Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.partition import PartitionedTable, RangePartitioning
from tests.conftest import make_tiny_star


def partitioned_setup():
    """The tiny star with its fact range-partitioned on f_qty."""
    base_catalog, star = make_tiny_star()
    rows = base_catalog.table("sales").all_rows()
    partitioning = RangePartitioning("f_qty", (2, 4))  # 3 partitions
    partitioned = PartitionedTable.from_rows(
        star.fact, partitioning, rows, rows_per_page=4
    )
    catalog = Catalog()
    for name in ("store", "product"):
        catalog.register_table(base_catalog.table(name))
    catalog.register_table(as_catalog_table(partitioned))
    catalog.register_star(star)
    return catalog, star, partitioned


def count_query(fact_predicate=None):
    return StarQuery.build(
        "sales",
        fact_predicate=fact_predicate,
        aggregates=[AggregateSpec("count"), AggregateSpec("sum", "sales", "f_total")],
    )


class TestPartitionedScan:
    def test_covers_pinned_partitions_cyclically(self):
        _, _, partitioned = partitioned_setup()
        scan = PartitionedContinuousScan(partitioned, BufferPool(16))
        scan.acquire_partitions({0, 2})
        span0 = partitioned.partition_span(0)
        span2 = partitioned.partition_span(2)
        expected = set(range(*span0)) | set(range(*span2))
        seen = [scan.next()[0] for _ in range(len(expected))]
        assert set(seen) == expected
        # second cycle repeats the same order
        second = [scan.next()[0] for _ in range(len(expected))]
        assert second == seen

    def test_idle_without_pins(self):
        _, _, partitioned = partitioned_setup()
        scan = PartitionedContinuousScan(partitioned, BufferPool(16))
        assert scan.next() is None

    def test_release_shrinks_union(self):
        _, _, partitioned = partitioned_setup()
        scan = PartitionedContinuousScan(partitioned, BufferPool(16))
        scan.acquire_partitions({0, 1})
        scan.acquire_partitions({1})
        scan.release_partitions({0, 1})
        assert scan.needed_partitions() == [1]

    def test_partition_of_position(self):
        _, _, partitioned = partitioned_setup()
        scan = PartitionedContinuousScan(partitioned, BufferPool(16))
        for partition_id in range(3):
            start, end = partitioned.partition_span(partition_id)
            if end > start:
                assert scan.partition_of_position(start) == partition_id
                assert scan.partition_of_position(end - 1) == partition_id


class TestPartitionedOperator:
    def test_unpredicated_query_scans_everything_correctly(self):
        catalog, star, partitioned = partitioned_setup()
        operator = PartitionedCJoinOperator(catalog, star, partitioned)
        query = count_query()
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_pruned_query_matches_reference(self):
        catalog, star, partitioned = partitioned_setup()
        operator = PartitionedCJoinOperator(catalog, star, partitioned)
        query = count_query(Between("f_qty", 1, 2))  # only partition 0
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_pruned_query_scans_fewer_tuples(self):
        catalog, star, partitioned = partitioned_setup()
        pruned_operator = PartitionedCJoinOperator(catalog, star, partitioned)
        pruned_operator.execute(count_query(Comparison("f_qty", ">=", 5)))
        pruned_tuples = pruned_operator.stats.tuples_scanned

        full_operator = PartitionedCJoinOperator(catalog, star, partitioned)
        full_operator.execute(count_query())
        full_tuples = full_operator.stats.tuples_scanned
        assert pruned_tuples < full_tuples

    def test_partitions_for_derives_from_interval(self):
        catalog, star, partitioned = partitioned_setup()
        operator = PartitionedCJoinOperator(catalog, star, partitioned)
        # boundaries (2, 4): partitions are (-inf,2), [2,4), [4,inf)
        assert operator.partitions_for(count_query(Between("f_qty", 1, 1))) == {0}
        assert operator.partitions_for(
            count_query(Between("f_qty", 1, 2))
        ) == {0, 1}
        assert operator.partitions_for(
            count_query(Comparison("f_qty", ">", 4))
        ) == {2}
        assert operator.partitions_for(count_query()) == {0, 1, 2}

    def test_concurrent_queries_with_different_partitions(self):
        catalog, star, partitioned = partitioned_setup()
        operator = PartitionedCJoinOperator(catalog, star, partitioned)
        queries = [
            count_query(Between("f_qty", 1, 2)),
            count_query(Comparison("f_qty", ">=", 3)),
            count_query(),
        ]
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, catalog)

    def test_pins_released_after_completion(self):
        catalog, star, partitioned = partitioned_setup()
        operator = PartitionedCJoinOperator(catalog, star, partitioned)
        handle = operator.submit(count_query(Between("f_qty", 1, 2)))
        operator.run_until_drained()
        operator.manager.process_finished()
        assert handle.done
        assert operator.scan.needed_partitions() == []
