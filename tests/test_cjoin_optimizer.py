"""Unit tests for the adaptive filter-ordering policies (section 3.4)."""

from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.optimizer import AGreedyPolicy, DropRatePolicy, FixedOrderPolicy
from repro.cjoin.tuples import FactTuple


def make_star(dim_names):
    dimensions = {}
    fk = []
    columns = []
    for name in dim_names:
        dimensions[name] = TableSchema(
            name,
            [Column("id", DataType.INT)],
            primary_key="id",
        )
        columns.append(Column(f"{name}_id", DataType.INT))
        fk.append(ForeignKey(f"{name}_id", name, "id"))
    fact = TableSchema("f", columns, foreign_keys=fk)
    return StarSchema(fact=fact, dimensions=dimensions)


def make_filters(dim_names):
    star = make_star(dim_names)
    filters = []
    for name in dim_names:
        table = DimensionHashTable(star.dimension(name))
        table.mark_query_referencing(1)
        filters.append(Filter(table, star))
    return filters


class TestFixedOrder:
    def test_keeps_order(self):
        filters = make_filters(["a", "b", "c"])
        assert FixedOrderPolicy().recommend(filters) == filters


class TestDropRatePolicy:
    def test_orders_most_selective_first(self):
        filters = make_filters(["a", "b"])
        filters[0].stats.tuples_in = 100
        filters[0].stats.tuples_dropped = 10
        filters[1].stats.tuples_in = 100
        filters[1].stats.tuples_dropped = 90
        order = DropRatePolicy().recommend(filters)
        assert [f.name for f in order] == ["b", "a"]

    def test_idle_filters_keep_relative_order(self):
        filters = make_filters(["a", "b"])
        order = DropRatePolicy().recommend(filters)
        assert [f.name for f in order] == ["a", "b"]


class TestAGreedyPolicy:
    def _tuple(self, a_id, b_id):
        return FactTuple(sequence=0, position=0, row=(a_id, b_id), bitvector=0b1)

    def test_no_profiles_keeps_order(self):
        filters = make_filters(["a", "b"])
        assert AGreedyPolicy().recommend(filters) == filters

    def test_greedy_prefers_bigger_dropper(self):
        filters = make_filters(["a", "b"])
        # filter a selects id 1 only; filter b selects ids 1 and 2
        filters[0].hash_table.register_selected_rows(1, [(1,)])
        filters[1].hash_table.register_selected_rows(1, [(1,)])
        filters[1].hash_table.register_selected_rows(1, [(2,)])
        policy = AGreedyPolicy(window=16)
        # tuples: a drops (a_id != 1) more often than b drops
        for a_id, b_id in [(9, 1), (9, 2), (9, 9), (1, 1)]:
            policy.record_profile(filters, self._tuple(a_id, b_id))
        order = policy.recommend(filters)
        assert [f.name for f in order] == ["a", "b"]

    def test_conditional_ordering_beats_marginal(self):
        """A filter redundant given the first one is ranked second even

        if its marginal drop rate alone looks high (the correlation
        case A-Greedy handles and plain drop-rate ranking cannot).
        """
        filters = make_filters(["a", "b", "c"])
        # a drops tuples 1-6 (60%); b drops exactly the same tuples 1-5
        # plus nothing else (50%, fully correlated with a);
        # c drops tuples 7-8 (20%, independent of a).
        drops = {
            "a": {1, 2, 3, 4, 5, 6},
            "b": {1, 2, 3, 4, 5},
            "c": {7, 8},
        }
        policy = AGreedyPolicy(window=32)
        for tuple_id in range(1, 11):
            policy._profiles.append(
                {name: tuple_id in dropped for name, dropped in drops.items()}
            )
        order = [f.name for f in policy.recommend(filters)]
        # after 'a', 'b' drops nothing new; 'c' still drops 7 and 8
        assert order == ["a", "c", "b"]

    def test_window_is_bounded(self):
        filters = make_filters(["a"])
        policy = AGreedyPolicy(window=4)
        for _ in range(10):
            policy.record_profile(filters, self._tuple(1, 1))
        assert policy.profile_count == 4

    def test_forget_removes_filter_from_profiles(self):
        filters = make_filters(["a", "b"])
        policy = AGreedyPolicy(window=4)
        policy.record_profile(filters, self._tuple(1, 1))
        policy.forget("a")
        order = policy.recommend(make_filters(["b"]))
        assert [f.name for f in order] == ["b"]
