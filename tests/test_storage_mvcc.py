"""Unit tests for snapshot-isolation visibility."""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import SnapshotError
from repro.storage.mvcc import (
    Snapshot,
    TransactionManager,
    TupleVersion,
    VersionedTable,
)
from repro.storage.table import Table


def _versioned(rows=3):
    schema = TableSchema("t", [Column("k", DataType.INT)])
    table = Table.from_rows(schema, [(i,) for i in range(rows)])
    return VersionedTable(table)


class TestSnapshotVisibility:
    def test_bulk_loaded_rows_visible_everywhere(self):
        version = TupleVersion(xmin=0, xmax=None)
        assert Snapshot(0).can_see(version)
        assert Snapshot(100).can_see(version)

    def test_insert_invisible_to_older_snapshot(self):
        version = TupleVersion(xmin=5, xmax=None)
        assert not Snapshot(4).can_see(version)
        assert Snapshot(5).can_see(version)

    def test_delete_invisible_after_xmax(self):
        version = TupleVersion(xmin=1, xmax=3)
        assert Snapshot(2).can_see(version)
        assert not Snapshot(3).can_see(version)


class TestVersionedTable:
    def test_insert_appends_version(self):
        table = _versioned(2)
        position = table.insert((9,), xmin=4)
        assert position == 2
        assert table.version_at(2) == TupleVersion(4, None)

    def test_double_delete_rejected(self):
        table = _versioned(2)
        table.delete(0, xmax=2)
        with pytest.raises(SnapshotError):
            table.delete(0, xmax=3)

    def test_bad_position_rejected(self):
        table = _versioned(1)
        with pytest.raises(SnapshotError):
            table.version_at(5)
        with pytest.raises(SnapshotError):
            table.delete(5, xmax=1)

    def test_visible_rows_reflect_snapshot(self):
        table = _versioned(2)  # rows (0,), (1,) at xmin=0
        table.delete(0, xmax=1)
        table.insert((2,), xmin=1)
        assert table.visible_rows(Snapshot(0)) == [(0,), (1,)]
        assert table.visible_rows(Snapshot(1)) == [(1,), (2,)]


class TestTransactionManager:
    def test_commit_advances_snapshot(self):
        manager = TransactionManager()
        table = _versioned(1)
        assert manager.current_snapshot().snapshot_id == 0
        snapshot = manager.commit(table, inserts=[(5,)])
        assert snapshot.snapshot_id == 1
        assert manager.current_snapshot().snapshot_id == 1

    def test_update_as_delete_plus_insert(self):
        manager = TransactionManager()
        table = _versioned(1)  # row (0,)
        before = manager.current_snapshot()
        manager.commit(table, inserts=[(10,)], deletes=[0])
        after = manager.current_snapshot()
        assert table.visible_rows(before) == [(0,)]
        assert table.visible_rows(after) == [(10,)]

    def test_rows_never_physically_removed(self):
        manager = TransactionManager()
        table = _versioned(3)
        manager.commit(table, deletes=[1])
        assert table.row_count == 3  # stable positions for the scan
