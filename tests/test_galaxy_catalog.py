"""Galaxy schema registration in the catalog, end to end.

Ties :class:`~repro.catalog.schema.GalaxySchema` to the galaxy join
path: register two stars plus the fact-to-fact link, then evaluate a
cross-star query using the registered topology.
"""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ForeignKey, GalaxySchema
from repro.cjoin import CJoinOperator, GalaxyJoinQuery, evaluate_galaxy_join
from repro.errors import SchemaError
from repro.query.star import ColumnRef, StarQuery
from tests.test_cjoin_galaxy_snapshots import galaxy_setup


def _merged_catalog():
    """Both stars in one catalog, with a registered galaxy."""
    catalog_a, orders_star, catalog_b, shipments_star = galaxy_setup()
    catalog = Catalog()
    for name in catalog_a.table_names():
        catalog.register_table(catalog_a.table(name))
    for name in catalog_b.table_names():
        catalog.register_table(catalog_b.table(name))
    catalog.register_star(orders_star)
    catalog.register_star(shipments_star)
    galaxy = GalaxySchema(
        stars={"orders": orders_star, "shipments": shipments_star},
        fact_links=[ForeignKey("sh_order", "orders", "o_id")],
    )
    catalog.register_galaxy(galaxy)
    return catalog, galaxy


class TestGalaxyRegistration:
    def test_round_trip(self):
        catalog, galaxy = _merged_catalog()
        assert catalog.galaxy is galaxy
        assert catalog.star_names() == ["orders", "shipments"]
        assert galaxy.star("orders").fact.name == "orders"

    def test_link_to_unknown_fact_rejected_at_construction(self):
        catalog, _ = _merged_catalog()
        with pytest.raises(SchemaError):
            GalaxySchema(
                stars={"orders": catalog.star("orders")},
                fact_links=[ForeignKey("x", "nonexistent", "y")],
            )

    def test_galaxy_over_unregistered_star_rejected(self):
        catalog, _ = _merged_catalog()
        fresh = Catalog()  # knows no stars
        with pytest.raises(SchemaError):
            fresh.register_galaxy(
                GalaxySchema(stars={"orders": catalog.star("orders")})
            )

    def test_galaxy_before_registration_raises(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            _ = catalog.galaxy


class TestGalaxyQueryViaRegisteredTopology:
    def test_fact_link_drives_the_join_columns(self):
        catalog, galaxy = _merged_catalog()
        link = galaxy.fact_links[0]
        left_star = galaxy.star(link.referenced_table)    # orders
        right_star = galaxy.star("shipments")
        left = StarQuery.build(
            left_star.fact.name,
            select=[ColumnRef("orders", link.referenced_column),
                    ColumnRef("orders", "o_amount")],
        )
        right = StarQuery.build(
            right_star.fact.name,
            select=[ColumnRef("shipments", link.column),
                    ColumnRef("shipments", "sh_cost")],
        )
        galaxy_query = GalaxyJoinQuery(
            left=left,
            right=right,
            left_join_column=0,
            right_join_column=0,
            group_by_columns=(0,),
            aggregates=(("count", 3), ("sum", 3)),
        )
        rows = evaluate_galaxy_join(
            galaxy_query,
            CJoinOperator(catalog, left_star),
            CJoinOperator(catalog, right_star),
        )
        # orders with shipments: 100 (2: 5+7), 101 (1: 6), 103 (1: 9)
        assert rows == [(100, 2, 12), (101, 1, 6), (103, 1, 9)]
