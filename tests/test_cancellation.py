"""Mid-scan query cancellation (DESIGN.md section 10).

Covers every place a submission can be cancelled — registered
mid-scan, queued in the service FIFO, queued on an offline route —
and the ISSUE-4 acceptance property: cancelling one of N in-flight
queries frees its slot within one scan cycle while the other N-1
results stay reference-equal.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cjoin import CJoinOperator, ExecutorConfig
from repro.engine import Warehouse, WarehouseService
from repro.engine.router import RoutingDecision
from repro.engine.submission import ROUTE_PROCESS
from repro.errors import CancelledError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from tests.conftest import make_tiny_star

CITIES = ("lyon", "paris", "nice")


def city_query(city: str, label: str | None = None) -> StarQuery:
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[
            AggregateSpec("count"),
            AggregateSpec("sum", "sales", "f_total"),
        ],
        label=label or city,
    )


def small_batch_service(
    catalog, star, max_in_flight: int | None = None
) -> WarehouseService:
    """A deterministic pump-mode service over 4-row batches."""
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(batch_size=4)
    )
    return WarehouseService(operator, max_in_flight=max_in_flight or 256)


class TestMidScanCancel:
    def test_cancel_discards_results_and_spares_survivors(self, tiny_star):
        catalog, star = tiny_star
        service = small_batch_service(catalog, star)
        keep = service.submit(city_query("lyon"))
        drop = service.submit(city_query("paris"))
        service.pump(batches=1)  # both are mid-scan now
        assert not keep.done and not drop.done
        assert drop.cancel() is True
        assert drop.cancelled
        assert drop.cancel() is True  # idempotent
        service.drain()
        assert keep.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )
        with pytest.raises(CancelledError):
            drop.results()
        with pytest.raises(CancelledError):
            list(drop)
        stats = service.operator.stats
        assert stats.queries_cancelled == 1
        # a cancellation is not a latency sample
        assert [record.label for record in stats.latency_records] == ["lyon"]

    def test_cancel_after_completion_returns_false(self, tiny_star):
        catalog, star = tiny_star
        service = small_batch_service(catalog, star)
        handle = service.submit(city_query("lyon"))
        service.drain()
        assert handle.cancel() is False
        assert handle.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )

    def test_unowned_handle_cancel_returns_false(self, tiny_star):
        from repro.cjoin.registry import QueryHandle

        handle = QueryHandle(city_query("lyon"))
        assert handle.cancel() is False

    def test_freed_slot_reused_within_one_scan_cycle(self, tiny_star):
        """The acceptance bound: cancel -> slot free -> queued query
        admitted, all before the current scan cycle ends."""
        catalog, star = tiny_star
        service = small_batch_service(catalog, star, max_in_flight=1)
        first = service.submit(city_query("lyon"))
        queued = service.submit(city_query("paris"))
        assert service.queued == 1
        service.pump(batches=1)  # scan is 4/12 tuples into the cycle
        assert first.cancel() is True
        # one batch flushes the early QueryEnd and frees the slot; the
        # next pump admits the queued query mid-cycle
        service.pump(batches=2)
        assert service.queued == 0
        assert queued.registration is not None
        assert 0 < queued.registration.start_position < 12  # mid-scan
        service.drain()
        assert queued.results() == evaluate_star_query(
            city_query("paris"), catalog
        )
        assert service.operator.manager.allocator.active_count == 0

    def test_stale_canceller_cannot_hit_a_recycled_query_id(
        self, tiny_star
    ):
        """A canceller that raced its query's completion must not tear
        down the next query admitted under the recycled id."""
        catalog, star = tiny_star
        service = small_batch_service(catalog, star)
        first = service.submit(city_query("lyon"))
        stale_canceller = first._canceller  # as QueryHandle.cancel reads it
        service.drain()
        assert first.done
        second = service.submit(city_query("paris"))
        # the id was recycled to the new query
        assert second.registration.query_id == 1
        assert stale_canceller() is False  # identity check refuses
        assert not second.cancelled
        service.drain()
        assert second.results() == evaluate_star_query(
            city_query("paris"), catalog
        )

    def test_cancelled_query_id_is_reallocated(self, tiny_star):
        catalog, star = tiny_star
        service = small_batch_service(catalog, star)
        first = service.submit(city_query("lyon"))
        first_id = first.registration.query_id
        service.pump(batches=1)
        first.cancel()
        service.drain()
        replacement = service.submit(city_query("nice"))
        assert replacement.registration.query_id == first_id
        service.drain()
        assert replacement.results() == evaluate_star_query(
            city_query("nice"), catalog
        )


class TestQueuedCancel:
    def test_cancel_queued_service_submission(self, tiny_star):
        catalog, star = tiny_star
        service = small_batch_service(catalog, star, max_in_flight=1)
        running = service.submit(city_query("lyon"))
        queued = service.submit(city_query("paris"))
        assert service.queued == 1
        assert queued.cancel() is True
        assert service.queued == 0
        assert queued.done and queued.cancelled
        with pytest.raises(CancelledError):
            queued.results()
        service.drain()
        assert running.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )

    def test_cancel_queued_process_submission(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, backend="process", workers=2)
        keep = warehouse.submit(city_query("lyon"))
        drop = warehouse.submit(city_query("paris"))
        assert warehouse.pending_submissions(ROUTE_PROCESS) == 2
        assert drop.cancel() is True
        assert warehouse.pending_submissions(ROUTE_PROCESS) == 1
        warehouse.run()
        assert keep.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )
        with pytest.raises(CancelledError):
            drop.results()
        # cancelled offline submissions produce no latency record
        assert [record.label for record in warehouse.latency_records] == [
            "lyon"
        ]

    def test_cancel_queued_baseline_submission(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        keep = warehouse.submit(
            city_query("lyon"), force=RoutingDecision.BASELINE
        )
        drop = warehouse.submit(
            city_query("paris"), force=RoutingDecision.BASELINE
        )
        assert drop.cancel() is True
        warehouse.run()
        assert keep.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )
        with pytest.raises(CancelledError):
            drop.results()


class TestLiveServiceCancel:
    def test_cancel_under_running_driver(self):
        """Cancel from the client thread while the driver cycles."""
        from repro.ssb.generator import load_ssb

        catalog, star = load_ssb(scale_factor=0.002, seed=13)
        year_query = StarQuery.build(
            "lineorder",
            dimension_predicates={
                "date": Comparison("d_year", ">=", 1992)
            },
            aggregates=[AggregateSpec("sum", "lineorder", "lo_revenue")],
        )
        with Warehouse(catalog, star, execution="batched") as warehouse:
            warehouse.start_service()
            survivors = [warehouse.submit(year_query) for _ in range(3)]
            victim = warehouse.submit(year_query)
            victim.cancel()  # may race natural completion; both are fine
            expected = evaluate_star_query(year_query, catalog)
            for handle in survivors:
                assert handle.results(timeout=30.0) == expected
            if victim.cancelled:
                with pytest.raises(CancelledError):
                    victim.results(timeout=30.0)
            else:
                assert victim.results(timeout=30.0) == expected
            warehouse.service.drain(timeout=30.0)
        assert warehouse.cjoin.manager.allocator.active_count == 0


@settings(max_examples=30, deadline=None)
@given(
    cancel_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    warmup_batches=st.integers(min_value=0, max_value=3),
)
def test_cancel_property_survivors_reference_equal(
    cancel_mask, warmup_batches
):
    """ISSUE 4 acceptance property: for any subset of N in-flight
    queries cancelled at any scan offset, every survivor's results are
    reference-equal, every cancelled handle raises, all slots are
    released, and the freed capacity is reused by queued submissions.
    """
    catalog, star = make_tiny_star()
    service = small_batch_service(catalog, star, max_in_flight=3)
    queries = [
        city_query(CITIES[index % 3], label=f"q{index}")
        for index in range(6)
    ]
    handles = [service.submit(query) for query in queries]
    assert service.queued == 3  # capacity 3: the rest wait FIFO
    service.pump(batches=warmup_batches)
    cancelled = [
        handle
        for handle, cancel in zip(handles, cancel_mask)
        if cancel and handle.cancel()
    ]
    service.drain()
    for handle, query in zip(handles, queries):
        if handle.cancelled:
            with pytest.raises(CancelledError):
                handle.results()
        else:
            # reference-equal: exactly the rows of an uncancelled run
            assert handle.results() == evaluate_star_query(query, catalog)
    completed = [handle for handle in handles if not handle.cancelled]
    assert len(completed) + len(cancelled) == 6
    assert service.in_flight == 0 and service.queued == 0
    assert service.operator.manager.allocator.active_count == 0
    assert service.operator.stats.queries_cancelled == sum(
        1 for handle in cancelled if handle.registration is not None
    )
