"""Fault injection for the wire layer (ISSUE 6 satellite).

Small, deterministic helpers that misbehave at a TCP warehouse server
the specific ways real clients do: torn and truncated frames, dribble
writes that land one byte per segment, disconnects mid-frame,
readers that stall after requesting work, and plain garbage.  Each
helper drives ONE raw socket through one pathology and returns what
it observed; ``tests/test_server_faults.py`` runs every scenario
against both the threaded and the async server and asserts the
invariant that matters — no leaked handler thread or task, no leaked
warehouse slot — using the servers' own accounting.

The helpers speak protocol v1 or v2 explicitly (never the negotiated
default) so each scenario pins down exactly which rules it violates.
"""

from __future__ import annotations

import socket
import struct
import time

from repro.server import protocol

#: Per-socket timeout: generous for slow CI, small enough that a test
#: wedging on a server bug fails the suite instead of hanging it.
SOCKET_TIMEOUT = 15.0

COUNT_SQL = "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"


def open_raw(address: tuple[str, int]) -> socket.socket:
    """A raw TCP client socket with the suite's timeout."""
    sock = socket.create_connection(address, timeout=SOCKET_TIMEOUT)
    sock.settimeout(SOCKET_TIMEOUT)
    return sock


def handshake(sock: socket.socket, version: int = 2) -> dict:
    """Send HELLO and return the (decoded) HELLO_OK."""
    sock.sendall(protocol.encode_frame({"type": "hello", "version": version}))
    reply = protocol.read_frame(sock.makefile("rb"))
    assert reply is not None and reply["type"] == "hello_ok", reply
    return reply


def read_reply(sock: socket.socket) -> dict | None:
    """One frame off the socket (None on clean close)."""
    return protocol.read_frame(sock.makefile("rb"))


# ----------------------------------------------------------------------
# Scenarios.  Each takes a server address, does its damage, closes its
# socket, and returns an observation dict for optional extra asserts.
# ----------------------------------------------------------------------
def torn_header(address) -> dict:
    """Send half a length prefix, then vanish."""
    with open_raw(address) as sock:
        handshake(sock)
        sock.sendall(b"\x00\x00")
    return {}


def torn_body(address) -> dict:
    """Advertise a frame, ship half its body, then vanish."""
    with open_raw(address) as sock:
        handshake(sock)
        frame = protocol.encode_frame(
            {"type": "execute", "sql": COUNT_SQL, "request_id": 0}
        )
        sock.sendall(frame[: len(frame) // 2])
    return {}


def disconnect_mid_execute(address) -> dict:
    """Execute a statement, then drop the socket without CLOSE.

    The nastiest variant: the server now owns a live query whose
    client is gone; teardown must cancel it so its warehouse slot
    frees within one scan cycle.
    """
    sock = open_raw(address)
    handshake(sock)
    sock.sendall(
        protocol.encode_frame(
            {"type": "execute", "sql": COUNT_SQL, "request_id": 0}
        )
    )
    reply = read_reply(sock)
    assert reply is not None and reply["type"] == "execute_ok", reply
    # abandon the socket abruptly (RST where the OS permits)
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()
    return {"query_ids": reply["query_ids"]}


def disconnect_mid_ingest(address) -> dict:
    """Ship a complete INGEST frame, then drop the socket before the ack.

    The write-path twin of ``disconnect_mid_execute``: the server owns
    a staged (possibly not-yet-applied) batch whose producer is gone.
    Teardown must discard the connection's buffered-but-unacked
    batches without leaking a slot, thread, or task — and whether the
    batch raced to an apply or was discarded, the dataset the other
    clients query must stay identical.  The batch is deliberately
    idempotent (an upsert rewriting a store row with its current
    values), so the suite's COUNT invariant holds either way.
    """
    sock = open_raw(address)
    handshake(sock)
    sock.sendall(
        protocol.encode_frame(
            {
                "type": "ingest",
                "dim_upserts": {"store": [[1, "lyon", 100]]},
                "request_id": 0,
            }
        )
    )
    # abandon the socket abruptly, without ever reading INGEST_OK
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()
    return {}


def dribble_writes(address) -> dict:
    """A whole valid exchange, one byte per send.

    Not a violation at all — framing must reassemble byte-at-a-time
    arrivals — so this scenario asserts the query RUNS and answers.
    """
    with open_raw(address) as sock:
        handshake(sock)
        frame = protocol.encode_frame(
            {
                "type": "execute",
                "sql": COUNT_SQL,
                "request_id": 0,
            }
        )
        for index in range(len(frame)):
            sock.sendall(frame[index:index + 1])
        reply = read_reply(sock)
        assert reply is not None and reply["type"] == "execute_ok", reply
        (query_id,) = reply["query_ids"]
        fetch = protocol.encode_frame(
            {
                "type": "fetch",
                "query_id": query_id,
                "timeout": 30,
                "request_id": 1,
            }
        )
        for index in range(len(fetch)):
            sock.sendall(fetch[index:index + 1])
        rows = read_reply(sock)
        assert rows is not None and rows["type"] == "rows", rows
        return {"rows": rows["rows"]}


def stalled_reader(address, stall_seconds: float = 1.0) -> dict:
    """Request work, then stop reading replies for a while.

    A stalled reader may slow its OWN replies (bounded outboxes push
    back) but must not wedge the server: after the stall the
    connection still works end to end.
    """
    with open_raw(address) as sock:
        handshake(sock)
        for request_id in range(8):
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": COUNT_SQL,
                        "request_id": request_id,
                    }
                )
            )
        time.sleep(stall_seconds)  # replies pile into the outbox
        reader = sock.makefile("rb")
        replies = [protocol.read_frame(reader) for _ in range(8)]
        assert all(
            reply is not None and reply["type"] == "execute_ok"
            for reply in replies
        ), replies
        return {"replies": len(replies)}


def garbage_after_hello(address) -> dict:
    """A valid HELLO followed by framed binary garbage."""
    with open_raw(address) as sock:
        handshake(sock)
        body = b"\xde\xad\xbe\xef this is not json"
        sock.sendall(struct.pack(">I", len(body)) + body)
        reply = read_reply(sock)  # best-effort ERROR, then close
        if reply is not None:
            assert reply["type"] == "error", reply
            assert read_reply(sock) is None
    return {}


def oversized_length_prefix(address) -> dict:
    """Advertise a frame bigger than MAX_FRAME_BYTES."""
    with open_raw(address) as sock:
        handshake(sock)
        sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        reply = read_reply(sock)
        if reply is not None:
            assert reply["type"] == "error", reply
            assert read_reply(sock) is None
    return {}


def missing_request_id(address) -> dict:
    """A v2 connection omitting the mandatory request id."""
    with open_raw(address) as sock:
        handshake(sock, version=2)
        sock.sendall(
            protocol.encode_frame({"type": "execute", "sql": COUNT_SQL})
        )
        reply = read_reply(sock)
        assert reply is not None and reply["type"] == "error", reply
        assert "request_id" in reply["error"]["message"]
        assert read_reply(sock) is None
    return {}


def unknown_version(address) -> dict:
    """A HELLO below the oldest version the server speaks."""
    with open_raw(address) as sock:
        reader = sock.makefile("rb")
        sock.sendall(protocol.encode_frame({"type": "hello", "version": 0}))
        reply = protocol.read_frame(reader)
        assert reply is not None and reply["type"] == "error", reply
        assert protocol.read_frame(reader) is None
    return {}


def _count_exchange(sock: socket.socket) -> list:
    """One full execute/fetch exchange; returns the result rows."""
    sock.sendall(
        protocol.encode_frame(
            {"type": "execute", "sql": COUNT_SQL, "request_id": 0}
        )
    )
    reply = read_reply(sock)
    assert reply is not None and reply["type"] == "execute_ok", reply
    (query_id,) = reply["query_ids"]
    sock.sendall(
        protocol.encode_frame(
            {
                "type": "fetch",
                "query_id": query_id,
                "timeout": 30,
                "request_id": 1,
            }
        )
    )
    rows = read_reply(sock)
    assert rows is not None and rows["type"] == "rows", rows
    return rows["rows"]


def server_restart_mid_session(address, restart=None) -> dict:
    """A session whose server restarts out from under it (ISSUE 10).

    Standalone (no ``restart``) this is the clean subset — one full
    execute/fetch exchange, then an orderly close — so the generic
    leak suite can run it against any live server.  The dedicated
    restart test passes ``restart``, a callable that stops the server,
    reopens its durable warehouse, starts a replacement, and returns
    the replacement's address.  The helper then asserts the raw-wire
    contract of a restart: the old socket dies promptly (EOF, reset,
    or a framed ERROR — never a hang), and a fresh socket against the
    new address completes the same exchange.
    """
    sock = open_raw(address)
    try:
        handshake(sock)
        observation = {"rows_before": _count_exchange(sock)}
        if restart is None:
            return observation
        new_address = restart()
        # the old socket is dead: a fetch either fails to send or
        # reads EOF / a last-gasp framed error, within the timeout
        try:
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": COUNT_SQL,
                        "request_id": 2,
                    }
                )
            )
            reply = read_reply(sock)
        except OSError:
            reply = None
        assert reply is None or reply["type"] == "error", reply
        observation["old_socket_dead"] = True
    finally:
        sock.close()
    with open_raw(new_address) as fresh:
        handshake(fresh)
        observation["rows_after"] = _count_exchange(fresh)
    return observation


def hello_flood_then_vanish(address, count: int = 8) -> list:
    """Many half-open connections abandoned right after HELLO."""
    socks = []
    for _ in range(count):
        sock = open_raw(address)
        handshake(sock)
        socks.append(sock)
    for sock in socks:
        sock.close()
    return []


#: name → callable, for parametrized suites.
SCENARIOS = {
    "torn_header": torn_header,
    "torn_body": torn_body,
    "disconnect_mid_execute": disconnect_mid_execute,
    "disconnect_mid_ingest": disconnect_mid_ingest,
    "dribble_writes": dribble_writes,
    "stalled_reader": stalled_reader,
    "garbage_after_hello": garbage_after_hello,
    "oversized_length_prefix": oversized_length_prefix,
    "missing_request_id": missing_request_id,
    "server_restart_mid_session": server_restart_mid_session,
    "unknown_version": unknown_version,
    "hello_flood_then_vanish": hello_flood_then_vanish,
}
