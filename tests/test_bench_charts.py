"""Tests for the ASCII chart renderer and its CLI flags."""

from repro.bench.__main__ import main as bench_main
from repro.bench.charts import render_chart
from repro.bench.experiments import ExperimentResult, run_experiment


class TestRenderChart:
    def test_all_series_appear(self):
        result = run_experiment("fig5")
        chart = render_chart(result)
        assert "o=cjoin" in chart
        assert "x=system_x" in chart
        assert "+=postgresql" in chart
        assert "concurrent queries" in chart

    def test_log_scale_compresses_range(self):
        result = run_experiment("fig6")
        linear = render_chart(result, log_y=False)
        logged = render_chart(result, log_y=True)
        assert "(log y)" in logged
        assert "(log y)" not in linear

    def test_none_values_are_skipped(self):
        result = run_experiment("fig4")  # vertical has None below 4 threads
        chart = render_chart(result)
        assert "vertical" in chart

    def test_flat_series_does_not_divide_by_zero(self):
        result = ExperimentResult(
            "flat",
            "flat series",
            "x",
            measured={"only": [(1, 5.0), (2, 5.0)]},
            paper={},
        )
        chart = render_chart(result)
        assert "only" in chart

    def test_empty_series_handled(self):
        result = ExperimentResult(
            "empty",
            "empty experiment",
            "x",
            measured={"none": [(1, None)]},
            paper={},
        )
        assert "no plottable series" in render_chart(result)

    def test_cjoin_line_is_visibly_flat_in_fig6(self):
        """The chart itself should show a flat bottom row for CJOIN."""
        chart = render_chart(run_experiment("fig6"), log_y=True)
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        cjoin_rows = [row for row in rows if "o" in row]
        assert len(cjoin_rows) == 1  # all six points on one raster row
        assert cjoin_rows[0].count("o") == 6


class TestCLIFlags:
    def test_chart_flag(self, capsys):
        assert bench_main(["--chart", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_log_flag(self, capsys):
        assert bench_main(["--chart", "--log", "fig6"]) == 0
        assert "(log y)" in capsys.readouterr().out
