"""ExecutorConfig and service-knob range validation (ConfigError).

Prior to the process backend, only ``mode``/``execution`` names were
validated; worker counts, batch sizes and stage layouts silently
accepted nonsense (zero workers, bool batch sizes, hybrid layouts with
no boxes).  The service layer (DESIGN.md section 9) added
``max_concurrent`` / ``max_in_flight`` / ``idle_sleep`` /
``admission_queue_depth`` to the same regime.  Every rejection must
carry an actionable message naming the field and the accepted range.
"""

import pytest

from repro.cjoin.executor import (
    MAX_BATCH_SIZE,
    MAX_CONCURRENT_QUERIES,
    MAX_IDLE_SLEEP,
    MAX_STAGE_THREADS,
    MAX_WORKERS,
    ExecutorConfig,
)
from repro.errors import ConfigError, PipelineError


class TestNameValidation:
    def test_unknown_mode(self):
        with pytest.raises(ConfigError, match="unknown executor mode"):
            ExecutorConfig(mode="diagonal")

    def test_unknown_execution(self):
        with pytest.raises(ConfigError, match="'tuple' or 'batched'"):
            ExecutorConfig(execution="vectorised")

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="'serial' or 'process'"):
            ExecutorConfig(backend="thread")

    def test_config_error_is_a_pipeline_error(self):
        """Pre-existing callers catching PipelineError keep working."""
        with pytest.raises(PipelineError):
            ExecutorConfig(execution="vectorised")


class TestWorkerRange:
    @pytest.mark.parametrize("workers", [0, -1, MAX_WORKERS + 1])
    def test_out_of_range_workers(self, workers):
        with pytest.raises(ConfigError, match="workers must be in"):
            ExecutorConfig(
                execution="batched", backend="process", workers=workers
            )

    @pytest.mark.parametrize("workers", [1.5, "4", True])
    def test_non_int_workers(self, workers):
        with pytest.raises(ConfigError, match="workers must be an int"):
            ExecutorConfig(
                execution="batched", backend="process", workers=workers
            )

    def test_workers_require_process_backend(self):
        with pytest.raises(ConfigError, match="requires backend='process'"):
            ExecutorConfig(execution="batched", workers=4)

    def test_boundary_workers_accepted(self):
        config = ExecutorConfig(
            execution="batched", backend="process", workers=MAX_WORKERS
        )
        assert config.workers == MAX_WORKERS


class TestBatchSizeRange:
    @pytest.mark.parametrize("batch_size", [0, -3, MAX_BATCH_SIZE + 1])
    def test_out_of_range_batch_size(self, batch_size):
        with pytest.raises(ConfigError, match="batch_size must be in"):
            ExecutorConfig(batch_size=batch_size)

    @pytest.mark.parametrize("batch_size", [0.5, "256", False])
    def test_non_int_batch_size(self, batch_size):
        with pytest.raises(ConfigError, match="batch_size must be an int"):
            ExecutorConfig(batch_size=batch_size)


class TestProcessBackendConstraints:
    def test_process_requires_batched_execution(self):
        with pytest.raises(ConfigError, match="requires execution='batched'"):
            ExecutorConfig(backend="process", workers=2)

    def test_process_requires_synchronous_mode(self):
        with pytest.raises(ConfigError, match="requires mode='synchronous'"):
            ExecutorConfig(
                mode="horizontal",
                execution="batched",
                backend="process",
                workers=2,
            )

    def test_valid_process_config(self):
        config = ExecutorConfig(
            execution="batched", backend="process", workers=8
        )
        assert (config.backend, config.workers) == ("process", 8)


class TestStageLayouts:
    def test_empty_stage_threads(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            ExecutorConfig(mode="horizontal", stage_threads=())

    @pytest.mark.parametrize("threads", [0, -2, MAX_STAGE_THREADS + 1])
    def test_out_of_range_stage_threads(self, threads):
        with pytest.raises(ConfigError, match=r"stage_threads\[1\]"):
            ExecutorConfig(mode="horizontal", stage_threads=(1, threads))

    def test_zero_stage_box(self):
        with pytest.raises(ConfigError, match=r"stage_boxes\[0\]"):
            ExecutorConfig(
                mode="hybrid", stage_threads=(1,), stage_boxes=(0, 4)
            )

    def test_boxes_without_hybrid_mode(self):
        with pytest.raises(ConfigError, match="mode='hybrid'"):
            ExecutorConfig(mode="horizontal", stage_boxes=(2, 2))

    def test_hybrid_without_boxes(self):
        with pytest.raises(ConfigError, match="requires stage_boxes"):
            ExecutorConfig(mode="hybrid", stage_threads=(1,))


class TestWarehouseWiring:
    def test_warehouse_rejects_process_with_updates(self, tiny_star):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="enable_updates"):
            Warehouse(
                catalog,
                star,
                backend="process",
                workers=2,
                enable_updates=True,
            )

    def test_warehouse_rejects_bad_worker_count(self, tiny_star):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="workers must be in"):
            Warehouse(catalog, star, backend="process", workers=0)

    def test_warehouse_defaults_execution_for_process_backend(self, tiny_star):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, backend="process", workers=2)
        assert warehouse.executor_config.execution == "batched"


class TestServiceKnobs:
    """The always-on service knobs (DESIGN.md section 9)."""

    @pytest.mark.parametrize(
        "max_concurrent", [0, -5, MAX_CONCURRENT_QUERIES + 1]
    )
    def test_out_of_range_max_concurrent(self, tiny_star, max_concurrent):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="max_concurrent must be in"):
            Warehouse(catalog, star, max_concurrent=max_concurrent)

    @pytest.mark.parametrize("max_concurrent", [2.5, "256", True])
    def test_non_int_max_concurrent(self, tiny_star, max_concurrent):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="max_concurrent must be an int"):
            Warehouse(catalog, star, max_concurrent=max_concurrent)

    @pytest.mark.parametrize(
        "max_in_flight", [0, -1, MAX_CONCURRENT_QUERIES + 1, 1.5, False]
    )
    def test_bad_max_in_flight(self, tiny_star, max_in_flight):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="max_in_flight must be"):
            Warehouse(catalog, star, max_in_flight=max_in_flight)

    def test_max_in_flight_clamped_to_max_concurrent(self, tiny_star):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, max_concurrent=4, max_in_flight=64)
        assert warehouse.service.max_in_flight == 4

    @pytest.mark.parametrize(
        "idle_sleep", [-0.001, MAX_IDLE_SLEEP + 1.0, "fast", None, True]
    )
    def test_bad_idle_sleep(self, tiny_star, idle_sleep):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="idle_sleep must be"):
            Warehouse(catalog, star, idle_sleep=idle_sleep)

    def test_idle_sleep_accepts_ints(self, tiny_star):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        assert Warehouse(catalog, star, idle_sleep=1).service.idle_sleep == 1

    @pytest.mark.parametrize("depth", [0, -2, 0.5, "many", False])
    def test_bad_admission_queue_depth(self, tiny_star, depth):
        from repro.engine.warehouse import Warehouse

        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="admission_queue_depth must be"):
            Warehouse(catalog, star, admission_queue_depth=depth)

    def test_run_forever_validates_idle_sleep(self, tiny_star):
        from repro.cjoin import CJoinOperator

        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        with pytest.raises(ConfigError, match="idle_sleep must be in"):
            operator.executor.run_forever(idle_sleep=-1.0)
