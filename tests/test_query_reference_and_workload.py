"""Unit tests for the reference evaluator and workload generation."""

import random

import pytest

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.query.workload import QueryTemplate, RangeParameter, WorkloadGenerator


class TestReferenceEvaluator:
    def test_hand_checked_aggregate(self, tiny_star):
        catalog, _ = tiny_star
        # total sales per city for food products
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "product": Comparison("p_category", "=", "food")
            },
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("sum", "sales", "f_total")],
        )
        rows = evaluate_star_query(query, catalog)
        # food products are p_id 10 and 30
        # lyon: (1,10,2,10),(1,30,2,16),(1,10,1,5) -> 31
        # paris: (2,10,5,25),(2,30,3,24) -> 49
        # nice: (3,10,4,20),(3,30,2,16) -> 36
        assert rows == [("lyon", 31), ("nice", 36), ("paris", 49)]

    def test_global_aggregate_without_group_by(self, tiny_star):
        catalog, _ = tiny_star
        query = StarQuery.build(
            "sales",
            aggregates=[
                AggregateSpec("count"),
                AggregateSpec("sum", "sales", "f_qty"),
            ],
        )
        rows = evaluate_star_query(query, catalog)
        assert rows == [(12, 27)]

    def test_fact_predicate_filters(self, tiny_star):
        catalog, _ = tiny_star
        query = StarQuery.build(
            "sales",
            fact_predicate=Comparison("f_qty", ">=", 4),
            aggregates=[AggregateSpec("count")],
        )
        assert evaluate_star_query(query, catalog) == [(2,)]

    def test_listing_query_returns_sorted_rows(self, tiny_star):
        catalog, _ = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Comparison("s_city", "=", "nice")
            },
            select=[ColumnRef("sales", "f_product"), ColumnRef("sales", "f_qty")],
        )
        rows = evaluate_star_query(query, catalog)
        assert rows == [(10, 4), (30, 2), (40, 1)]

    def test_aggregate_expression(self, tiny_star):
        catalog, _ = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_id", "=", 3)},
            aggregates=[
                AggregateSpec(
                    "sum", "sales", "f_total", column2="f_qty", combine="-"
                )
            ],
        )
        # nice rows: (40,1,12),(10,4,20),(30,2,16): (12-1)+(20-4)+(16-2)=41
        assert evaluate_star_query(query, catalog) == [(41,)]


class TestRangeParameter:
    def test_window_size_tracks_selectivity(self):
        parameter = RangeParameter("d", "col", tuple(range(100)))
        rng = random.Random(0)
        predicate = parameter.concrete_predicate(0.25, rng)
        assert predicate.high - predicate.low + 1 == 25

    def test_minimum_window_is_one_value(self):
        parameter = RangeParameter("d", "col", tuple(range(10)))
        predicate = parameter.concrete_predicate(0.001, random.Random(0))
        assert predicate.low == predicate.high

    def test_selectivity_bounds(self):
        parameter = RangeParameter("d", "col", (1, 2))
        with pytest.raises(QueryError):
            parameter.concrete_predicate(0.0, random.Random(0))
        with pytest.raises(QueryError):
            parameter.concrete_predicate(1.5, random.Random(0))

    def test_empty_domain_rejected(self):
        with pytest.raises(QueryError):
            RangeParameter("d", "col", ())


class TestWorkloadGenerator:
    def _template(self, name="T"):
        return QueryTemplate(
            name=name,
            fact_table="sales",
            range_parameters=(
                RangeParameter("store", "s_size", (50, 100, 250)),
            ),
            group_by=(ColumnRef("store", "s_city"),),
            aggregates=(AggregateSpec("sum", "sales", "f_total"),),
        )

    def test_same_seed_same_workload(self):
        a = WorkloadGenerator([self._template()], seed=3).generate(5, 0.5)
        b = WorkloadGenerator([self._template()], seed=3).generate(5, 0.5)
        assert [q.dimension_predicates for q in a] == [
            q.dimension_predicates for q in b
        ]

    def test_instantiated_queries_run(self, tiny_star):
        catalog, star = tiny_star
        generator = WorkloadGenerator([self._template()], seed=1)
        for query in generator.generate(4, 0.67):
            query.validate(star)
            evaluate_star_query(query, catalog)  # must not raise

    def test_generate_from_unknown_template(self):
        generator = WorkloadGenerator([self._template()], seed=0)
        with pytest.raises(QueryError):
            generator.generate_from("missing", 0.5)

    def test_fixed_predicates_are_anded_with_ranges(self, tiny_star):
        catalog, star = tiny_star
        template = QueryTemplate(
            name="T2",
            fact_table="sales",
            range_parameters=(
                RangeParameter("store", "s_size", (50, 100, 250)),
            ),
            fixed_dimension_predicates={
                "store": Comparison("s_city", "=", "lyon")
            },
            aggregates=(AggregateSpec("count"),),
        )
        query = template.instantiate(1.0, random.Random(0))
        query.validate(star)
        # with full range, only the fixed predicate bites: lyon has 5 sales
        assert evaluate_star_query(query, catalog) == [(5,)]

    def test_empty_template_list_rejected(self):
        with pytest.raises(QueryError):
            WorkloadGenerator([], seed=0)
