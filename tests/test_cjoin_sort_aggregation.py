"""Sort-based aggregation: equivalence with hash aggregation."""

import pytest
from hypothesis import given, settings

from repro.cjoin import CJoinOperator
from repro.cjoin.aggregation import (
    SortAggregationOperator,
    make_output_operator,
)
from repro.cjoin.tuples import FactTuple
from repro.errors import PipelineError
from repro.query.aggregates import AggregateSpec
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from tests.conftest import make_tiny_star
from tests.test_properties import star_queries, warehouses


class TestSortOperatorUnit:
    def _setup(self):
        _, star = make_tiny_star()
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("sales", "f_store")],
            aggregates=[
                AggregateSpec("sum", "sales", "f_total"),
                AggregateSpec("count"),
            ],
        )
        return SortAggregationOperator(query, star)

    def _tuple(self, store, total):
        return FactTuple(0, 0, (store, 1, 1, total), 0b1)

    def test_groups_runs_after_sort(self):
        operator = self._setup()
        for store, total in [(2, 5), (1, 3), (2, 7), (1, 1)]:
            operator.consume(self._tuple(store, total))
        assert operator.buffered_tuples == 4
        assert operator.results() == [(1, 4, 2), (2, 12, 2)]

    def test_empty_input(self):
        assert self._setup().results() == []

    def test_rejects_listing_queries(self):
        _, star = make_tiny_star()
        listing = StarQuery.build(
            "sales", select=[ColumnRef("sales", "f_qty")]
        )
        with pytest.raises(PipelineError):
            SortAggregationOperator(listing, star)

    def test_factory_mode_selection(self):
        _, star = make_tiny_star()
        query = StarQuery.build("sales", aggregates=[AggregateSpec("count")])
        assert isinstance(
            make_output_operator(query, star, mode="sort"),
            SortAggregationOperator,
        )
        with pytest.raises(PipelineError):
            make_output_operator(query, star, mode="bogus")


class TestSortModeEndToEnd:
    def test_operator_with_sort_mode_matches_reference(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        operator = CJoinOperator(catalog, star, aggregation_mode="sort")
        handles = [operator.submit(query) for query in ssb_workload[:6]]
        operator.run_until_drained()
        for query, handle in zip(ssb_workload, handles):
            assert handle.results() == evaluate_star_query(query, catalog)


@settings(max_examples=40, deadline=None)
@given(warehouse=warehouses(), query=star_queries())
def test_sort_and_hash_aggregation_agree(warehouse, query):
    catalog, star = warehouse
    hash_operator = CJoinOperator(catalog, star, aggregation_mode="hash")
    sort_operator = CJoinOperator(catalog, star, aggregation_mode="sort")
    assert hash_operator.execute(query) == sort_operator.execute(query)
