"""Unit tests for pages, heaps, buffer pool, tables, and I/O stats."""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.iostats import IOStats
from repro.storage.page import Page
from repro.storage.table import Table


def _schema(name="t", pk=None):
    return TableSchema(
        name,
        [Column("k", DataType.INT), Column("v", DataType.STRING)],
        primary_key=pk,
    )


class TestPage:
    def test_append_until_full(self):
        page = Page(0, capacity=2)
        assert page.append((1, "a")) == 0
        assert page.append((2, "b")) == 1
        assert page.is_full
        with pytest.raises(StorageError):
            page.append((3, "c"))

    def test_slot_bounds(self):
        page = Page(0, capacity=2)
        page.append((1, "a"))
        assert page.slot(0) == (1, "a")
        with pytest.raises(StorageError):
            page.slot(1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            Page(0, capacity=0)


class TestHeapFile:
    def test_pages_fill_in_order(self):
        heap = HeapFile(rows_per_page=2)
        addresses = [heap.append_row((i, "x")) for i in range(5)]
        assert addresses == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]
        assert heap.page_count == 3
        assert heap.row_count == 5

    def test_read_row_roundtrip(self):
        heap = HeapFile(rows_per_page=2)
        heap.append_row((7, "seven"))
        assert heap.read_row(0, 0) == (7, "seven")

    def test_bad_page_raises(self):
        heap = HeapFile()
        with pytest.raises(StorageError):
            heap.page(0)

    def test_iter_rows_in_heap_order(self):
        heap = HeapFile(rows_per_page=2)
        rows = [(i, str(i)) for i in range(5)]
        for row in rows:
            heap.append_row(row)
        assert list(heap.iter_rows()) == rows

    def test_heap_ids_are_unique(self):
        assert HeapFile().heap_id != HeapFile().heap_id


class TestBufferPool:
    def _heap_with_pages(self, pages=4, rows_per_page=2):
        heap = HeapFile(rows_per_page)
        for i in range(pages * rows_per_page):
            heap.append_row((i, "x"))
        return heap

    def test_miss_then_hit(self):
        stats = IOStats()
        pool = BufferPool(2, stats)
        heap = self._heap_with_pages()
        pool.fetch(heap, 0)
        pool.fetch(heap, 0)
        assert stats.disk_reads == 1
        assert stats.buffer_hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(2)
        heap = self._heap_with_pages(pages=3)
        pool.fetch(heap, 0)
        pool.fetch(heap, 1)
        pool.fetch(heap, 2)  # evicts page 0
        assert not pool.contains(heap, 0)
        assert pool.contains(heap, 1)
        assert pool.contains(heap, 2)

    def test_hit_refreshes_recency(self):
        pool = BufferPool(2)
        heap = self._heap_with_pages(pages=3)
        pool.fetch(heap, 0)
        pool.fetch(heap, 1)
        pool.fetch(heap, 0)  # page 0 now most recent
        pool.fetch(heap, 2)  # evicts page 1
        assert pool.contains(heap, 0)
        assert not pool.contains(heap, 1)

    def test_sequential_vs_random_classification(self):
        stats = IOStats()
        pool = BufferPool(10, stats)
        heap = self._heap_with_pages(pages=5)
        for page_id in (0, 1, 2, 4, 3):
            pool.fetch(heap, page_id)
        # 1 and 2 follow their predecessors; 0 (first), 4, 3 are random
        assert stats.sequential_reads == 2
        assert stats.random_reads == 3

    def test_invalidate_per_heap(self):
        pool = BufferPool(8)
        heap_a = self._heap_with_pages(pages=2)
        heap_b = self._heap_with_pages(pages=2)
        pool.fetch(heap_a, 0)
        pool.fetch(heap_b, 0)
        pool.invalidate(heap_a)
        assert not pool.contains(heap_a, 0)
        assert pool.contains(heap_b, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BufferPool(0)


class TestIOStats:
    def test_sequential_fraction_with_no_reads(self):
        assert IOStats().sequential_fraction == 1.0

    def test_reset_clears_positions(self):
        stats = IOStats()
        stats.record_read(1, 0)
        stats.record_read(1, 1)
        stats.reset()
        stats.record_read(1, 2)  # no predecessor after reset -> random
        assert stats.random_reads == 1
        assert stats.sequential_reads == 0


class TestTable:
    def test_insert_validates_schema(self):
        table = Table(_schema())
        with pytest.raises(Exception):
            table.insert(("wrong", 1))

    def test_primary_key_duplicates_rejected(self):
        table = Table(_schema(pk="k"))
        table.insert((1, "a"))
        with pytest.raises(StorageError):
            table.insert((1, "b"))

    def test_pk_lookup(self):
        table = Table(_schema(pk="k"))
        table.insert((1, "a"))
        table.insert((2, "b"))
        assert table.lookup_pk(2) == (2, "b")
        assert table.lookup_pk(99) is None

    def test_pk_lookup_without_index_raises(self):
        table = Table(_schema())
        with pytest.raises(StorageError):
            table.lookup_pk(1)

    def test_from_rows_preserves_order(self):
        rows = [(i, str(i)) for i in range(10)]
        table = Table.from_rows(_schema(), rows, rows_per_page=3)
        assert table.all_rows() == rows
        assert table.row_count == 10
        assert table.page_count == 4
