"""Closed-loop integration on the real pipeline.

Mirrors the paper's methodology (section 6.1.3) at milli-scale: a
client keeps n queries in flight, submitting a new one whenever one
finishes, across many scan cycles.  Verifies sustained correctness,
id recycling, and the real-pipeline analogue of predictability: every
query consumes exactly one scan cycle's worth of tuples, regardless of
how many other queries are running.
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.query.reference import evaluate_star_query
from repro.ssb.queries import ssb_workload_generator


class ClosedLoopClient:
    """Keeps ``concurrency`` queries in flight on a live operator."""

    def __init__(self, operator, generator, selectivity, concurrency):
        self.operator = operator
        self.generator = generator
        self.selectivity = selectivity
        self.concurrency = concurrency
        self.completed = []  # (query, handle, scan_count_at_submit)
        self._in_flight = []

    def _submit_one(self):
        query = self.generator.next_query(self.selectivity)
        handle = self.operator.submit(query)
        self._in_flight.append(
            (query, handle, self.operator.scan.tuples_returned)
        )

    def run(self, total_queries, max_steps=100_000):
        submitted = 0
        while submitted < min(self.concurrency, total_queries):
            self._submit_one()
            submitted += 1
        steps = 0
        while self._in_flight:
            self.operator.executor.step()
            steps += 1
            assert steps < max_steps, "closed loop did not converge"
            survivors = []
            finished = []
            for entry in self._in_flight:
                if entry[1].done:
                    finished.append(entry)
                else:
                    survivors.append(entry)
            self._in_flight = survivors
            for entry in finished:
                self.completed.append(entry)
                if submitted < total_queries:
                    # the finished query's cleanup must run before its
                    # slot can be reused (the manager does this lazily)
                    self.operator.manager.process_finished()
                    self._submit_one()
                    submitted += 1
        return self.completed


@pytest.mark.parametrize("concurrency", [1, 4, 12])
def test_sustained_closed_loop_correctness(ssb_small, concurrency):
    catalog, star = ssb_small
    generator = ssb_workload_generator(seed=concurrency, catalog=catalog)
    operator = CJoinOperator(
        catalog,
        star,
        max_concurrent=concurrency,
        executor_config=ExecutorConfig(batch_size=512),
    )
    client = ClosedLoopClient(operator, generator, 0.15, concurrency)
    completed = client.run(total_queries=3 * concurrency + 2)
    assert len(completed) == 3 * concurrency + 2
    for query, handle, _ in completed:
        assert handle.results() == evaluate_star_query(query, catalog), (
            query.label
        )
    # ids were recycled: never more than `concurrency` registered at once
    assert operator.manager.allocator.active_count == 0


def test_per_query_scan_budget_is_flat(ssb_small):
    """The predictability property on the real pipeline: each query's

    scan-tuple budget equals one table pass, independent of n.
    """
    catalog, star = ssb_small
    fact_rows = catalog.table("lineorder").row_count
    budgets = {}
    for concurrency in (1, 8):
        generator = ssb_workload_generator(seed=7, catalog=catalog)
        operator = CJoinOperator(
            catalog,
            star,
            max_concurrent=concurrency,
            executor_config=ExecutorConfig(batch_size=512),
        )
        client = ClosedLoopClient(operator, generator, 0.15, concurrency)
        completed = client.run(total_queries=2 * concurrency)
        spans = []
        for _, handle, at_submit in completed:
            # tuples the scan produced while this query was in flight
            spans.append(handle.registration.tuples_streamed)
        budgets[concurrency] = max(spans)
    # a query's own consumed tuples never exceed one pass + epsilon,
    # whether alone or with 7 concurrent peers
    for concurrency, budget in budgets.items():
        assert budget <= fact_rows, (concurrency, budget, fact_rows)


def test_many_generations_reuse_every_id(ssb_small):
    catalog, star = ssb_small
    generator = ssb_workload_generator(seed=13, catalog=catalog)
    operator = CJoinOperator(catalog, star, max_concurrent=2)
    seen_ids = set()
    for _ in range(6):
        queries = generator.generate(2, selectivity=0.2)
        handles = [operator.submit(query) for query in queries]
        for handle in handles:
            seen_ids.add(handle.registration.query_id)
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, catalog)
    assert seen_ids == {1, 2}
