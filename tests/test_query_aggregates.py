"""Unit tests for aggregate specs and accumulators."""

import pytest

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec, make_accumulator


def run(spec, values):
    accumulator = make_accumulator(spec)
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(QueryError):
            AggregateSpec("median", "t", "c")

    def test_non_count_requires_column(self):
        with pytest.raises(QueryError):
            AggregateSpec("sum")

    def test_count_star(self):
        spec = AggregateSpec("count")
        assert spec.is_count_star
        assert spec.label == "count_star"

    def test_labels(self):
        assert AggregateSpec("sum", "t", "c").label == "sum_c"
        assert AggregateSpec("sum", "t", "c", alias="z").label == "z"
        assert (
            AggregateSpec("sum", "t", "a", column2="b", combine="-").label
            == "sum_a-b"
        )

    def test_bad_combine_op(self):
        with pytest.raises(QueryError):
            AggregateSpec("sum", "t", "a", column2="b", combine="/")


class TestCombineValues:
    def test_operators(self):
        assert AggregateSpec("sum", "t", "a", column2="b").combine_values(6, 7) == 42
        assert (
            AggregateSpec("sum", "t", "a", column2="b", combine="-")
            .combine_values(6, 7)
            == -1
        )
        assert (
            AggregateSpec("sum", "t", "a", column2="b", combine="+")
            .combine_values(6, 7)
            == 13
        )

    def test_null_propagates(self):
        spec = AggregateSpec("sum", "t", "a", column2="b")
        assert spec.combine_values(None, 7) is None
        assert spec.combine_values(6, None) is None


class TestAccumulators:
    def test_count_star_counts_everything(self):
        assert run(AggregateSpec("count"), [1, None, 3]) == 3

    def test_count_column_skips_nulls(self):
        assert run(AggregateSpec("count", "t", "c"), [1, None, 3]) == 2

    def test_sum(self):
        assert run(AggregateSpec("sum", "t", "c"), [1, 2, 3]) == 6

    def test_sum_skips_nulls(self):
        assert run(AggregateSpec("sum", "t", "c"), [1, None, 3]) == 4

    def test_sum_empty_is_null(self):
        assert run(AggregateSpec("sum", "t", "c"), []) is None
        assert run(AggregateSpec("sum", "t", "c"), [None]) is None

    def test_min_max(self):
        assert run(AggregateSpec("min", "t", "c"), [5, 2, 8]) == 2
        assert run(AggregateSpec("max", "t", "c"), [5, 2, 8]) == 8

    def test_min_empty_is_null(self):
        assert run(AggregateSpec("min", "t", "c"), []) is None

    def test_avg(self):
        assert run(AggregateSpec("avg", "t", "c"), [2, 4]) == 3.0

    def test_avg_skips_nulls(self):
        assert run(AggregateSpec("avg", "t", "c"), [2, None, 4]) == 3.0

    def test_avg_empty_is_null(self):
        assert run(AggregateSpec("avg", "t", "c"), []) is None
