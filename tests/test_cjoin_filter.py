"""Unit tests for the Filter component (probe, AND, drop, skip)."""

from repro import bitvec
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.stats import PipelineStats
from repro.cjoin.tuples import FactTuple


def make_star():
    dim = TableSchema(
        "d",
        [Column("id", DataType.INT), Column("label", DataType.STRING)],
        primary_key="id",
    )
    fact = TableSchema(
        "f",
        [Column("d_id", DataType.INT), Column("v", DataType.INT)],
        foreign_keys=[ForeignKey("d_id", "d", "id")],
    )
    return StarSchema(fact=fact, dimensions={"d": dim})


def make_filter(stats=None):
    star = make_star()
    table = DimensionHashTable(star.dimension("d"))
    return Filter(table, star, stats), table


def tuple_with_bits(bits, d_id=5):
    return FactTuple(sequence=1, position=0, row=(d_id, 10), bitvector=bits)


class TestFiltering:
    def test_joining_tuple_keeps_selected_bits(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        table.mark_query_referencing(2)  # Q2 selects nothing
        fact_tuple = tuple_with_bits(0b11, d_id=5)
        assert filter_.process(fact_tuple)
        assert fact_tuple.bitvector == bitvec.bit_for_query(1)

    def test_tuple_dropped_when_no_query_remains(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        fact_tuple = tuple_with_bits(0b1, d_id=6)  # FK misses selection
        assert not filter_.process(fact_tuple)
        assert fact_tuple.bitvector == 0
        assert filter_.stats.tuples_dropped == 1

    def test_dim_row_pointer_attached(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        fact_tuple = tuple_with_bits(0b1, d_id=5)
        filter_.process(fact_tuple)
        assert fact_tuple.dim_rows["d"] == (5, "five")

    def test_probe_skip_when_no_relevant_query_references(self):
        stats = PipelineStats()
        filter_, table = make_filter(stats)
        table.mark_query_not_referencing(1)  # Q1 doesn't reference d
        fact_tuple = tuple_with_bits(0b1, d_id=12345)
        assert filter_.process(fact_tuple)
        assert fact_tuple.bitvector == 0b1  # untouched
        assert filter_.stats.probe_skips == 1
        assert filter_.stats.probes == 0
        assert stats.probes_total == 0

    def test_probe_happens_when_some_relevant_query_references(self):
        stats = PipelineStats()
        filter_, table = make_filter(stats)
        table.mark_query_not_referencing(1)
        table.mark_query_referencing(2)
        table.register_selected_rows(2, [(5, "five")])
        fact_tuple = tuple_with_bits(0b11, d_id=5)
        assert filter_.process(fact_tuple)
        assert filter_.stats.probes == 1
        assert stats.probes_total == 1
        assert fact_tuple.bitvector == 0b11

    def test_single_probe_covers_all_queries(self):
        """One probe resolves every concurrent query (the key sharing)."""
        filter_, table = make_filter()
        for query_id in range(1, 33):
            table.mark_query_referencing(query_id)
            if query_id % 2 == 0:
                table.register_selected_rows(query_id, [(5, "five")])
        fact_tuple = tuple_with_bits(bitvec.all_ones(32), d_id=5)
        filter_.process(fact_tuple)
        assert filter_.stats.probes == 1
        surviving = list(bitvec.iter_query_ids(fact_tuple.bitvector))
        assert surviving == [q for q in range(1, 33) if q % 2 == 0]


class TestWouldDrop:
    def test_would_drop_matches_process_without_side_effects(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        surviving = tuple_with_bits(0b1, d_id=5)
        dying = tuple_with_bits(0b1, d_id=6)
        assert not filter_.would_drop(surviving)
        assert filter_.would_drop(dying)
        # no mutation, no stats
        assert surviving.bitvector == 0b1
        assert dying.bitvector == 0b1
        assert filter_.stats.tuples_in == 0


class TestFilterStats:
    def test_pass_and_drop_rates(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        for d_id in (5, 6, 7, 5):
            filter_.process(tuple_with_bits(0b1, d_id))
        assert filter_.stats.tuples_in == 4
        assert filter_.stats.drop_rate == 0.5
        assert filter_.stats.pass_rate == 0.5

    def test_reset(self):
        filter_, table = make_filter()
        table.mark_query_referencing(1)
        filter_.process(tuple_with_bits(0b1))
        filter_.stats.reset()
        assert filter_.stats.tuples_in == 0
        assert filter_.stats.drop_rate == 0.0
